//! Offline stand-in for the `criterion` benchmarking harness.
//!
//! Supports the API subset used by `crates/bench/benches`: benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! element throughput, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a plain wall-clock mean (warm-up + timed
//! samples) rather than criterion's statistical analysis — good enough to
//! compare configurations, not to detect 1 % regressions.
//!
//! Flag handling: `--test` (as passed by `cargo test --benches`) runs every
//! benchmark body exactly once; positional arguments filter benchmarks by
//! substring, like the real harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How input values are cloned per batch in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: one setup call per iteration is fine.
    SmallInput,
    /// Large inputs: amortise setup over more iterations.
    LargeInput,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (packets, lookups, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark body and records its mean time per iteration.
pub struct Bencher<'a> {
    test_mode: bool,
    measure: Duration,
    result: &'a mut Option<MeasuredTime>,
}

#[derive(Debug, Clone, Copy)]
struct MeasuredTime {
    ns_per_iter: f64,
}

impl Bencher<'_> {
    /// Times a closure, recording the mean over enough iterations to fill
    /// the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            *self.result = Some(MeasuredTime { ns_per_iter: 0.0 });
            return;
        }
        // Calibrate: how many iterations fit in the window?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measure.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = t1.elapsed();
        *self.result = Some(MeasuredTime {
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
        });
    }

    /// Times a closure with a per-iteration setup whose cost is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            *self.result = Some(MeasuredTime { ns_per_iter: 0.0 });
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measure.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        *self.result = Some(MeasuredTime {
            ns_per_iter: total.as_nanos() as f64 / iters as f64,
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filters = args
            .iter()
            .filter(|a| !a.starts_with('-'))
            .cloned()
            .collect();
        Criterion {
            test_mode,
            filters,
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into().id;
        self.run_one(&id, None, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|x| id.contains(x.as_str())) {
            return;
        }
        let mut result = None;
        let mut b = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            result: &mut result,
        };
        f(&mut b);
        match result {
            Some(_) if self.test_mode => println!("test {id} ... ok"),
            Some(m) => {
                let per = format_ns(m.ns_per_iter);
                match throughput {
                    Some(Throughput::Elements(n)) if m.ns_per_iter > 0.0 => {
                        let rate = n as f64 / (m.ns_per_iter * 1e-9);
                        println!("{id:<48} {per:>12}/iter  {:>14.0} elem/s", rate);
                    }
                    Some(Throughput::Bytes(n)) if m.ns_per_iter > 0.0 => {
                        let rate = n as f64 / (m.ns_per_iter * 1e-9);
                        println!("{id:<48} {per:>12}/iter  {:>14.0} B/s", rate);
                    }
                    _ => println!("{id:<48} {per:>12}/iter"),
                }
            }
            None => println!("{id:<48} (no measurement recorded)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark function in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_quiet(test_mode: bool) -> Option<f64> {
        let mut c = Criterion {
            test_mode,
            filters: vec![],
            measure: Duration::from_millis(5),
        };
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10));
            g.bench_function("f", |b| b.iter(|| black_box(2u64 + 2)));
            g.finish();
        }
        let mut result = None;
        let mut b = Bencher {
            test_mode,
            measure: Duration::from_millis(5),
            result: &mut result,
        };
        b.iter(|| black_box(1u32.wrapping_add(2)));
        result.map(|m| m.ns_per_iter)
    }

    #[test]
    fn measures_something() {
        let ns = run_quiet(false).expect("measured");
        assert!(ns >= 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        assert_eq!(run_quiet(true), Some(0.0));
    }

    #[test]
    fn benchmark_ids() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("mbt").id, "mbt");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }

    #[test]
    fn iter_batched_consumes_setup() {
        let mut result = None;
        let mut b = Bencher {
            test_mode: false,
            measure: Duration::from_millis(2),
            result: &mut result,
        };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(result.is_some());
    }
}
