//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand` 0.8 API used by this workspace —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`SliceRandom::choose`] — on
//! top of a SplitMix64 generator. The stream differs from upstream `rand`;
//! consumers must only rely on determinism for a fixed seed, which this
//! implementation guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64).
    ///
    /// Not cryptographically secure and not stream-compatible with the
    /// upstream `StdRng`; deterministic for a fixed seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so that nearby seeds produce unrelated streams.
        let mut rng = StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        rng.next_u64();
        rng
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly, yielding values of type `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching upstream `rand` behaviour.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Random slice operations.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

/// The `rand::prelude` convenience re-exports.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u16 = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = r.gen_range(0..=usize::MAX);
            let _ = z;
            let w: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let items = [1u8, 2, 3];
        assert!(items.contains(items.choose(&mut r).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
