//! Property-based tests: the architecture against the semantic oracle on
//! arbitrary rule sets and headers, plus structural invariants.

use proptest::prelude::*;
use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::types::{
    Action, Header, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleSet, SegPrefix,
};

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(v, l)| Prefix::masked(v, l))
}

fn arb_range() -> impl Strategy<Value = PortRange> {
    (any::<u16>(), any::<u16>())
        .prop_map(|(a, b)| PortRange::new(a.min(b), a.max(b)).expect("ordered"))
}

fn arb_proto() -> impl Strategy<Value = ProtoSpec> {
    prop_oneof![
        3 => (0u8..=30).prop_map(ProtoSpec::Exact),
        1 => Just(ProtoSpec::Any),
    ]
}

fn arb_rule(priority: u32) -> impl Strategy<Value = Rule> {
    (arb_prefix(), arb_prefix(), arb_range(), arb_range(), arb_proto()).prop_map(
        move |(s, d, sp, dp, pr)| {
            Rule::builder(Priority(priority))
                .src_ip(s)
                .dst_ip(d)
                .src_port(sp)
                .dst_port(dp)
                .proto(pr)
                .action(Action::Forward(priority as u16))
                .build()
        },
    )
}

fn arb_ruleset(max: usize) -> impl Strategy<Value = RuleSet> {
    prop::collection::vec(any::<u32>(), 1..max).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_rule(i as u32))
            .collect::<Vec<_>>()
            .prop_map(RuleSet::from_rules)
    })
}

fn arb_header() -> impl Strategy<Value = Header> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), 0u8..=35)
        .prop_map(|(s, d, sp, dp, pr)| Header::new(s.into(), d.into(), sp, dp, pr))
}

/// Headers biased to actually hit rules: derived from a rule's region.
fn biased_header(rules: &RuleSet, sel: u64, jitter: u32) -> Header {
    let r = &rules.rules()[(sel as usize) % rules.len()];
    Header::new(
        (r.src_ip.value() | (jitter & !u32_mask(r.src_ip.len()))).into(),
        (r.dst_ip.value() | (jitter.rotate_left(7) & !u32_mask(r.dst_ip.len()))).into(),
        r.src_port.lo(),
        r.dst_port.hi(),
        match r.proto {
            ProtoSpec::Exact(v) => v,
            ProtoSpec::Any => (jitter % 40) as u8,
        },
    )
}

fn u32_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn classifier_equals_oracle_mbt(rules in arb_ruleset(24), hs in prop::collection::vec(arb_header(), 12), sel in any::<u64>(), jit in any::<u32>()) {
        let mut cls = Classifier::new(ArchConfig::large());
        // Duplicate 5-tuples are rejected by design; skip those inputs.
        let mut installed = RuleSet::new();
        for r in rules.rules() {
            if cls.insert(*r).is_ok() {
                installed.push(*r);
            }
        }
        let mut headers = hs;
        headers.push(biased_header(&rules, sel, jit));
        for h in &headers {
            let want = installed.classify(h).map(|(_, r)| r.priority);
            let got = cls.classify(h).hit.map(|x| x.rule.priority);
            prop_assert_eq!(got, want, "header {}", h);
        }
    }

    #[test]
    fn classifier_equals_oracle_bst(rules in arb_ruleset(16), sel in any::<u64>(), jit in any::<u32>()) {
        let mut cls = Classifier::new(ArchConfig::large().with_ip_alg(IpAlg::Bst));
        let mut installed = RuleSet::new();
        for r in rules.rules() {
            if cls.insert(*r).is_ok() {
                installed.push(*r);
            }
        }
        let h = biased_header(&rules, sel, jit);
        let want = installed.classify(&h).map(|(_, r)| r.priority);
        let got = cls.classify(&h).hit.map(|x| x.rule.priority);
        prop_assert_eq!(got, want, "header {}", h);
    }

    #[test]
    fn insert_remove_roundtrip_restores_behaviour(rules in arb_ruleset(12), h in arb_header()) {
        let mut cls = Classifier::new(ArchConfig::large());
        let mut ids = Vec::new();
        for r in rules.rules() {
            if let Ok(rep) = cls.insert(*r) {
                ids.push(rep.rule_id);
            }
        }
        let before = cls.classify(&h).hit.map(|x| x.rule.priority);
        // Remove everything, confirm empty semantics, reinstall.
        for id in &ids {
            cls.remove(*id).unwrap();
        }
        prop_assert!(cls.classify(&h).hit.is_none());
        prop_assert_eq!(cls.live_labels(), [0usize; 7]);
        for r in rules.rules() {
            let _ = cls.insert(*r);
        }
        prop_assert_eq!(cls.classify(&h).hit.map(|x| x.rule.priority), before);
    }

    #[test]
    fn prefix_segments_partition_matches(v in any::<u32>(), l in 0u8..=32, q in any::<u32>()) {
        // A 32-bit prefix match decomposes exactly into its two 16-bit
        // segment matches — the foundation of the architecture.
        let p = Prefix::masked(v, l);
        let (hi, lo) = p.segments();
        let header_matches = p.contains(q.into());
        let seg_matches = hi.matches((q >> 16) as u16) && lo.matches((q & 0xffff) as u16);
        prop_assert_eq!(header_matches, seg_matches);
    }

    #[test]
    fn segprefix_bounds_consistent(v in any::<u16>(), l in 0u8..=16) {
        let s = SegPrefix::masked(v, l);
        prop_assert!(s.matches(s.first()));
        prop_assert!(s.matches(s.last()));
        if s.first() > 0 {
            prop_assert!(!s.matches(s.first() - 1));
        }
        if s.last() < u16::MAX {
            prop_assert!(!s.matches(s.last() + 1));
        }
    }

    #[test]
    fn portrange_covers_iff_both_bounds(a in arb_range(), b in arb_range()) {
        prop_assert_eq!(a.covers(b), a.lo() <= b.lo() && b.hi() <= a.hi());
        if a.overlaps(b) {
            let lo = a.lo().max(b.lo());
            prop_assert!(a.contains(lo) && b.contains(lo));
        }
    }
}
