//! Property-style tests (seeded random cases): the architecture against
//! the semantic oracle on arbitrary rule sets and headers, plus structural
//! type invariants. Classifier-facing properties go through the unified
//! `spc::engine::PacketClassifier` API.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc::engine::{EngineBuilder, EngineKind, PacketClassifier, UpdateError, Verdict};
use spc::types::{
    Action, Header, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleId, RuleSet, SegPrefix,
};

fn rand_prefix(rng: &mut StdRng) -> Prefix {
    Prefix::masked(rng.gen(), rng.gen_range(0u8..=32))
}

fn rand_range(rng: &mut StdRng) -> PortRange {
    let (a, b) = (rng.gen::<u16>(), rng.gen::<u16>());
    PortRange::new(a.min(b), a.max(b)).expect("ordered")
}

fn rand_proto(rng: &mut StdRng) -> ProtoSpec {
    if rng.gen_bool(0.75) {
        ProtoSpec::Exact(rng.gen_range(0u8..=30))
    } else {
        ProtoSpec::Any
    }
}

fn rand_rule(rng: &mut StdRng, priority: u32) -> Rule {
    Rule::builder(Priority(priority))
        .src_ip(rand_prefix(rng))
        .dst_ip(rand_prefix(rng))
        .src_port(rand_range(rng))
        .dst_port(rand_range(rng))
        .proto(rand_proto(rng))
        .action(Action::Forward(priority as u16))
        .build()
}

fn rand_ruleset(rng: &mut StdRng, max: usize) -> RuleSet {
    let n = rng.gen_range(1..max);
    (0..n).map(|i| rand_rule(rng, i as u32)).collect()
}

fn rand_header(rng: &mut StdRng) -> Header {
    Header::new(
        rng.gen::<u32>().into(),
        rng.gen::<u32>().into(),
        rng.gen(),
        rng.gen(),
        rng.gen_range(0u8..=35),
    )
}

/// Headers biased to actually hit rules: derived from a rule's region.
fn biased_header(rules: &RuleSet, rng: &mut StdRng) -> Header {
    let r = &rules.rules()[rng.gen_range(0..rules.len())];
    let jitter: u32 = rng.gen();
    Header::new(
        (r.src_ip.value() | (jitter & !u32_mask(r.src_ip.len()))).into(),
        (r.dst_ip.value() | (jitter.rotate_left(7) & !u32_mask(r.dst_ip.len()))).into(),
        r.src_port.lo(),
        r.dst_port.hi(),
        match r.proto {
            ProtoSpec::Exact(v) => v,
            ProtoSpec::Any => (jitter % 40) as u8,
        },
    )
}

fn u32_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// Installs via the unified update path, skipping rejected duplicates,
/// and returns the effectively-installed oracle set.
fn install(engine: &mut dyn PacketClassifier, rules: &RuleSet) -> RuleSet {
    let mut installed = RuleSet::new();
    for r in rules.rules() {
        match engine.insert(*r) {
            Ok(_) => {
                installed.push(*r);
            }
            Err(UpdateError::Duplicate { .. }) => {} // duplicate 5-tuple
            Err(e) => panic!("unexpected update error: {e}"),
        }
    }
    installed
}

fn priority_of(v: &Verdict) -> Option<Priority> {
    v.priority
}

#[test]
fn classifier_equals_oracle_mbt() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xa000 + case);
        let rules = rand_ruleset(&mut rng, 24);
        let mut engine = EngineBuilder::new(EngineKind::ConfigurableMbt)
            .build(&RuleSet::new())
            .expect("empty build");
        let installed = install(engine.as_mut(), &rules);
        let mut headers: Vec<Header> = (0..12).map(|_| rand_header(&mut rng)).collect();
        headers.push(biased_header(&rules, &mut rng));
        for h in &headers {
            let want = installed.classify(h).map(|(_, r)| r.priority);
            let got = priority_of(&engine.classify(h));
            assert_eq!(got, want, "case {case} header {h}");
        }
    }
}

#[test]
fn classifier_equals_oracle_bst() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xb000 + case);
        let rules = rand_ruleset(&mut rng, 16);
        let mut engine = EngineBuilder::new(EngineKind::ConfigurableBst)
            .build(&RuleSet::new())
            .expect("empty build");
        let installed = install(engine.as_mut(), &rules);
        let h = biased_header(&rules, &mut rng);
        let want = installed.classify(&h).map(|(_, r)| r.priority);
        assert_eq!(
            priority_of(&engine.classify(&h)),
            want,
            "case {case} header {h}"
        );
    }
}

#[test]
fn batch_path_equals_single_path() {
    // The amortised batch path must be observationally identical to the
    // single-shot path, for both IP algorithms, hits and misses alike.
    for kind in [EngineKind::ConfigurableMbt, EngineKind::ConfigurableBst] {
        for case in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(0xc000 + case);
            let rules = rand_ruleset(&mut rng, 20);
            let mut engine = EngineBuilder::new(kind).build(&RuleSet::new()).unwrap();
            install(engine.as_mut(), &rules);
            let mut headers: Vec<Header> = (0..24).map(|_| rand_header(&mut rng)).collect();
            headers.extend((0..8).map(|_| biased_header(&rules, &mut rng)));
            let singles: Vec<Verdict> = headers.iter().map(|h| engine.classify(h)).collect();
            let mut batched = Vec::new();
            let stats = engine.classify_batch(&headers, &mut batched);
            assert_eq!(singles, batched, "kind {kind} case {case}");
            assert_eq!(stats.packets, headers.len() as u64);
            assert_eq!(
                stats.hits,
                singles.iter().filter(|v| v.is_hit()).count() as u64
            );
        }
    }
}

#[test]
fn insert_remove_roundtrip_restores_behaviour() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xd000 + case);
        let rules = rand_ruleset(&mut rng, 12);
        let h = rand_header(&mut rng);
        let mut engine = EngineBuilder::new(EngineKind::ConfigurableMbt)
            .build(&RuleSet::new())
            .unwrap();
        let mut ids = Vec::new();
        for r in rules.rules() {
            if let Ok(id) = engine.insert(*r) {
                ids.push(id);
            }
        }
        let before = priority_of(&engine.classify(&h));
        // Remove everything, confirm empty semantics, reinstall.
        for id in &ids {
            engine.remove(*id).unwrap();
        }
        assert!(!engine.classify(&h).is_hit(), "case {case}");
        assert_eq!(engine.rules(), 0, "case {case}");
        for r in rules.rules() {
            let _ = engine.insert(*r);
        }
        assert_eq!(priority_of(&engine.classify(&h)), before, "case {case}");
    }
}

/// A deterministic rule with a unique priority and dst-port, so inserts
/// of distinct `p` never collide as duplicate 5-tuples.
fn epoch_rule(p: u32) -> Rule {
    Rule::builder(Priority(p))
        .dst_port(PortRange::exact(2000 + (p % 30000) as u16))
        .proto(ProtoSpec::Exact(6))
        .action(Action::Forward(p as u16))
        .build()
}

/// The `update_epoch` contract across every updatable backend,
/// including the failed-update paths: the epoch starts at 0, bumps by
/// exactly one *iff* `last_update_report()` is replaced (successful
/// insert/remove), and is left untouched — along with the report — by
/// every rejected update.
#[test]
fn update_epoch_bumps_iff_report_replaced() {
    let base: RuleSet = (0..20).map(epoch_rule).collect();
    for spec in [
        "configurable-mbt",
        "configurable-bst",
        "sharded:inner=configurable-bst,shards=2,strategy=prio",
        "sharded:inner=configurable-mbt,shards=2,strategy=hash",
        "cached:inner=configurable-bst,flows=64",
        "snapshot:inner=configurable-bst",
        "snapshot:inner=linear",
        "snapshot:inner=(sharded:inner=configurable-bst,shards=2)",
        "snapshot:inner=(cached:inner=configurable-bst,flows=64)",
        // The update-first backends, bare and under every wrapper.
        "tss",
        "tss:tables=16",
        "tcam",
        "tcam:capacity=65536,partitions=4",
        "snapshot:inner=tss",
        "snapshot:inner=tcam",
        "cached:inner=tss,flows=64",
        "cached:inner=tcam,flows=64",
        "sharded:inner=tss,shards=2,strategy=prio",
        "sharded:inner=tcam,shards=2,strategy=hash",
    ] {
        let mut e = EngineBuilder::from_spec(spec)
            .unwrap()
            .build(&base)
            .unwrap_or_else(|err| panic!("{spec}: {err}"));
        assert!(e.supports_updates(), "{spec}");
        assert_eq!(e.update_epoch(), 0, "{spec}: epoch starts at 0");
        assert!(e.last_update_report().is_none(), "{spec}");

        // Successful insert: +1, report replaced and keyed to the id.
        let id = e.insert(epoch_rule(500)).unwrap();
        assert_eq!(e.update_epoch(), 1, "{spec}");
        let r1 = e.last_update_report().expect(spec);
        assert_eq!(r1.rule_id, id, "{spec}");

        // Failed insert (duplicate 5-tuple): neither bumps nor replaces.
        assert!(
            matches!(
                e.insert(epoch_rule(500)),
                Err(UpdateError::Duplicate { .. })
            ),
            "{spec}"
        );
        assert_eq!(e.update_epoch(), 1, "{spec}: failed insert must not bump");
        assert_eq!(e.last_update_report(), Some(r1), "{spec}");

        // Failed remove (unknown id): same.
        assert!(
            matches!(
                e.remove(RuleId(9_999)),
                Err(UpdateError::UnknownRule { .. })
            ),
            "{spec}"
        );
        assert_eq!(e.update_epoch(), 1, "{spec}: failed remove must not bump");
        assert_eq!(e.last_update_report(), Some(r1), "{spec}");

        // Successful remove: +1, report replaced.
        e.remove(id).unwrap_or_else(|err| panic!("{spec}: {err}"));
        assert_eq!(e.update_epoch(), 2, "{spec}");
        let r2 = e.last_update_report().expect(spec);
        assert_eq!(r2.rule_id, id, "{spec}");

        // Double remove: rejected, untouched.
        assert!(e.remove(id).is_err(), "{spec}");
        assert_eq!(e.update_epoch(), 2, "{spec}: double remove must not bump");
        assert_eq!(e.last_update_report(), Some(r2), "{spec}");

        // Monotonic +1 per success across a burst.
        let before = e.update_epoch();
        for (i, p) in (600..616).enumerate() {
            e.insert(epoch_rule(p)).unwrap();
            assert_eq!(
                e.update_epoch(),
                before + i as u64 + 1,
                "{spec}: exactly one per op"
            );
        }
    }

    // Build-once backends: updates are Unsupported and the epoch is
    // pinned at 0 with no report, no matter how often they are poked.
    for spec in [
        "linear",
        "hypercuts",
        "rfc",
        "sharded:inner=linear,shards=2",
    ] {
        let mut e = EngineBuilder::from_spec(spec)
            .unwrap()
            .build(&base)
            .unwrap();
        assert!(!e.supports_updates(), "{spec}");
        for _ in 0..3 {
            assert!(
                matches!(
                    e.insert(epoch_rule(700)),
                    Err(UpdateError::Unsupported { .. })
                ),
                "{spec}"
            );
            assert_eq!(e.update_epoch(), 0, "{spec}");
            assert!(e.last_update_report().is_none(), "{spec}");
        }
    }
}

#[test]
fn prefix_segments_partition_matches() {
    // A 32-bit prefix match decomposes exactly into its two 16-bit
    // segment matches — the foundation of the architecture.
    let mut rng = StdRng::seed_from_u64(0xe000);
    for _ in 0..2000 {
        let p = Prefix::masked(rng.gen(), rng.gen_range(0u8..=32));
        let q: u32 = rng.gen();
        let (hi, lo) = p.segments();
        let header_matches = p.contains(q.into());
        let seg_matches = hi.matches((q >> 16) as u16) && lo.matches((q & 0xffff) as u16);
        assert_eq!(header_matches, seg_matches, "prefix {p:?} q {q:#x}");
    }
}

#[test]
fn segprefix_bounds_consistent() {
    let mut rng = StdRng::seed_from_u64(0xe001);
    for _ in 0..2000 {
        let s = SegPrefix::masked(rng.gen(), rng.gen_range(0u8..=16));
        assert!(s.matches(s.first()));
        assert!(s.matches(s.last()));
        if s.first() > 0 {
            assert!(!s.matches(s.first() - 1));
        }
        if s.last() < u16::MAX {
            assert!(!s.matches(s.last() + 1));
        }
    }
}

#[test]
fn portrange_covers_iff_both_bounds() {
    let mut rng = StdRng::seed_from_u64(0xe002);
    for _ in 0..2000 {
        let a = rand_range(&mut rng);
        let b = rand_range(&mut rng);
        assert_eq!(a.covers(b), a.lo() <= b.lo() && b.hi() <= a.hi());
        if a.overlaps(b) {
            let lo = a.lo().max(b.lo());
            assert!(a.contains(lo) && b.contains(lo));
        }
    }
}
