//! End-to-end oracles for the optimizer layer (`spc::analyze`'s
//! `optimize` + `equivalence` modules and the engine's
//! `OptimizePolicy::Validated` wiring):
//!
//! * witness replay — when the equivalence checker says two sets
//!   `Differs`, replaying the witness header through `LinearSearch`
//!   engines built from each set must reproduce the checker's verdicts
//!   exactly (the checker is a decision procedure, not a heuristic);
//! * provenance under churn — a `with_optimize`d configurable/sharded
//!   engine driven through a `ScenarioScript` must emit *original-space*
//!   rule ids throughout, verdict-equivalent to an unoptimized oracle
//!   rebuilt from scratch over the live rule set;
//! * spec-string surface — `optimize=validated` parses on every spec
//!   shape and rejects unknown values with a typed error.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::analyze::{check, AnalyzerLimits, Equivalence, OptimizeConfig};
use spc::classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceGenerator};
use spc::engine::{
    build_engine, run_scenario, BuildError, EngineBuilder, EngineKind, OptimizePolicy,
};
use spc::types::{Action, PortRange, Priority, ProtoSpec, Rule, RuleId, RuleSet};

const SEED: u64 = 0x0201_45bc;

/// A checker `Differs` verdict is ground truth: the witness header,
/// replayed through `LinearSearch` over each set, reproduces the
/// checker's per-set outcomes bit for bit.
#[test]
fn differs_witness_replays_through_linear_search() {
    // Same shape, one action flipped on the narrower rule: the sets
    // agree except where the port-80 rule wins.
    let narrow = |action| {
        Rule::builder(Priority(0))
            .dst_port(PortRange::new(80, 80).unwrap())
            .proto(ProtoSpec::Exact(6))
            .action(action)
            .build()
    };
    let wide = Rule::builder(Priority(1))
        .action(Action::Forward(1))
        .build();
    let a = RuleSet::from_rules(vec![narrow(Action::Drop), wide]);
    let b = RuleSet::from_rules(vec![narrow(Action::Forward(9)), wide]);

    let limits = AnalyzerLimits::default();
    match check(&a, &b, &limits) {
        Equivalence::Differs {
            witness,
            verdict_a,
            verdict_b,
        } => {
            let ea = build_engine("linear", &a).unwrap();
            let eb = build_engine("linear", &b).unwrap();
            let va = ea.classify(&witness);
            let vb = eb.classify(&witness);
            assert_eq!(
                va.rule.zip(va.action),
                verdict_a,
                "checker verdict_a must replay at {witness}"
            );
            assert_eq!(
                vb.rule.zip(vb.action),
                verdict_b,
                "checker verdict_b must replay at {witness}"
            );
            // And the witness genuinely separates the sets.
            assert_ne!(va.action, vb.action, "witness separates the sets");
        }
        other => panic!("sets differ at dst_port 80/proto 6, got {other}"),
    }

    // Sanity: a set always equals itself, exactly.
    assert!(check(&a, &a, &limits).is_equivalent());
}

/// Churn workload shared by the provenance tests: an ACL base with
/// deliberately shadowed rules (so the optimizer elides something) and
/// a foreign-family insert pool.
fn churn_workload() -> (RuleSet, Vec<spc::types::Header>, TraceGenerator, Vec<Rule>) {
    let generated = RuleSetGenerator::new(FilterKind::Acl, 160)
        .seed(SEED)
        .generate();
    // Plant strict-subset clones at strictly worse priority: each is
    // fully covered by its better-priority original, hence provably
    // shadowed — so `OptimizePolicy::Validated` has real work to do and
    // the elided-rule paths are exercised. The subsets differ in their
    // 5-tuple (narrowed ports / pinned proto), so the builder's
    // duplicate pre-check stays quiet.
    let mut rules: Vec<Rule> = generated.rules().to_vec();
    let mut seen: std::collections::HashSet<_> = rules.iter().map(Rule::dim_values).collect();
    let clones: Vec<Rule> = rules
        .iter()
        .map(|r| {
            let mut c = *r;
            c.priority = Priority(c.priority.0 + 10_000);
            c.src_port = PortRange::new(c.src_port.lo(), c.src_port.lo()).unwrap();
            c.dst_port = PortRange::new(c.dst_port.lo(), c.dst_port.lo()).unwrap();
            if c.proto == ProtoSpec::Any {
                c.proto = ProtoSpec::Exact(6);
            }
            c
        })
        .filter(|c| seen.insert(c.dim_values()))
        .take(24)
        .collect();
    assert!(clones.len() >= 24, "need 24 distinct shadowed clones");
    rules.extend(clones);
    let base = RuleSet::from_rules(rules);

    let traffic = TraceGenerator::new()
        .seed(SEED ^ 0xbeef)
        .match_fraction(0.8)
        .locality(0.25);
    let probe = traffic.generate(&base, 400);

    let pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, 80)
        .seed(SEED ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(500 + 250 * (i as u32 % 4));
            r
        })
        .collect();
    (base, probe, traffic, pool)
}

/// The S3 oracle: churn an optimized engine through a scenario script
/// and demand that every emitted id lives in the *original* id space —
/// verdict-for-verdict equal to an unoptimized engine rebuilt from
/// scratch over base + surviving inserts.
#[test]
fn optimized_engines_emit_original_ids_under_churn() {
    let (base, probe, traffic, pool) = churn_workload();

    // The optimizer must actually remove something here, or this test
    // degenerates into `trace_replay`'s plain churn oracle.
    let opt = spc::analyze::optimize(&base, &OptimizeConfig::id_preserving()).unwrap();
    assert!(
        opt.removed_rules() >= 24,
        "expected the planted shadow clones to be elided, removed {}",
        opt.removed_rules()
    );

    let script = ScenarioScript::parse("repeat 6 { insert 10; classify 50; remove 5 }").unwrap();
    for spec in [
        "configurable-bst:optimize=validated",
        "configurable-mbt:optimize=validated",
        "sharded:inner=configurable-bst,shards=2,strategy=prio,optimize=validated",
        "sharded:inner=configurable-bst,shards=8,strategy=hash,optimize=validated",
        // The update-first backends take the same validated-optimizer path.
        "tss:optimize=validated",
        "tcam:optimize=validated",
    ] {
        let mut engine = build_engine(spec, &base).unwrap();
        // From the caller's view nothing was removed at build time.
        assert_eq!(engine.rules(), base.len(), "{spec}: build-time rules()");

        let mut source = script
            .source(&traffic, &base, &pool)
            .unwrap()
            .with_chunk(32);
        let mut verdicts = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)
            .unwrap_or_else(|e| panic!("{spec}: scenario failed: {e}"));
        assert_eq!(report.lookup.packets, 300, "{spec}");

        // Every id emitted during the scenario is a valid original-space
        // id: a base rule or one of the scenario's own inserts (ids are
        // dense from 0 in allocation order on both sides).
        let id_space = (base.len() as u64 + report.inserts) as u32;
        for (i, v) in verdicts.iter().enumerate() {
            if let Some(id) = v.rule {
                assert!(
                    id.0 < id_space,
                    "{spec}: verdict {i} emitted {id}, outside the original id space \
                     of {id_space} rules"
                );
            }
        }

        // Rebuild the reference over base + surviving inserts; its
        // positional ids map back through `live` (both sides allocate
        // ids in insertion order, so priority ties break identically).
        let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
        live.extend(report.live_inserts.iter().copied());
        assert_eq!(engine.rules(), live.len(), "{spec}: post-churn rules()");
        let rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
        let mut reference = build_engine("linear", &rules).unwrap();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        engine.classify_batch(&probe, &mut got);
        reference.classify_batch(&probe, &mut want);
        for ((h, w), g) in probe.iter().zip(&want).zip(&got) {
            let want_global = w.rule.map(|pos| live[pos.0 as usize].0);
            assert_eq!(g.rule, want_global, "{spec} vs rebuilt oracle at {h}");
            assert_eq!(g.priority, w.priority, "{spec} priority at {h}");
            assert_eq!(g.action, w.action, "{spec} action at {h}");
        }

        // Elided rules are still owned by the engine: removing one
        // succeeds (synthetically) and shrinks the caller-visible count.
        let shadowed = opt.removed_ids();
        let victim = shadowed[0];
        let before = engine.rules();
        let epoch = engine.update_epoch();
        engine
            .remove(victim)
            .unwrap_or_else(|e| panic!("{spec}: removing elided {victim} must succeed, got {e}"));
        assert_eq!(engine.rules(), before - 1, "{spec}");
        assert_eq!(engine.update_epoch(), epoch + 1, "{spec}: epoch bump");
        let r = engine
            .last_update_report()
            .unwrap_or_else(|| panic!("{spec}: synthetic remove must publish a report"));
        assert_eq!(r.rule_id, victim, "{spec}: report in original id space");
    }
}

/// The spec-string surface: `optimize=` is accepted on every spec
/// shape, bad values are rejected with the typed spec error, and the
/// builder method agrees with the parsed form.
#[test]
fn optimize_spec_key_parses_everywhere() {
    let rules = RuleSetGenerator::new(FilterKind::Ipc, 64)
        .seed(SEED ^ 0xc)
        .generate();
    for spec in [
        "linear:optimize=validated",
        "rfc:optimize=off",
        "cached:inner=linear,optimize=validated",
    ] {
        build_engine(spec, &rules).unwrap_or_else(|e| panic!("{spec}: {e}"));
    }
    assert!(matches!(
        build_engine("linear:optimize=sometimes", &rules),
        Err(BuildError::BadOption { .. })
    ));

    // Builder method and spec string build the same engine shape.
    let a = EngineBuilder::new(EngineKind::Linear)
        .with_optimize(OptimizePolicy::Validated)
        .build(&rules)
        .unwrap();
    let b = build_engine("linear:optimize=validated", &rules).unwrap();
    assert_eq!(a.name(), b.name());
    assert_eq!(a.rules(), b.rules());
}
