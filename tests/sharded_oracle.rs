//! Differential oracle and seeded property tests for the sharded
//! backend: `sharded:inner=<kind>,shards=N` must return exactly the
//! verdicts of the unsharded inner engine — same rule id, priority and
//! action — for every shard count, both partitioning strategies, and
//! every ClassBench family, on the single-shot and batch paths alike.
//! (The general registry oracle in `tests/engine_oracle.rs` already
//! sweeps the sharded default config; this suite sweeps its knobs.)

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::engine::{build_engine, EngineBuilder, EngineKind};
use spc::types::{Header, Priority, ProtoSpec, Rule, RuleSet};

const RULES: usize = 240;
const TRACE: usize = 200;
const SEED: u64 = 20_14;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const STRATEGIES: [&str; 2] = ["prio", "hash"];

fn workload(kind: FilterKind) -> (RuleSet, Vec<Header>) {
    let rules = RuleSetGenerator::new(kind, RULES).seed(SEED).generate();
    let trace = TraceGenerator::new()
        .seed(SEED ^ 0xabc)
        .match_fraction(0.85)
        .generate(&rules, TRACE);
    (rules, trace)
}

/// Sharded engine vs its own unsharded inner engine, all knob settings.
fn check_family(family: FilterKind, inner: &str) {
    let (rules, trace) = workload(family);
    let mut reference = build_engine(inner, &rules).unwrap();
    let mut want = Vec::new();
    reference.classify_batch(&trace, &mut want);
    for shards in SHARD_COUNTS {
        for strategy in STRATEGIES {
            let spec = format!("sharded:inner={inner},shards={shards},strategy={strategy}");
            let mut engine = build_engine(&spec, &rules)
                .unwrap_or_else(|e| panic!("{spec} must build on {family:?}: {e}"));
            assert_eq!(engine.rules(), rules.len(), "{spec}");
            let mut got = Vec::new();
            let stats = engine.classify_batch(&trace, &mut got);
            assert_eq!(stats.packets, trace.len() as u64, "{spec}");
            let mut hits = 0u64;
            for ((h, want), got) in trace.iter().zip(&want).zip(&got) {
                assert_eq!(
                    got.rule, want.rule,
                    "{spec} disagrees with {inner} on {family:?} header {h}"
                );
                assert_eq!(got.priority, want.priority, "{spec} priority at {h}");
                assert_eq!(got.action, want.action, "{spec} action at {h}");
                let single = engine.classify(h);
                assert_eq!(single.rule, got.rule, "{spec} single-vs-batch at {h}");
                assert_eq!(single.mem_reads, got.mem_reads, "{spec} batch reads at {h}");
                hits += u64::from(got.is_hit());
            }
            assert_eq!(stats.hits, hits, "{spec} stats fold to merged hits");
        }
    }
}

#[test]
fn sharded_matches_inner_acl() {
    check_family(FilterKind::Acl, "configurable-bst");
}

#[test]
fn sharded_matches_inner_fw() {
    check_family(FilterKind::Fw, "configurable-bst");
}

#[test]
fn sharded_matches_inner_ipc() {
    check_family(FilterKind::Ipc, "configurable-bst");
}

#[test]
fn sharded_matches_linear_inner_acl() {
    check_family(FilterKind::Acl, "linear");
}

/// Any registry backend works as the inner engine.
#[test]
fn sharded_accepts_any_registry_inner() {
    let (rules, trace) = workload(FilterKind::Acl);
    for inner in EngineKind::ALL {
        if inner == EngineKind::Sharded || inner == EngineKind::Snapshot {
            // Recursive sharding is rejected by the builder, and the
            // snapshot wrapper nests outside a sharded engine, never
            // inside one (its readers serve concurrently; a shard is a
            // single-writer component).
            continue;
        }
        let spec = format!("sharded:inner={inner},shards=2");
        let mut engine =
            build_engine(&spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let mut reference = build_engine(inner.as_str(), &rules).unwrap();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        engine.classify_batch(&trace, &mut got);
        reference.classify_batch(&trace, &mut want);
        for ((h, w), g) in trace.iter().zip(&want).zip(&got) {
            assert_eq!(g.rule, w.rule, "{spec} vs {inner} at {h}");
            assert_eq!(g.priority, w.priority, "{spec} priority at {h}");
            assert_eq!(g.action, w.action, "{spec} action at {h}");
        }
    }
}

/// Seeded property test: arbitrary rule sets (including equal priorities
/// and heavy wildcards, which stress the global-id tie-break across
/// shard boundaries) and arbitrary headers, against the semantic oracle
/// `RuleSet::classify`.
#[test]
fn sharded_property_arbitrary_rules_match_semantic_oracle() {
    let mut rng = StdRng::seed_from_u64(0x5A4D);
    for case in 0..12 {
        let n = rng.gen_range(1..60);
        // Coarse values with repeats: collisions across shards. Byte-equal
        // filters are dropped (every backend rejects duplicate 5-tuples),
        // which keeps equal priorities and shared field values in play.
        let mut seen = std::collections::HashSet::new();
        let rules: RuleSet = (0..n)
            .map(|i| {
                let mut r = Rule::builder(Priority(rng.gen_range(0..8)))
                    .proto(if rng.gen_bool(0.5) {
                        ProtoSpec::Exact(rng.gen_range(0u8..3) * 11 + 6)
                    } else {
                        ProtoSpec::Any
                    })
                    .build();
                if rng.gen_bool(0.7) {
                    r.dst_port = spc::types::PortRange::exact(rng.gen_range(0u16..20));
                }
                let _ = i;
                r
            })
            .filter(|r| seen.insert(r.dim_values()))
            .collect();
        for shards in SHARD_COUNTS {
            for strategy in STRATEGIES {
                let spec = format!("sharded:inner=linear,shards={shards},strategy={strategy}");
                let engine = build_engine(&spec, &rules).unwrap();
                for _ in 0..40 {
                    let h = Header::new(
                        rng.gen::<u32>().into(),
                        rng.gen::<u32>().into(),
                        rng.gen(),
                        rng.gen_range(0u16..25),
                        rng.gen_range(0u8..40),
                    );
                    let want = rules.classify(&h).map(|(id, r)| (id, r.priority, r.action));
                    let got = engine.classify(&h);
                    assert_eq!(
                        got.rule
                            .map(|id| (id, got.priority.unwrap(), got.action.unwrap())),
                        want,
                        "case {case} {spec} header {h}"
                    );
                }
            }
        }
    }
}

/// The shard plan is seeded-deterministic end to end: two engines built
/// from the same spec over the same rules agree shard by shard.
#[test]
fn sharded_build_is_deterministic() {
    let (rules, trace) = workload(FilterKind::Acl);
    for strategy in STRATEGIES {
        let spec = format!("sharded:inner=linear,shards=8,strategy={strategy}");
        let mut a = build_engine(&spec, &rules).unwrap();
        let mut b = build_engine(&spec, &rules).unwrap();
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        a.classify_batch(&trace, &mut va);
        b.classify_batch(&trace, &mut vb);
        assert_eq!(va, vb, "{spec}");
    }
}

// ---------------------------------------------------------------------
// Churn differential oracle: interleaved insert/remove/classify on the
// sharded engine vs an unsharded inner engine rebuilt from scratch over
// the current live rule set. The rebuild is the strongest possible
// reference — it has never seen the churn history, so any state the
// sharded update path corrupts (stale id maps, broken band ordering,
// leaked hash slots) shows up as a verdict disagreement.
// ---------------------------------------------------------------------

use spc::engine::{PacketClassifier, UpdateError};

/// Interleaved churn against `spec`, checked against rebuilds of the
/// unsharded `inner` every `CHECK_EVERY` operations.
///
/// `live` tracks the expected rule set as `(global id, rule)` in
/// insertion order; since the sharded engine allocates global ids
/// monotonically and never reuses them, the rebuilt reference's
/// positional ids map back via `live[pos].0`, and priority ties break
/// identically on both sides.
fn churn_check(inner: &str, strategy: &str, shards: usize, skewed: bool) {
    const OPS: usize = 100;
    const CHECK_EVERY: usize = 25;
    let (base, _) = workload(FilterKind::Acl);
    let pool = RuleSetGenerator::new(FilterKind::Fw, 160)
        .seed(SEED ^ 0x77)
        .generate();
    let skew_opt = if skewed { ",skew=1.5" } else { "" };
    let spec = format!("sharded:inner={inner},shards={shards},strategy={strategy}{skew_opt}");
    let mut engine = build_engine(&spec, &base).unwrap();
    assert!(engine.supports_updates(), "{spec} must be updatable");
    let mut live: Vec<(spc::types::RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
    let mut rng = StdRng::seed_from_u64(SEED ^ shards as u64 ^ u64::from(skewed));
    let mut pool_next = 0usize;
    for step in 0..OPS {
        if rng.gen_bool(0.6) || live.is_empty() {
            let mut rule = pool.rules()[pool_next % pool.len()];
            pool_next += 1;
            rule.priority = if skewed {
                // Skewed workload: everything beats the base rules, so
                // every insert lands in the top priority band and the
                // rebalance path must fire.
                Priority(rng.gen_range(0..4))
            } else {
                Priority(rng.gen_range(0..50_000))
            };
            match engine.insert(rule) {
                Ok(id) => {
                    assert!(
                        live.iter().all(|&(g, _)| g != id),
                        "{spec}: global id {id} reused"
                    );
                    let report = engine
                        .last_update_report()
                        .unwrap_or_else(|| panic!("{spec}: insert must report §V.A costs"));
                    assert_eq!(report.rule_id, id, "{spec}");
                    assert!(report.hw_write_cycles >= 3, "{spec}: §V.A floor");
                    live.push((id, rule));
                }
                Err(UpdateError::Duplicate { existing }) => {
                    // Dimension collision with a live rule; the engine
                    // must name it and install nothing.
                    assert!(
                        live.iter().any(|&(g, _)| g == existing),
                        "{spec}: duplicate names a dead rule {existing}"
                    );
                }
                Err(e) => panic!("{spec}: insert failed at step {step}: {e}"),
            }
        } else {
            let victim = rng.gen_range(0..live.len());
            let (id, _) = live.remove(victim);
            engine
                .remove(id)
                .unwrap_or_else(|e| panic!("{spec}: remove {id} at step {step}: {e}"));
            assert!(
                engine.last_update_report().is_some(),
                "{spec}: remove must report §V.A costs"
            );
        }
        assert_eq!(engine.rules(), live.len(), "{spec} rule count at {step}");
        if step % CHECK_EVERY == CHECK_EVERY - 1 {
            diff_against_rebuild(&spec, engine.as_mut(), &live, inner, step as u64);
        }
    }
    diff_against_rebuild(&spec, engine.as_mut(), &live, inner, OPS as u64);
    // Error semantics after heavy churn: unknown ids and duplicates.
    let dead = spc::types::RuleId(u32::MAX - 1);
    assert!(matches!(
        engine.remove(dead),
        Err(UpdateError::UnknownRule { .. })
    ));
    if let Some(&(id, rule)) = live.first() {
        assert_eq!(
            engine.insert(rule),
            Err(UpdateError::Duplicate { existing: id }),
            "{spec}: re-inserting a live rule must collide"
        );
    }
}

/// One checkpoint: rebuild the unsharded inner from the live rules and
/// require verdict-for-verdict agreement (ids mapped through `live`),
/// on the batch and single-shot paths alike.
fn diff_against_rebuild(
    spec: &str,
    engine: &mut dyn PacketClassifier,
    live: &[(spc::types::RuleId, Rule)],
    inner: &str,
    salt: u64,
) {
    if live.is_empty() {
        return;
    }
    let rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let mut reference = build_engine(inner, &rules)
        .unwrap_or_else(|e| panic!("{spec}: rebuild reference must hold live rules: {e}"));
    let trace = TraceGenerator::new()
        .seed(SEED ^ 0xdead ^ salt)
        .match_fraction(0.8)
        .generate(&rules, 80);
    let (mut got, mut want) = (Vec::new(), Vec::new());
    engine.classify_batch(&trace, &mut got);
    reference.classify_batch(&trace, &mut want);
    for ((h, w), g) in trace.iter().zip(&want).zip(&got) {
        let want_global = w.rule.map(|pos| live[pos.0 as usize].0);
        assert_eq!(g.rule, want_global, "{spec} vs rebuilt {inner} at {h}");
        assert_eq!(g.priority, w.priority, "{spec} priority at {h}");
        assert_eq!(g.action, w.action, "{spec} action at {h}");
        let single = engine.classify(h);
        assert_eq!(single.rule, g.rule, "{spec} single-vs-batch at {h}");
    }
}

#[test]
fn churn_oracle_prio_bands() {
    for shards in SHARD_COUNTS {
        churn_check("configurable-bst", "prio", shards, false);
    }
}

#[test]
fn churn_oracle_field_hash() {
    for shards in SHARD_COUNTS {
        churn_check("configurable-bst", "hash", shards, false);
    }
}

/// Skewed-priority workload: every insert beats the whole base set, so
/// one band absorbs all churn and must rebalance (spec `skew=1.5`), and
/// verdicts must survive the migration.
#[test]
fn churn_oracle_skewed_priorities_trigger_rebalance() {
    churn_check("configurable-bst", "prio", 4, true);
}

/// The MBT-mode inner takes the same churn path.
#[test]
fn churn_oracle_mbt_inner() {
    churn_check("configurable-mbt", "prio", 2, false);
}

/// The update-first inners take the same churn path: tuple-space search
/// under priority bands, the software TCAM under field hashing.
#[test]
fn churn_oracle_tuplespace_inner() {
    churn_check("tss", "prio", 2, false);
}

#[test]
fn churn_oracle_soft_tcam_inner() {
    churn_check("tcam", "hash", 2, false);
}

/// More shards than rules, empty rule sets, and the typed-builder path
/// all behave.
#[test]
fn sharded_degenerate_shapes() {
    let tiny: RuleSet = (0..3u16)
        .map(|i| {
            Rule::builder(Priority(u32::from(i)))
                .dst_port(spc::types::PortRange::exact(i))
                .build()
        })
        .collect();
    let e = build_engine("sharded:inner=linear,shards=64", &tiny).unwrap();
    assert_eq!(e.rules(), 3);
    let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 9, 2, 6);
    assert_eq!(e.classify(&h).priority, Some(Priority(2)));

    let empty = build_engine("sharded:inner=linear", &RuleSet::new()).unwrap();
    assert_eq!(empty.rules(), 0);
    assert!(!empty.classify(&h).is_hit());

    // Typed-builder path behaves like the spec path.
    let boxed = EngineBuilder::new(EngineKind::Sharded)
        .with_shard_inner(EngineKind::Linear)
        .with_shards(2)
        .build(&tiny)
        .unwrap();
    assert_eq!(boxed.kind(), EngineKind::Sharded);
    assert_eq!(boxed.classify(&h).priority, Some(Priority(2)));
}
