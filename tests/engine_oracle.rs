//! Differential oracle: every backend in the `EngineKind` registry,
//! built from one seeded ClassBench set per filter family, must return
//! the same highest-priority match as `LinearSearch` over a generated
//! trace — through the unified `PacketClassifier` API, single-shot and
//! batch alike.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::engine::{EngineBuilder, EngineKind, Verdict};
use spc::types::{Header, RuleSet};

const RULES: usize = 400;
const TRACE: usize = 300;
const SEED: u64 = 20_14;

fn workload(kind: FilterKind) -> (RuleSet, Vec<Header>) {
    let rules = RuleSetGenerator::new(kind, RULES).seed(SEED).generate();
    let trace = TraceGenerator::new()
        .seed(SEED ^ 0xff)
        .match_fraction(0.85)
        .generate(&rules, TRACE);
    (rules, trace)
}

fn check_family(kind: FilterKind) {
    let (rules, trace) = workload(kind);
    let oracle = EngineBuilder::new(EngineKind::Linear)
        .build(&rules)
        .unwrap();
    let want: Vec<Verdict> = trace.iter().map(|h| oracle.classify(h)).collect();
    assert!(
        want.iter().filter(|v| v.is_hit()).count() > TRACE / 2,
        "workload sanity: the trace must actually exercise the rules"
    );
    for engine_kind in EngineKind::ALL {
        let mut engine = EngineBuilder::new(engine_kind)
            .build(&rules)
            .unwrap_or_else(|e| panic!("{engine_kind} must hold {kind} x{RULES}: {e}"));
        assert_eq!(engine.rules(), rules.len(), "{engine_kind}");
        let mut batched = Vec::new();
        let stats = engine.classify_batch(&trace, &mut batched);
        assert_eq!(stats.packets, trace.len() as u64, "{engine_kind}");
        for ((h, want), got) in trace.iter().zip(&want).zip(&batched) {
            // All engines resolve the identical HPMR (same rule id —
            // LinearSearch is exact, so everyone must equal it).
            assert_eq!(
                got.rule, want.rule,
                "{engine_kind} disagrees with LinearSearch on {kind:?} header {h}"
            );
            assert_eq!(got.priority, want.priority, "{engine_kind} priority at {h}");
            assert_eq!(got.action, want.action, "{engine_kind} action at {h}");
            // And the single-shot path agrees with the batch path.
            let single = engine.classify(h);
            assert_eq!(
                single.rule, got.rule,
                "{engine_kind} single-vs-batch at {h}"
            );
        }
    }
}

#[test]
fn all_engines_match_oracle_acl() {
    check_family(FilterKind::Acl);
}

#[test]
fn all_engines_match_oracle_fw() {
    check_family(FilterKind::Fw);
}

#[test]
fn all_engines_match_oracle_ipc() {
    check_family(FilterKind::Ipc);
}
