//! Integration oracles for the update-first backends: tuple-space
//! search (`tss:`) and the software TCAM (`tcam:`) — pathological
//! shapes, typed capacity errors, and scripted churn against a
//! linear-search rebuild, bare and under the snapshot/cached wrappers.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::engine::{
    build_engine, BuildError, EngineBuilder, PacketClassifier, SoftTcamEngine, TupleSpaceEngine,
    UpdateError,
};
use spc::types::{PortRange, Prefix, Priority, ProtoSpec, Rule, RuleId, RuleSet};

const SEED: u64 = 0x7557;

/// Every rule gets its own mask signature (a distinct src-prefix length
/// per rule, half of them with an exact dst-port, half ranged), so the
/// tuple space degenerates to one tuple per rule — the structure's
/// worst case must stay oracle-correct, not just its happy path.
#[test]
fn tss_one_tuple_per_rule_worst_case_stays_correct() {
    let rules: RuleSet = (0..33u32)
        .map(|len| {
            let mut b = Rule::builder(Priority(len))
                .src_ip(Prefix::masked(0x0a00_0000, len as u8))
                .proto(ProtoSpec::Exact(6));
            if len % 2 == 0 {
                b = b.dst_port(PortRange::exact(80));
            }
            b.build()
        })
        .collect();

    let engine = TupleSpaceEngine::build(&rules, 8).unwrap();
    assert_eq!(
        engine.tuple_space().tuple_count(),
        rules.len(),
        "every distinct mask signature must open its own tuple"
    );

    // Degenerate or not, it still agrees with the oracle.
    let trace = TraceGenerator::new()
        .seed(SEED)
        .match_fraction(0.8)
        .generate(&rules, 200);
    let oracle = build_engine("linear", &rules).unwrap();
    for h in &trace {
        let (want, got) = (oracle.classify(h), engine.classify(h));
        assert_eq!(got.rule, want.rule, "tss worst case at {h}");
        assert_eq!(got.priority, want.priority, "tss worst case at {h}");
    }
}

/// Capacity exhaustion is a *typed* error on both paths: `Rejected` at
/// build time through the spec pipeline, `Rejected` again on a live
/// insert — never a panic, never a silent truncation.
#[test]
fn tcam_capacity_exhaustion_is_typed_on_both_paths() {
    // One wide port range expands to far more than 4 prefix entries.
    let wide: RuleSet = std::iter::once(
        Rule::builder(Priority(0))
            .src_port(PortRange::new(1000, 40_000).unwrap())
            .build(),
    )
    .collect();
    match EngineBuilder::from_spec("tcam:capacity=4,partitions=2")
        .unwrap()
        .build(&wide)
    {
        Err(BuildError::Rejected { kind, reason }) => {
            assert_eq!(kind.as_str(), "tcam");
            assert!(reason.contains("capacity"), "{reason}");
        }
        other => panic!("expected typed Rejected, got {other:?}"),
    }

    // Same rule against a live engine that is already near-full.
    let mut engine = SoftTcamEngine::build(&RuleSet::new(), 4, 2).unwrap();
    let before = engine.update_epoch();
    match engine.insert(wide.rules()[0]) {
        Err(UpdateError::Rejected { reason }) => assert!(reason.contains("capacity"), "{reason}"),
        other => panic!("expected typed Rejected, got {other:?}"),
    }
    assert_eq!(engine.update_epoch(), before, "failed insert must not bump");
}

/// Scripted churn oracle: drive inserts/removes from a seeded script
/// and, at every checkpoint, demand verdict-for-verdict agreement with
/// a linear-search engine rebuilt from the live rules — for both
/// backends, bare and under `snapshot:` / `cached:`.
#[test]
fn tss_and_tcam_survive_churn_bare_and_wrapped() {
    let base = RuleSetGenerator::new(FilterKind::Acl, 150)
        .seed(SEED)
        .generate();
    let pool = RuleSetGenerator::new(FilterKind::Fw, 120)
        .seed(SEED ^ 0x77)
        .generate();

    for spec in [
        "tss",
        "tcam",
        "snapshot:inner=tss",
        "snapshot:inner=tcam",
        "cached:inner=tss,flows=64",
        "cached:inner=tcam,flows=64",
    ] {
        let mut engine = build_engine(spec, &base).unwrap();
        assert!(engine.supports_updates(), "{spec}");
        let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xc4u64);
        let mut pool_next = 0usize;

        for step in 0..120 {
            if rng.gen_bool(0.6) || live.is_empty() {
                let mut rule = pool.rules()[pool_next % pool.len()];
                pool_next += 1;
                rule.priority = Priority(rng.gen_range(0..50_000));
                match engine.insert(rule) {
                    Ok(id) => {
                        assert!(live.iter().all(|&(g, _)| g != id), "{spec}: id {id} reused");
                        live.push((id, rule));
                    }
                    Err(UpdateError::Duplicate { existing }) => {
                        assert!(
                            live.iter().any(|&(g, _)| g == existing),
                            "{spec}: duplicate names a dead rule"
                        );
                    }
                    Err(e) => panic!("{spec}: insert failed at step {step}: {e}"),
                }
            } else {
                let victim = live.swap_remove(rng.gen_range(0..live.len())).0;
                engine
                    .remove(victim)
                    .unwrap_or_else(|e| panic!("{spec}: remove {victim} failed: {e}"));
            }
            assert_eq!(engine.rules(), live.len(), "{spec} at step {step}");

            if step % 30 == 29 {
                // Checkpoint: the reference allocates positional ids in
                // `live` order; both sides allocate monotonically, so
                // priority ties break identically after the mapping.
                let mut by_id = live.clone();
                by_id.sort_by_key(|&(id, _)| id);
                let rules: RuleSet = by_id.iter().map(|&(_, r)| r).collect();
                let reference = build_engine("linear", &rules).unwrap();
                let trace = TraceGenerator::new()
                    .seed(SEED ^ step as u64)
                    .match_fraction(0.8)
                    .generate(&rules, 60);
                for h in &trace {
                    let want = reference.classify(h);
                    let got = engine.classify(h);
                    let want_global = want.rule.map(|pos| by_id[pos.0 as usize].0);
                    assert_eq!(got.rule, want_global, "{spec} vs rebuild at {h}");
                    assert_eq!(got.priority, want.priority, "{spec} priority at {h}");
                    assert_eq!(got.action, want.action, "{spec} action at {h}");
                }
            }
        }
    }
}
