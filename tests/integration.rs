//! Cross-crate integration tests: the configurable classifier against the
//! linear-search oracle and the baseline classifiers, across filter
//! families, algorithms and update sequences.

use spc::baselines::{Baseline, Dcfl, HyperCuts, LinearSearch, Rfc};
use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::core::{ArchConfig, Classifier, CombineStrategy, IpAlg};
use spc::types::{Header, RuleId, RuleSet};

fn gen(kind: FilterKind, n: usize, seed: u64) -> RuleSet {
    RuleSetGenerator::new(kind, n).seed(seed).generate()
}

fn trace(rules: &RuleSet, n: usize) -> Vec<Header> {
    TraceGenerator::new().seed(17).match_fraction(0.85).generate(rules, n)
}

fn classifier(alg: IpAlg) -> Classifier {
    let mut cfg = ArchConfig::large().with_ip_alg(alg);
    cfg.rule_filter_addr_bits = 14;
    Classifier::new(cfg)
}

#[test]
fn classifier_matches_oracle_all_kinds_both_algs() {
    for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
        let rules = gen(kind, 700, 5);
        for alg in [IpAlg::Mbt, IpAlg::Bst] {
            let mut cls = classifier(alg);
            cls.load(&rules).unwrap();
            for h in trace(&rules, 400) {
                assert_eq!(
                    cls.classify(&h).hit.map(|x| x.rule_id),
                    rules.classify(&h).map(|(id, _)| id),
                    "kind {kind} alg {alg} header {h}"
                );
            }
        }
    }
}

#[test]
fn all_baselines_agree_on_one_trace() {
    let rules = gen(FilterKind::Acl, 500, 9);
    let oracle = LinearSearch::build(&rules);
    let hc = HyperCuts::build(&rules, Default::default());
    let rfc = Rfc::build(&rules, 1 << 26).unwrap();
    let dcfl = Dcfl::build(&rules);
    let mut cls = classifier(IpAlg::Mbt);
    cls.load(&rules).unwrap();
    for h in trace(&rules, 400) {
        let want = oracle.classify(&h).rule;
        assert_eq!(hc.classify(&h).rule, want, "hypercuts@{h}");
        assert_eq!(rfc.classify(&h).rule, want, "rfc@{h}");
        assert_eq!(dcfl.classify(&h).rule, want, "dcfl@{h}");
        assert_eq!(cls.classify(&h).hit.map(|x| x.rule_id), want, "spc@{h}");
    }
}

#[test]
fn incremental_removal_tracks_oracle() {
    let rules = gen(FilterKind::Acl, 400, 3);
    let mut cls = classifier(IpAlg::Mbt);
    let ids = cls.load(&rules).unwrap();
    // Remove every third rule; the oracle is the filtered rule set.
    let mut kept: Vec<(RuleId, spc::types::Rule)> = Vec::new();
    for (i, (id, r)) in ids.iter().zip(rules.rules()).enumerate() {
        if i % 3 == 0 {
            cls.remove(*id).unwrap();
        } else {
            kept.push((*id, *r));
        }
    }
    let t = trace(&rules, 300);
    for h in &t {
        let want = kept
            .iter()
            .filter(|(_, r)| r.matches(h))
            .min_by_key(|(id, r)| (r.priority, id.0))
            .map(|(id, _)| *id);
        assert_eq!(cls.classify(h).hit.map(|x| x.rule_id), want, "header {h}");
    }
    // Reinsert the removed rules; behaviour must return to the full set.
    for (i, r) in rules.rules().iter().enumerate() {
        if i % 3 == 0 {
            cls.insert(*r).unwrap();
        }
    }
    for h in &t {
        assert_eq!(
            cls.classify(h).hit.map(|x| x.rule.priority),
            rules.classify(h).map(|(_, r)| r.priority),
            "after reinsertion, header {h}"
        );
    }
}

#[test]
fn runtime_reconfiguration_is_transparent() {
    let rules = gen(FilterKind::Ipc, 500, 13);
    let mut cls = classifier(IpAlg::Mbt);
    cls.load(&rules).unwrap();
    let t = trace(&rules, 200);
    let before: Vec<_> = t.iter().map(|h| cls.classify(h).hit.map(|x| x.rule_id)).collect();
    cls.set_ip_alg(IpAlg::Bst).unwrap();
    let mid: Vec<_> = t.iter().map(|h| cls.classify(h).hit.map(|x| x.rule_id)).collect();
    cls.set_ip_alg(IpAlg::Mbt).unwrap();
    let after: Vec<_> = t.iter().map(|h| cls.classify(h).hit.map(|x| x.rule_id)).collect();
    assert_eq!(before, mid);
    assert_eq!(before, after);
}

#[test]
fn fast_path_hits_are_always_valid_matches() {
    // FirstLabel may return a sub-optimal rule but never an invalid one.
    let rules = gen(FilterKind::Acl, 600, 21);
    let mut cfg = ArchConfig::large().with_combine(CombineStrategy::FirstLabel);
    cfg.rule_filter_addr_bits = 14;
    let mut cls = Classifier::new(cfg);
    cls.load(&rules).unwrap();
    for h in trace(&rules, 500) {
        if let Some(hit) = cls.classify(&h).hit {
            assert!(hit.rule.matches(&h), "fast-path hit must match: {h}");
        }
    }
}

#[test]
fn label_counts_return_to_zero_after_full_teardown() {
    let rules = gen(FilterKind::Fw, 300, 2);
    let mut cls = classifier(IpAlg::Mbt);
    let ids = cls.load(&rules).unwrap();
    assert!(cls.live_labels().iter().sum::<usize>() > 0);
    for id in ids {
        cls.remove(id).unwrap();
    }
    assert!(cls.is_empty());
    assert_eq!(cls.live_labels(), [0; 7], "refcounts must drain completely");
    // The classifier remains usable.
    cls.load(&rules).unwrap();
    assert_eq!(cls.len(), rules.len());
}

#[test]
fn update_costs_are_small_and_reported() {
    let rules = gen(FilterKind::Acl, 200, 4);
    let mut cls = classifier(IpAlg::Mbt);
    let mut max_cycles = 0u64;
    for r in rules.rules() {
        let rep = cls.insert(*r).unwrap();
        assert!(rep.hw_write_cycles >= 3, "at least 2 data + 1 hash cycle (§V.A)");
        max_cycles = max_cycles.max(rep.hw_write_cycles);
    }
    // Label sharing keeps the worst insert far below a structure rebuild.
    assert!(max_cycles < 2_000, "worst insert cost {max_cycles} cycles");
}
