//! Cross-crate integration tests, routed through the unified
//! `spc::engine::PacketClassifier` API wherever the scenario is
//! backend-agnostic; architecture-specific behaviours (`IPalg_s`
//! switching, label refcounts, §V.A update accounting) still poke
//! `spc::core::Classifier` directly through the engine's accessor.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::core::{ArchConfig, Classifier, IpAlg};
use spc::engine::{build_engine, ConfigurableEngine, EngineBuilder, EngineKind, PacketClassifier};
use spc::types::{Header, RuleId, RuleSet};

fn gen(kind: FilterKind, n: usize, seed: u64) -> RuleSet {
    RuleSetGenerator::new(kind, n).seed(seed).generate()
}

fn trace(rules: &RuleSet, n: usize) -> Vec<Header> {
    TraceGenerator::new()
        .seed(17)
        .match_fraction(0.85)
        .generate(rules, n)
}

#[test]
fn configurable_matches_oracle_all_kinds_both_algs() {
    for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
        let rules = gen(kind, 700, 5);
        for engine_kind in [EngineKind::ConfigurableMbt, EngineKind::ConfigurableBst] {
            let engine = EngineBuilder::new(engine_kind)
                .with_rule_filter_bits(14)
                .build(&rules)
                .unwrap();
            for h in trace(&rules, 400) {
                assert_eq!(
                    engine.classify(&h).rule,
                    rules.classify(&h).map(|(id, _)| id),
                    "kind {kind} engine {engine_kind} header {h}"
                );
            }
        }
    }
}

#[test]
fn spec_string_sweep_agrees_on_one_trace() {
    // The CLI-style entry point: every backend built from its config
    // string, compared over one batch through the unified API.
    let rules = gen(FilterKind::Acl, 500, 9);
    let t = trace(&rules, 400);
    let oracle = build_engine("linear", &rules).unwrap();
    let want: Vec<Option<RuleId>> = t.iter().map(|h| oracle.classify(h).rule).collect();
    for spec in [
        "configurable-mbt:rf_bits=14",
        "configurable-bst:rf_bits=14",
        "hypercuts",
        "rfc",
        "dcfl",
    ] {
        let mut engine = build_engine(spec, &rules).unwrap();
        let mut verdicts = Vec::new();
        let stats = engine.classify_batch(&t, &mut verdicts);
        assert_eq!(stats.packets, t.len() as u64, "{spec}");
        assert_eq!(
            stats.hits,
            want.iter().filter(|w| w.is_some()).count() as u64,
            "{spec}"
        );
        for ((h, want), got) in t.iter().zip(&want).zip(&verdicts) {
            assert_eq!(got.rule, *want, "{spec}@{h}");
        }
        assert!(stats.mem_reads > 0, "{spec} must account its reads");
    }
}

#[test]
fn incremental_removal_tracks_oracle() {
    let rules = gen(FilterKind::Acl, 400, 3);
    let mut engine = EngineBuilder::new(EngineKind::ConfigurableMbt)
        .with_rule_filter_bits(14)
        .build(&RuleSet::new())
        .unwrap();
    assert!(engine.supports_updates());
    let ids: Vec<RuleId> = rules
        .rules()
        .iter()
        .map(|r| engine.insert(*r).unwrap())
        .collect();
    // Remove every third rule; the oracle is the filtered rule set.
    let mut kept: Vec<(RuleId, spc::types::Rule)> = Vec::new();
    for (i, (id, r)) in ids.iter().zip(rules.rules()).enumerate() {
        if i % 3 == 0 {
            engine.remove(*id).unwrap();
        } else {
            kept.push((*id, *r));
        }
    }
    let t = trace(&rules, 300);
    for h in &t {
        let want = kept
            .iter()
            .filter(|(_, r)| r.matches(h))
            .min_by_key(|(id, r)| (r.priority, id.0))
            .map(|(id, _)| *id);
        assert_eq!(engine.classify(h).rule, want, "header {h}");
    }
    // Reinsert the removed rules; behaviour must return to the full set.
    for (i, r) in rules.rules().iter().enumerate() {
        if i % 3 == 0 {
            engine.insert(*r).unwrap();
        }
    }
    for h in &t {
        assert_eq!(
            engine.classify(h).priority,
            rules.classify(h).map(|(_, r)| r.priority),
            "after reinsertion, header {h}"
        );
    }
}

#[test]
fn runtime_reconfiguration_is_transparent() {
    let rules = gen(FilterKind::Ipc, 500, 13);
    let mut cfg = ArchConfig::large().with_ip_alg(IpAlg::Mbt);
    cfg.rule_filter_addr_bits = 14;
    let mut cls = Classifier::new(cfg);
    cls.load(&rules).unwrap();
    let mut engine = ConfigurableEngine::new(cls);
    let t = trace(&rules, 200);
    let mut before = Vec::new();
    engine.classify_batch(&t, &mut before);
    // The `IPalg_s` switch is architecture-specific: reach through the
    // accessor, then verify through the unified API again.
    engine.classifier_mut().set_ip_alg(IpAlg::Bst).unwrap();
    assert_eq!(engine.kind(), EngineKind::ConfigurableBst);
    let mut mid = Vec::new();
    engine.classify_batch(&t, &mut mid);
    engine.classifier_mut().set_ip_alg(IpAlg::Mbt).unwrap();
    assert_eq!(engine.kind(), EngineKind::ConfigurableMbt);
    let mut after = Vec::new();
    engine.classify_batch(&t, &mut after);
    let rule_ids = |vs: &[spc::engine::Verdict]| -> Vec<Option<RuleId>> {
        vs.iter().map(|v| v.rule).collect()
    };
    assert_eq!(rule_ids(&before), rule_ids(&mid));
    assert_eq!(rule_ids(&before), rule_ids(&after));
}

#[test]
fn fast_path_hits_are_always_valid_matches() {
    // FirstLabel may return a sub-optimal rule but never an invalid one.
    let rules = gen(FilterKind::Acl, 600, 21);
    let engine = build_engine("configurable-mbt:rf_bits=14,combine=first", &rules).unwrap();
    for h in trace(&rules, 500) {
        if let Some(id) = engine.classify(&h).rule {
            let rule = rules.get(id).expect("verdict ids come from the build set");
            assert!(rule.matches(&h), "fast-path hit must match: {h}");
        }
    }
}

#[test]
fn label_counts_return_to_zero_after_full_teardown() {
    let rules = gen(FilterKind::Fw, 300, 2);
    let mut cfg = ArchConfig::large();
    cfg.rule_filter_addr_bits = 14;
    let mut engine = ConfigurableEngine::new(Classifier::new(cfg));
    let ids: Vec<RuleId> = rules
        .rules()
        .iter()
        .map(|r| engine.insert(*r).unwrap())
        .collect();
    for id in ids {
        engine.remove(id).unwrap();
    }
    assert_eq!(engine.rules(), 0);
    for h in trace(&rules, 50) {
        assert!(!engine.classify(&h).is_hit(), "empty engine must miss: {h}");
    }
    // The refcount drain is a label-table invariant: check it at the core
    // layer through the accessor.
    assert_eq!(
        engine.classifier().live_labels(),
        [0; 7],
        "refcounts must drain completely"
    );
    // The engine remains usable.
    for r in rules.rules() {
        engine.insert(*r).unwrap();
    }
    assert_eq!(engine.rules(), rules.len());
}

#[test]
fn update_costs_are_small_and_reported() {
    let rules = gen(FilterKind::Acl, 200, 4);
    let mut cfg = ArchConfig::large();
    cfg.rule_filter_addr_bits = 14;
    let mut cls = Classifier::new(cfg);
    let mut max_cycles = 0u64;
    for r in rules.rules() {
        let rep = cls.insert(*r).unwrap();
        assert!(
            rep.hw_write_cycles >= 3,
            "at least 2 data + 1 hash cycle (§V.A)"
        );
        max_cycles = max_cycles.max(rep.hw_write_cycles);
    }
    // Label sharing keeps the worst insert far below a structure rebuild.
    assert!(max_cycles < 2_000, "worst insert cost {max_cycles} cycles");
}
