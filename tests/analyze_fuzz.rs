//! Adversarial fuzz tier: structure-aware, seeded rule-set mutators
//! cross-checked against the semantic oracle.
//!
//! Three layers, all driven by the vendored SplitMix64 generator so every
//! failure reproduces from its seed:
//!
//! 1. **Parser robustness** — mutated ClassBench rule text, scenario
//!    scripts and pcap captures (bit flips, truncation, token garbage)
//!    must never panic the parsers; they may only return errors.
//! 2. **Differential backends** — every adversarial rule set builds on
//!    all ten registry backends, and each backend returns LinearSearch's
//!    verdict on every probe header.
//! 3. **Analyzer cross-check** — `spc_analyze` predictions are compared
//!    against observed behaviour: flagged-shadowed rules are never the
//!    highest-priority match, exhaustive reports miss no dead rule, and
//!    the label-cardinality / distinct-key estimates equal the label and
//!    Rule Filter occupancy of a really-built `spc_core::Classifier`.
//!
//! The mutators draw field values from small pools on purpose: tiny
//! per-dimension alphabets keep the elementary-interval probe grid within
//! the analyzer's budget (so reports are `exhaustive` and the
//! completeness check has teeth) while still generating wildcard-heavy,
//! shadow-chained, duplicate-ridden and degenerate-range sets that the
//! ClassBench generators never emit.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc::analyze::{
    analyze, candidate_values, grid_size, optimize, OptimizeConfig, PassKind, Reachability,
};
use spc::classbench::{PcapReader, PcapWriter, ScenarioScript, TraceSource};
use spc::core::{ArchConfig, Classifier};
use spc::engine::{BuildError, EngineBuilder, EngineKind};
use spc::types::{
    parse_ruleset, write_ruleset, Header, PortRange, Prefix, Priority, ProtoSpec, Rule, RuleId,
    RuleSet,
};

/// Adversarial sets per differential/cross-check run (the acceptance bar
/// is 50; a few extra guard against future pool tweaks).
const SETS: usize = 60;
const _: () = assert!(SETS >= 50, "corpus below the 50-set acceptance bar");
/// Base seed for the whole tier (change = a new corpus, on purpose).
const FUZZ_SEED: u64 = 0x5bc_2014;

/// IP prefix alphabet: wildcard, a short prefix, a /16 and a host — the
/// minimum that exercises any/partial/exact segment labels in both the
/// upper and lower 16-bit halves.
fn prefix_pool() -> Vec<Prefix> {
    ["0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.2.3/32"]
        .iter()
        .map(|s| Prefix::parse(s).unwrap())
        .collect()
}

/// Port alphabet: wildcard, exact, the two classic halves, a short odd
/// range and the maximally pathological almost-full range (30 prefixes).
fn port_pool() -> Vec<PortRange> {
    vec![
        PortRange::ANY,
        PortRange::exact(80),
        PortRange::new(0, 1023).unwrap(),
        PortRange::new(1024, 65535).unwrap(),
        PortRange::new(1000, 1016).unwrap(),
        PortRange::new(1, 65534).unwrap(),
    ]
}

fn proto_pool() -> Vec<ProtoSpec> {
    vec![ProtoSpec::Any, ProtoSpec::Exact(6), ProtoSpec::Exact(17)]
}

fn random_rule(rng: &mut StdRng, priority: u32) -> Rule {
    let prefixes = prefix_pool();
    let ports = port_pool();
    let protos = proto_pool();
    Rule::builder(Priority(priority))
        .src_ip(*prefixes.choose(rng).unwrap())
        .dst_ip(*prefixes.choose(rng).unwrap())
        .src_port(*ports.choose(rng).unwrap())
        .dst_port(*ports.choose(rng).unwrap())
        .proto(*protos.choose(rng).unwrap())
        .build()
}

/// One adversarial rule set: random draws from the pools, plus seeded
/// structural attacks — shadow chains (a later rule covered dim-by-dim
/// by an earlier one) and occasional all-wildcard rules at random
/// positions. Priorities follow insertion order, with occasional ties so
/// the id tie-break is exercised. Duplicate 5-tuples are filtered out
/// here; `duplicate_injection` adds them back deliberately.
fn adversarial_set(seed: u64) -> RuleSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..=10);
    let mut rules: Vec<Rule> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut priority = 0u32;
    while rules.len() < n {
        // Ties in ~1/4 of steps: the previous priority repeats.
        if !rules.is_empty() && rng.gen_bool(0.25) {
            priority = priority.saturating_sub(1);
        }
        let rule = if rng.gen_bool(0.15) {
            // All-wildcard catch-all, anywhere in the order.
            Rule::any(Priority(priority))
        } else if !rules.is_empty() && rng.gen_bool(0.3) {
            // Shadow-chain attack: specialise an existing rule by
            // narrowing one field, leaving the rest identical — covered
            // dim-by-dim when placed later at lower priority.
            let base = *rules.as_slice().choose(&mut rng).unwrap();
            let mut r = base;
            r.priority = Priority(priority);
            match rng.gen_range(0u8..3) {
                0 => r.src_ip = Prefix::parse("10.1.2.3/32").unwrap(),
                1 => r.dst_port = PortRange::exact(80),
                _ => r.proto = ProtoSpec::Exact(6),
            }
            r
        } else {
            random_rule(&mut rng, priority)
        };
        priority += 1;
        if seen.insert(rule.dim_values()) {
            rules.push(rule);
        }
    }
    RuleSet::from_rules(rules)
}

/// All probe headers of the elementary-interval grid (panics if the grid
/// overflows — the pools are sized so it never does here).
fn grid_headers(rules: &RuleSet) -> Vec<Header> {
    let cands = candidate_values(rules);
    let size = grid_size(&cands).expect("pool alphabets keep the grid tiny");
    let mut out = Vec::with_capacity(size);
    let mut idx = [0usize; 7];
    loop {
        let vals = [
            cands[0][idx[0]],
            cands[1][idx[1]],
            cands[2][idx[2]],
            cands[3][idx[3]],
            cands[4][idx[4]],
            cands[5][idx[5]],
            cands[6][idx[6]],
        ];
        out.push(spc::analyze::header_from_dims(vals));
        let mut d = 6;
        loop {
            idx[d] += 1;
            if idx[d] < cands[d].len() {
                break;
            }
            idx[d] = 0;
            if d == 0 {
                return out;
            }
            d -= 1;
        }
    }
}

/// The HPM winners actually observed over the full probe grid, per the
/// semantic oracle (`RuleSet::classify`). Because the analyzer's verdict
/// is piecewise-constant over exactly this grid, "observed here" is
/// ground truth for reachability.
fn observed_winners(rules: &RuleSet, grid: &[Header]) -> std::collections::HashSet<RuleId> {
    grid.iter()
        .filter_map(|h| rules.classify(h).map(|(id, _)| id))
        .collect()
}

#[test]
fn adversarial_sets_cross_check_analyzer_oracle_and_backends() {
    let mut exhaustive_sets = 0usize;
    for i in 0..SETS {
        let seed = FUZZ_SEED + i as u64;
        let rules = adversarial_set(seed);
        let report = analyze(&rules);
        assert_eq!(report.rules, rules.len(), "seed {seed}");

        let grid = grid_headers(&rules);
        let winners = observed_winners(&rules, &grid);

        // Witnesses really witness: classifying a Reachable witness
        // returns exactly the rule it was produced for.
        for (id, r) in report.reachability.iter().enumerate() {
            let id = RuleId(id as u32);
            match r {
                Reachability::Reachable { witness } => {
                    let (got, _) = rules
                        .classify(witness)
                        .unwrap_or_else(|| panic!("seed {seed}: witness for {id} matches nothing"));
                    assert_eq!(got, id, "seed {seed}: witness names the wrong winner");
                }
                Reachability::Shadowed | Reachability::Unknown => {}
            }
        }

        // Soundness: a rule the analyzer calls shadowed is never the
        // highest-priority match anywhere on the grid.
        let flagged: std::collections::HashSet<RuleId> =
            report.shadowed_rules().into_iter().collect();
        for id in &flagged {
            assert!(
                !winners.contains(id),
                "seed {seed}: analyzer flagged {id} shadowed but the oracle observed it winning"
            );
        }
        // Completeness (zero false negatives): under an exhaustive
        // sweep, every rule that never wins on the grid is flagged.
        if report.exhaustive {
            exhaustive_sets += 1;
            for (id, _) in rules.iter() {
                if !winners.contains(&id) {
                    assert!(
                        flagged.contains(&id),
                        "seed {seed}: {id} never wins on the grid but was not flagged shadowed"
                    );
                }
            }
        }

        // Label-cardinality and key-count predictions equal the label
        // and Rule Filter occupancy of a really-built classifier.
        let mut cls = Classifier::new(ArchConfig::large());
        for (_, rule) in rules.iter() {
            cls.insert(*rule)
                .unwrap_or_else(|e| panic!("seed {seed}: large() config must hold the set: {e}"));
        }
        assert_eq!(
            cls.live_labels(),
            report.dim_cardinality,
            "seed {seed}: predicted per-dimension labels vs live label tables"
        );
        assert_eq!(
            cls.rule_filter().len(),
            report.distinct_keys,
            "seed {seed}: predicted distinct keys vs Rule Filter occupancy"
        );

        // Differential: all ten registry backends agree with
        // LinearSearch on every probe header of the grid.
        let oracle = EngineBuilder::new(EngineKind::Linear)
            .build(&rules)
            .unwrap();
        let want: Vec<_> = grid.iter().map(|h| oracle.classify(h)).collect();
        for kind in EngineKind::ALL {
            let engine = EngineBuilder::new(kind)
                .build(&rules)
                .unwrap_or_else(|e| panic!("seed {seed}: {kind} rejected the set: {e}"));
            for (h, want) in grid.iter().zip(&want) {
                let got = engine.classify(h);
                assert_eq!(
                    got.rule, want.rule,
                    "seed {seed}: {kind} disagrees with LinearSearch at {h}"
                );
                assert_eq!(got.action, want.action, "seed {seed}: {kind} action at {h}");
            }
        }
    }
    // The acceptance bar: the overwhelming majority of sets swept
    // under an exhaustive (exact) analysis.
    assert!(
        exhaustive_sets >= SETS - 5,
        "only {exhaustive_sets}/{SETS} sets swept exhaustively; shrink the pools"
    );
}

#[test]
fn optimizer_round_trips_on_every_adversarial_set_and_backend() {
    use spc::engine::OptimizePolicy;
    for i in 0..SETS {
        let seed = FUZZ_SEED + i as u64;
        let rules = adversarial_set(seed);
        let grid = grid_headers(&rules);

        // Full pipeline (merging included): the optimized set gives every
        // grid header the same *action* outcome as the original. The
        // original's grid is a decision grid for the pair — every cut
        // point the optimizer can produce (range unions, survivors) is
        // already a cut point of the original set.
        let opt = optimize(&rules, &OptimizeConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: optimizer failed validation: {e}"));
        assert!(
            opt.validation.is_equivalent(),
            "seed {seed}: tiny pool grids must validate exhaustively, got {}",
            opt.validation
        );
        for h in &grid {
            let want = rules.classify(h).map(|(_, r)| r.action);
            let got = opt.rules.classify(h).map(|(_, r)| r.action);
            assert_eq!(got, want, "seed {seed}: optimized action differs at {h}");
        }

        // Every rule the duplicate/dead passes removed is independently
        // condemned by the analyzer: a duplicate-rule or shadowed-rule
        // finding names it. (Range-merge removals are exempt — absorbed
        // rules are live, just action-redundant with their survivor.)
        let report = analyze(&rules);
        let condemned: std::collections::HashSet<RuleId> = report
            .findings
            .iter()
            .filter(|f| matches!(f.kind.code(), "duplicate-rule" | "shadowed-rule"))
            .flat_map(|f| f.rules.iter().copied())
            .collect();
        for pass in &opt.passes {
            if matches!(
                pass.pass,
                PassKind::DuplicateCoalescing | PassKind::DeadRuleElimination
            ) {
                for id in &pass.removed {
                    assert!(
                        condemned.contains(id),
                        "seed {seed}: optimizer removed {id} ({}) but the analyzer \
                         does not flag it",
                        pass.pass
                    );
                }
            }
        }

        // Engine wiring: every registry backend built with
        // optimize=validated returns the *unoptimized* linear oracle's
        // verdict — original rule id, priority and action — on every
        // grid header.
        let oracle = EngineBuilder::new(EngineKind::Linear)
            .build(&rules)
            .unwrap();
        for kind in EngineKind::ALL {
            let engine = EngineBuilder::new(kind)
                .with_optimize(OptimizePolicy::Validated)
                .build(&rules)
                .unwrap_or_else(|e| panic!("seed {seed}: {kind} optimized build failed: {e}"));
            assert_eq!(engine.rules(), rules.len(), "seed {seed}: {kind}");
            for h in &grid {
                let want = oracle.classify(h);
                let got = engine.classify(h);
                assert_eq!(
                    got.rule, want.rule,
                    "seed {seed}: optimized {kind} id differs at {h}"
                );
                assert_eq!(
                    got.priority, want.priority,
                    "seed {seed}: optimized {kind} priority at {h}"
                );
                assert_eq!(
                    got.action, want.action,
                    "seed {seed}: optimized {kind} action at {h}"
                );
            }
        }
    }
}

#[test]
fn duplicate_injection_is_flagged_and_rejected_everywhere() {
    for i in 0..20 {
        let seed = FUZZ_SEED ^ 0xd0b0 ^ (i as u64) << 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let base = adversarial_set(seed);
        // Re-insert a copy of an existing rule at a random position
        // (fresh priority, identical 5-tuple).
        let mut rules: Vec<Rule> = base.rules().to_vec();
        let dup = *rules.as_slice().choose(&mut rng).unwrap();
        let at = rng.gen_range(0..=rules.len());
        rules.insert(at, dup);
        let rules = RuleSet::from_rules(rules);

        let report = analyze(&rules);
        assert!(
            report.has_errors(),
            "seed {seed}: duplicate 5-tuple must be an error finding"
        );
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind.code() == "duplicate-rule"),
            "seed {seed}: missing duplicate-rule finding"
        );
        for kind in EngineKind::ALL {
            match EngineBuilder::new(kind).build(&rules) {
                Err(BuildError::DuplicateRules { first, dup }) => {
                    assert_eq!(
                        rules.get(first).unwrap().dim_values(),
                        rules.get(dup).unwrap().dim_values(),
                        "seed {seed}: {kind} blamed non-identical rules"
                    );
                }
                other => panic!(
                    "seed {seed}: {kind} must reject duplicate sets with \
                     DuplicateRules, got {other:?}"
                ),
            }
        }
    }
}

#[test]
fn seeded_reports_are_byte_identical() {
    for seed in [FUZZ_SEED, FUZZ_SEED + 7, FUZZ_SEED + 31] {
        let a = analyze(&adversarial_set(seed));
        let b = analyze(&adversarial_set(seed));
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "seed {seed}: same seed must reproduce the identical report"
        );
    }
    let a = analyze(&adversarial_set(FUZZ_SEED));
    let b = analyze(&adversarial_set(FUZZ_SEED + 1));
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "different seeds should produce different corpora"
    );
}

/// Applies `n` random byte-level mutations: flips, deletions and
/// truncations, plus occasional garbage splices.
fn mutate_bytes(rng: &mut StdRng, data: &mut Vec<u8>, n: usize) {
    for _ in 0..n {
        if data.is_empty() {
            data.push(rng.gen());
            continue;
        }
        match rng.gen_range(0u8..4) {
            0 => {
                let at = rng.gen_range(0..data.len());
                data[at] ^= 1 << rng.gen_range(0u8..8);
            }
            1 => {
                let at = rng.gen_range(0..data.len());
                data.remove(at);
            }
            2 => {
                let keep = rng.gen_range(0..=data.len());
                data.truncate(keep);
            }
            _ => {
                let at = rng.gen_range(0..=data.len());
                let garbage: u8 = rng.gen();
                data.insert(at, garbage);
            }
        }
    }
}

#[test]
fn mutated_rule_text_never_panics_the_parser() {
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ 0x7e47);
    for i in 0..100 {
        let base = write_ruleset(&adversarial_set(FUZZ_SEED + i));
        let mut data = base.into_bytes();
        mutate_bytes(&mut rng, &mut data, 1 + (i as usize % 8));
        // Errors are fine (and expected); only a panic fails the test.
        let _ = parse_ruleset(&String::from_utf8_lossy(&data));
    }
    // Unmutated text still round-trips, so the corpus above is "near
    // valid" rather than trivially rejected at byte 0.
    let rs = adversarial_set(FUZZ_SEED);
    let reparsed = parse_ruleset(&write_ruleset(&rs)).expect("round-trip");
    assert_eq!(reparsed.len(), rs.len());
}

#[test]
fn mutated_scenario_scripts_never_panic_the_parser() {
    let corpus = [
        "insert 10; classify 100; remove 10",
        "repeat 5 { insert 2; classify 8; remove 2 }",
        "classify 1\nrepeat 3 { repeat 2 { insert 1 } remove 6 }",
        "# comment only\n",
        "insert 18446744073709551615; repeat 4294967295 { classify 1 }",
    ];
    let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ 0x5ce7);
    for i in 0..100u64 {
        let base = corpus[(i as usize) % corpus.len()];
        let mut data = base.as_bytes().to_vec();
        mutate_bytes(&mut rng, &mut data, 1 + (i as usize % 6));
        let _ = ScenarioScript::parse(&String::from_utf8_lossy(&data));
    }
    assert!(ScenarioScript::parse(corpus[0]).is_ok());
}

#[test]
fn mutated_pcap_captures_never_panic_the_reader() {
    // A small valid capture as the mutation substrate.
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for p in 0..16u16 {
        let h = Header::new(
            [10, 1, (p % 4) as u8, 1].into(),
            [192, 168, 0, (p % 8) as u8].into(),
            1000 + p,
            80,
            if p % 2 == 0 { 6 } else { 17 },
        );
        w.write_header(&h).unwrap();
    }
    let base = w.finish().unwrap();

    let mut rng = StdRng::seed_from_u64(FUZZ_SEED ^ 0xbcab);
    for i in 0..100usize {
        let mut data = base.clone();
        mutate_bytes(&mut rng, &mut data, 1 + i % 12);
        // Both construction and the streaming drain may error; neither
        // may panic or loop forever.
        if let Ok(mut reader) = PcapReader::from_bytes(data) {
            while let Ok(Some(_)) = reader.next_event() {}
        }
    }
    // And the unmutated capture parses completely.
    let mut reader = PcapReader::from_bytes(base).unwrap();
    let mut packets = 0;
    while let Ok(Some(_)) = reader.next_event() {
        packets += 1;
    }
    assert!(packets >= 1 && reader.packets() == 16);
}
