//! The concurrency oracle for snapshot-swap serving (`snapshot:` specs).
//!
//! Protocol (per inner spec): N reader threads classify a fixed probe
//! set in a loop while the writer replays a churn sequence against the
//! same `SnapshotEngine`. The writer keeps a *version log*: after every
//! successful update it recomputes, from a shadow rule list, the oracle
//! verdict of every probe and appends that vector — so entry `e` of the
//! log is the ground truth for the rule-set version with
//! `update_epoch() == e`. Readers record, for every classify, the
//! `(probe, epoch, verdict)` triple the snapshot reader reported.
//!
//! "Consistent" then means exactly (see `docs/concurrency.md`):
//!
//! 1. **version-vector check** — every recorded verdict equals the
//!    logged oracle verdict *of the epoch the reader says it used*,
//!    which is necessarily a version published during the reader's
//!    lifetime. A verdict mixing two versions (torn read) cannot pass,
//!    because it would match neither log entry.
//! 2. **monotonic epochs** — each reader's observed `update_epoch()`
//!    never decreases, and reaches the writer's final epoch after the
//!    churn ends (readers do a final pass after the writer stops).
//!
//! Verdicts compare as (rule id, priority, action): `mem_reads` is
//! version-dependent bookkeeping the flow cache legitimately rewrites.
//!
//! CI runs this file in release mode with `RUST_TEST_THREADS=1`; each
//! test manages its own reader threads.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::engine::{EngineBuilder, PacketClassifier, SnapshotEngine, Verdict};
use spc::types::{Action, Header, PortRange, Priority, ProtoSpec, Rule, RuleId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

const READERS: usize = 4;
const BASE_RULES: u32 = 48;
const CHURN_OPS: usize = 60;
const PROBE_PORTS: std::ops::Range<u16> = 990..1070;

/// The comparable slice of a verdict: what must agree with the oracle.
type Trimmed = (Option<RuleId>, Option<Priority>, Option<Action>);

fn trim(v: &Verdict) -> Trimmed {
    (v.rule, v.priority, v.action)
}

/// Deterministic rule `p`: unique priority and a unique exact dst-port,
/// so every live rule set has a unique winner per probe and no two
/// rules ever collide as duplicate 5-tuples.
fn rule(p: u32) -> Rule {
    Rule::builder(Priority(p))
        .dst_port(PortRange::exact(1000 + p as u16))
        .proto(ProtoSpec::Exact(6))
        .action(Action::Forward(p as u16))
        .build()
}

fn probe(port: u16) -> Header {
    Header::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 40_000, port, 6)
}

fn probes() -> Vec<Header> {
    PROBE_PORTS.map(probe).collect()
}

/// Oracle verdict of one probe against a shadow rule list carrying the
/// engine's global ids: same HPMR discipline as `RuleSet::classify`,
/// restated over `(priority, global id)`.
fn oracle(live: &[(RuleId, Rule)], h: &Header) -> Trimmed {
    live.iter()
        .filter(|(_, r)| r.matches(h))
        .min_by_key(|&&(id, r)| (r.priority, id.0))
        .map_or((None, None, None), |&(id, r)| {
            (Some(id), Some(r.priority), Some(r.action))
        })
}

fn build(spec: &str) -> (SnapshotEngine, Vec<(RuleId, Rule)>) {
    let rules: spc::types::RuleSet = (0..BASE_RULES).map(rule).collect();
    let engine = EngineBuilder::from_spec(spec)
        .expect("spec parses")
        .build_snapshot(&rules)
        .expect("base set builds");
    // Base rules keep their RuleSet ids as global ids (both writer
    // modes); the consistency check below would catch any drift.
    let live: Vec<(RuleId, Rule)> = rules.iter().map(|(id, r)| (id, *r)).collect();
    (engine, live)
}

/// Runs the full oracle protocol for one spec.
fn check_spec(spec: &str) {
    let (mut engine, mut live) = build(spec);
    let probes = probes();

    // log[e] = oracle verdicts for the version with update_epoch() == e.
    let log: Arc<Mutex<Vec<Vec<Trimmed>>>> = Arc::new(Mutex::new(vec![probes
        .iter()
        .map(|h| oracle(&live, h))
        .collect()]));
    let stop = Arc::new(AtomicBool::new(false));

    let mut records: Vec<Vec<(usize, u64, Trimmed)>> = Vec::new();
    thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..READERS {
            let mut reader = engine.reader();
            let probes = &probes;
            let stop = Arc::clone(&stop);
            handles.push(s.spawn(move || {
                let mut seen: Vec<(usize, u64, Trimmed)> = Vec::new();
                let mut last_epoch = 0u64;
                loop {
                    let finishing = stop.load(Ordering::Acquire);
                    for (i, h) in probes.iter().enumerate() {
                        let v = reader.classify(h);
                        let e = reader.update_epoch();
                        assert!(
                            e >= last_epoch,
                            "reader epoch went backwards: {e} < {last_epoch}"
                        );
                        last_epoch = e;
                        seen.push((i, e, trim(&v)));
                    }
                    if finishing {
                        // One full pass after the writer stopped: the
                        // final refresh lands on the final version.
                        return seen;
                    }
                    thread::yield_now();
                }
            }));
        }

        // The writer: grow-then-shrink churn over a disjoint rule pool,
        // logging the oracle of every published version.
        let mut churned: Vec<RuleId> = Vec::new();
        for op in 0..CHURN_OPS {
            if op % 3 < 2 {
                let p = 100 + op as u32;
                let id = engine.insert(rule(p)).expect("fresh rule inserts");
                live.push((id, rule(p)));
                churned.push(id);
            } else {
                let id = churned.remove(op % churned.len());
                engine.remove(id).expect("tracked rule removes");
                live.retain(|&(g, _)| g != id);
            }
            let verdicts: Vec<Trimmed> = probes.iter().map(|h| oracle(&live, h)).collect();
            let mut log = log.lock().unwrap();
            log.push(verdicts);
            assert_eq!(log.len() as u64 - 1, engine.update_epoch(), "{spec}");
            drop(log);
            thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        records = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    // Validation: every observation matches the oracle of its epoch.
    let log = log.lock().unwrap();
    let final_epoch = log.len() as u64 - 1;
    assert_eq!(final_epoch, CHURN_OPS as u64, "{spec}: every op published");
    for (reader, seen) in records.iter().enumerate() {
        assert!(!seen.is_empty());
        for &(i, e, got) in seen {
            let want = log[e as usize][i];
            assert_eq!(
                got, want,
                "{spec}: reader {reader} probe {i} disagrees with the \
                 oracle of epoch {e} — torn or stale-inconsistent read"
            );
        }
        let last = seen.last().unwrap().1;
        assert_eq!(
            last, final_epoch,
            "{spec}: reader {reader} never reached the final version"
        );
    }
}

#[test]
fn consistency_single_configurable_inner() {
    check_spec("snapshot:inner=configurable-bst");
}

#[test]
fn consistency_sharded_priority_inner() {
    check_spec("snapshot:inner=(sharded:inner=configurable-bst,shards=4,strategy=prio)");
}

#[test]
fn consistency_sharded_hash_inner() {
    check_spec(
        "snapshot:inner=(sharded:inner=configurable-bst,shards=4,strategy=hash,hash_dim=dst_port)",
    );
}

#[test]
fn consistency_cached_inner() {
    check_spec("snapshot:inner=(cached:inner=configurable-bst,flows=256)");
}

#[test]
fn consistency_build_once_inner() {
    // Build-once inners are rebuilt wholesale per op; the published
    // versions must obey the exact same consistency contract.
    check_spec("snapshot:inner=linear");
}

/// The pipeline integration: a pool of `SnapshotReader` workers keeps
/// serving batches while the writer churns, and every batch processed
/// after the churn settles reflects the final version exactly.
#[test]
fn pipeline_workers_reresolve_snapshots_per_batch() {
    use spc::engine::{IngestConfig, IngestPipeline};

    let (mut engine, mut live) = build("snapshot:inner=configurable-bst");
    let probes = probes();
    let config = IngestConfig {
        workers: 2,
        ..IngestConfig::default()
    };
    let mut pipe =
        IngestPipeline::from_workers(engine.workers(config.workers), config).expect("pool spawns");

    let mut verdicts = Vec::new();
    for op in 0..24usize {
        // Feed a batch between updates: the pool must never error and
        // every verdict must match *some* published version — each
        // worker chunk resolves one snapshot, and this batch fits one
        // chunk, so it is answered by exactly one version.
        let stats = pipe.run_batch(&probes, &mut verdicts);
        assert_eq!(stats.packets, probes.len() as u64);

        let p = 500 + op as u32;
        let id = engine.insert(rule(p)).expect("fresh rule inserts");
        live.push((id, rule(p)));
    }

    // After churn settles the pool must serve the final version.
    let _ = pipe.run_batch(&probes, &mut verdicts);
    for (h, v) in probes.iter().zip(&verdicts) {
        assert_eq!(trim(v), oracle(&live, h), "final version after churn");
    }
    pipe.shutdown();
}
