//! Differential oracles for the flow verdict cache
//! (`spc::engine::CachedEngine`, spec `cached:inner=<spec>,...`):
//!
//! * the cached engine must agree with its own *uncached* inner engine
//!   verdict-for-verdict — for every registry backend as the inner, for
//!   every ClassBench family, on the single-shot and batch paths alike
//!   (cost annotations aside: a cache hit reports `mem_reads = 1`);
//! * under churn — `ScenarioScript` insert/remove interleaved with
//!   classification, and a hand-rolled insert/remove loop with
//!   checkpoints — the cache must stay coherent with an oracle *rebuilt
//!   from scratch* over the live rule set, the strongest possible
//!   reference (any stale cached verdict shows up as a disagreement);
//! * hit rate must grow with flow locality, and eviction pressure from
//!   an undersized table must cost performance only, never correctness.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use spc::classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceGenerator};
use spc::engine::{build_engine, run_scenario, EngineKind, LookupStats, PacketClassifier, Verdict};
use spc::types::{Header, Priority, Rule, RuleId, RuleSet};
use spc::CachedEngine;

const RULES: usize = 260;
const TRACE: usize = 400;
const SEED: u64 = 20_14;

fn workload(kind: FilterKind) -> (RuleSet, Vec<Header>) {
    let rules = RuleSetGenerator::new(kind, RULES).seed(SEED).generate();
    let trace = TraceGenerator::new()
        .seed(SEED ^ 0xcafe)
        .match_fraction(0.85)
        .locality(0.5)
        .generate(&rules, TRACE);
    (rules, trace)
}

/// Outcome equality: matched rule, priority, action. The cache
/// legitimately rewrites `mem_reads` (a hit is one wide read), so cost
/// annotations are excluded by design.
fn assert_same_outcome(got: &Verdict, want: &Verdict, ctx: &dyn std::fmt::Display) {
    assert_eq!(got.matched, want.matched, "{ctx}");
    assert_eq!(got.rule, want.rule, "{ctx}");
    assert_eq!(got.priority, want.priority, "{ctx}");
    assert_eq!(got.action, want.action, "{ctx}");
}

/// Cached-vs-uncached differential over one family and one inner spec,
/// twice over the trace (cold pass populates, warm pass serves from the
/// cache — both must agree with the uncached reference).
fn check_family(family: FilterKind, inner: &str, cached_spec: &str) {
    let (rules, trace) = workload(family);
    let mut reference = build_engine(inner, &rules).unwrap();
    let mut want = Vec::new();
    reference.classify_batch(&trace, &mut want);

    let mut engine = build_engine(cached_spec, &rules)
        .unwrap_or_else(|e| panic!("{cached_spec} must build on {family:?}: {e}"));
    assert_eq!(engine.kind(), EngineKind::Cached, "{cached_spec}");
    assert_eq!(engine.rules(), rules.len(), "{cached_spec}");
    for pass in ["cold", "warm"] {
        let mut got = Vec::new();
        let stats = engine.classify_batch(&trace, &mut got);
        assert_eq!(stats.packets, trace.len() as u64, "{cached_spec} {pass}");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            trace.len() as u64,
            "{cached_spec} {pass}: every packet is a cache hit or miss"
        );
        for ((h, w), g) in trace.iter().zip(&want).zip(&got) {
            assert_same_outcome(
                g,
                w,
                &format!("{cached_spec} vs {inner} on {family:?} {pass} at {h}"),
            );
            let single = engine.classify(h);
            assert_same_outcome(&single, w, &format!("{cached_spec} single {pass} at {h}"));
        }
        assert_eq!(
            stats.mem_reads,
            got.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>(),
            "{cached_spec} {pass}: folded reads equal per-verdict sums"
        );
    }
}

#[test]
fn cached_matches_inner_acl() {
    check_family(
        FilterKind::Acl,
        "configurable-bst",
        "cached:inner=configurable-bst,flows=512",
    );
}

#[test]
fn cached_matches_inner_fw() {
    check_family(
        FilterKind::Fw,
        "configurable-bst",
        "cached:inner=configurable-bst,flows=512",
    );
}

#[test]
fn cached_matches_inner_ipc() {
    check_family(
        FilterKind::Ipc,
        "configurable-bst",
        "cached:inner=configurable-bst,flows=512",
    );
}

#[test]
fn cached_matches_inner_without_megaflow() {
    check_family(
        FilterKind::Acl,
        "linear",
        "cached:inner=linear,flows=512,megaflow=off",
    );
}

/// Every registry backend works as the inner engine (recursive caching
/// is rejected by the builder; everything else — including a sharded
/// inner — must agree with its uncached self).
#[test]
fn cached_accepts_any_registry_inner() {
    let (rules, trace) = workload(FilterKind::Acl);
    for inner in EngineKind::ALL {
        if inner == EngineKind::Cached {
            continue;
        }
        let spec = format!("cached:inner={inner},flows=256");
        let mut engine =
            build_engine(&spec, &rules).unwrap_or_else(|e| panic!("{spec} must build: {e}"));
        let mut reference = build_engine(inner.as_str(), &rules).unwrap();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        engine.classify_batch(&trace, &mut got);
        reference.classify_batch(&trace, &mut want);
        for ((h, w), g) in trace.iter().zip(&want).zip(&got) {
            assert_same_outcome(g, w, &format!("{spec} vs {inner} at {h}"));
        }
    }
}

/// Scenario churn through the wrapper, checked against an oracle rebuilt
/// from scratch over the live rule set — with a roomy cache, with an
/// undersized cache (eviction pressure *during* churn), and with a
/// sharded inner behind the cache.
#[test]
fn scenario_churn_matches_rebuilt_oracle() {
    let (base, probe) = workload(FilterKind::Acl);
    let traffic = TraceGenerator::new()
        .seed(SEED ^ 0xcafe)
        .match_fraction(0.85)
        .locality(0.5);
    let pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, 96)
        .seed(SEED ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(500 + 250 * (i as u32 % 4));
            r
        })
        .collect();
    let script = ScenarioScript::parse("repeat 6 { insert 12; classify 50; remove 6 }").unwrap();
    for spec in [
        "cached:inner=configurable-bst,flows=512",
        "cached:inner=configurable-bst,flows=16,megaflow=off",
        "cached:inner=(sharded:inner=configurable-bst,shards=2),flows=128",
    ] {
        let mut engine = build_engine(spec, &base).unwrap();
        assert!(engine.supports_updates(), "{spec} must probe updatable");
        let mut source = script
            .source(&traffic, &base, &pool)
            .unwrap()
            .with_chunk(32);
        let mut verdicts = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)
            .unwrap_or_else(|e| panic!("{spec}: scenario failed: {e}"));
        assert_eq!(report.lookup.packets, 300, "{spec}");
        assert_eq!(report.inserts + report.duplicates, 72, "{spec}");

        // Rebuild the reference over base + surviving inserts; both sides
        // allocate ids in insertion order, so positional ids map back
        // through `live`.
        let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
        live.extend(report.live_inserts.iter().copied());
        assert_eq!(engine.rules(), live.len(), "{spec}");
        let rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
        let mut reference = build_engine("linear", &rules).unwrap();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        engine.classify_batch(&probe, &mut got);
        reference.classify_batch(&probe, &mut want);
        for ((h, w), g) in probe.iter().zip(&want).zip(&got) {
            let want_global = w.rule.map(|pos| live[pos.0 as usize].0);
            assert_eq!(g.rule, want_global, "{spec} vs rebuilt linear at {h}");
            assert_eq!(g.priority, w.priority, "{spec} priority at {h}");
            assert_eq!(g.action, w.action, "{spec} action at {h}");
        }
    }
}

/// Hand-rolled churn with frequent checkpoints: every insert/remove goes
/// through the wrapper's targeted invalidation while the *same* probe
/// trace is re-classified over and over — the cache is maximally warm
/// with exactly the entries churn must invalidate. Any missed
/// invalidation serves a stale verdict and diverges from the rebuilt
/// reference.
#[test]
fn interleaved_churn_never_serves_stale_verdicts() {
    const OPS: usize = 60;
    const CHECK_EVERY: usize = 5;
    let (base, probe) = workload(FilterKind::Acl);
    let pool = RuleSetGenerator::new(FilterKind::Fw, 120)
        .seed(SEED ^ 0x99)
        .generate();
    let spec = "cached:inner=configurable-bst,flows=1024";
    let mut engine = build_engine(spec, &base).unwrap();
    let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5ca1e);
    let mut pool_next = 0usize;
    let mut scratch = Vec::new();
    for step in 0..OPS {
        // Keep the cache hot on the probe trace between updates.
        engine.classify_batch(&probe, &mut scratch);
        if rng.gen_bool(0.6) || live.is_empty() {
            let mut rule = pool.rules()[pool_next % pool.len()];
            pool_next += 1;
            rule.priority = Priority(rng.gen_range(0..50_000));
            match engine.insert(rule) {
                Ok(id) => live.push((id, rule)),
                Err(spc::engine::UpdateError::Duplicate { .. }) => {}
                Err(e) => panic!("{spec}: insert failed at step {step}: {e}"),
            }
        } else {
            let victim = rng.gen_range(0..live.len());
            let (id, _) = live.remove(victim);
            engine
                .remove(id)
                .unwrap_or_else(|e| panic!("{spec}: remove {id} at step {step}: {e}"));
        }
        assert_eq!(engine.rules(), live.len(), "{spec} rule count at {step}");
        if step % CHECK_EVERY == CHECK_EVERY - 1 {
            let rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
            let mut reference = build_engine("linear", &rules).unwrap();
            let (mut got, mut want) = (Vec::new(), Vec::new());
            engine.classify_batch(&probe, &mut got);
            reference.classify_batch(&probe, &mut want);
            for ((h, w), g) in probe.iter().zip(&want).zip(&got) {
                let want_global = w.rule.map(|pos| live[pos.0 as usize].0);
                assert_eq!(g.rule, want_global, "{spec} step {step} at {h}");
                assert_eq!(g.priority, w.priority, "{spec} step {step} priority at {h}");
                assert_eq!(g.action, w.action, "{spec} step {step} action at {h}");
            }
        }
    }
}

/// More locality, more cache hits: the hit rate over a locality sweep
/// must be (weakly) monotone, and high locality must put it far above
/// the low end.
#[test]
fn hit_rate_grows_with_locality() {
    let rules = RuleSetGenerator::new(FilterKind::Acl, RULES)
        .seed(SEED)
        .generate();
    let mut rates = Vec::new();
    for locality in [0.0, 0.5, 0.9, 0.99] {
        let trace = TraceGenerator::new()
            .seed(SEED ^ 0xbeef)
            .match_fraction(0.9)
            .locality(locality)
            .generate(&rules, 4096);
        let mut engine = build_engine(
            "cached:inner=configurable-bst,flows=4096,megaflow=off",
            &rules,
        )
        .unwrap();
        let mut out = Vec::new();
        let stats: LookupStats = engine.classify_batch(&trace, &mut out);
        rates.push((locality, stats.cache_hit_rate()));
    }
    for pair in rates.windows(2) {
        assert!(
            // In-batch dedup gives even a zero-locality trace some hits;
            // a hair of slack absorbs that noise floor.
            pair[1].1 >= pair[0].1 - 0.02,
            "hit rate fell across the locality sweep: {rates:?}"
        );
    }
    let (lo, hi) = (rates.first().unwrap().1, rates.last().unwrap().1);
    assert!(
        hi > lo + 0.3 && hi > 0.8,
        "locality 0.99 must lift the hit rate decisively: {rates:?}"
    );
}

/// An undersized table thrashes — evictions fire — but every verdict
/// stays correct, and the counters stay coherent.
#[test]
fn eviction_under_capacity_is_a_performance_problem_only() {
    let (rules, trace) = workload(FilterKind::Acl);
    let reference = build_engine("linear", &rules).unwrap();
    let inner = build_engine("configurable-bst", &rules).unwrap();
    // 8 microflow slots against hundreds of live flows: constant churn.
    let engine = CachedEngine::new(inner, 8, false, rules.rules());
    for round in 0..3 {
        for h in &trace {
            let got = engine.classify(h);
            let want = reference.classify(h);
            assert_same_outcome(&got, &want, &format!("round {round} at {h}"));
        }
    }
    let stats = engine.cache_stats();
    assert!(stats.evictions > 0, "8 slots must thrash: {stats:?}");
    assert_eq!(
        stats.hits + stats.misses,
        3 * trace.len() as u64,
        "every lookup is a hit or a miss: {stats:?}"
    );
}

/// The `&self` concurrent classify path: multiple threads probing and
/// installing into one shared flow table at once — with a table small
/// enough that threads constantly race installs against evictions —
/// must agree with the uncached reference packet-for-packet, and the
/// shared counters must still account for every lookup exactly once.
/// (`tests/snapshot_consistency.rs` covers readers racing a *writer*;
/// this test is readers racing each other on the cache's interior
/// mutability.)
#[test]
fn concurrent_classify_agrees_with_uncached_reference() {
    const THREADS: usize = 4;
    const LOOKUPS: usize = 1500;
    let (rules, trace) = workload(FilterKind::Acl);
    let reference = build_engine("configurable-bst", &rules).unwrap();
    let want: Vec<Verdict> = trace.iter().map(|h| reference.classify(h)).collect();

    let inner = build_engine("configurable-bst", &rules).unwrap();
    // 64 slots against hundreds of flows: installs and evictions race.
    let engine = CachedEngine::new(inner, 64, true, rules.rules());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            let trace = &trace;
            let want = &want;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(SEED ^ 0xc0c0 ^ t as u64);
                for n in 0..LOOKUPS {
                    // Mostly-local probe pattern: plenty of repeats (so
                    // threads hit each other's installs) plus enough
                    // spread to keep the 64-slot table evicting.
                    let i = if rng.gen_bool(0.7) {
                        rng.gen_range(0..32)
                    } else {
                        rng.gen_range(0..trace.len())
                    };
                    let got = engine.classify(&trace[i]);
                    assert_same_outcome(
                        &got,
                        &want[i],
                        &format!("thread {t} lookup {n} packet {i}"),
                    );
                }
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        (THREADS * LOOKUPS) as u64,
        "every concurrent lookup accounted exactly once: {stats:?}"
    );
    assert!(stats.hits > 0, "repeats must hit: {stats:?}");
    assert!(stats.evictions > 0, "64 slots must evict: {stats:?}");
}
