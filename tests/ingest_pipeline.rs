//! Edge-case and differential coverage for the generalised ingest
//! pipeline (`spc::engine::pipeline`): every registry backend driven
//! through `IngestPipeline` must produce exactly the verdicts of its own
//! sequential `classify`, in stream order, in both engine-source modes;
//! the bounded queue must block the feeder (backpressure), never drop;
//! and the degenerate shapes (zero-length batch, more workers than
//! packets) must hold.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc::engine::pipeline::BatchWorker;
use spc::engine::{
    EngineBuilder, EngineKind, EngineSource, IngestConfig, IngestPipeline, LookupStats,
    PacketClassifier, Verdict,
};
use spc::types::{Header, RuleSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const RULES: usize = 300;
const TRACE: usize = 700;
const SEED: u64 = 20_14;

fn workload() -> (RuleSet, Vec<Header>) {
    let rules = RuleSetGenerator::new(FilterKind::Acl, RULES)
        .seed(SEED)
        .generate();
    let trace = TraceGenerator::new()
        .seed(SEED ^ 0xab)
        .match_fraction(0.85)
        .generate(&rules, TRACE);
    (rules, trace)
}

/// Compares pipeline verdicts against a sequential baseline. The cached
/// backend is stateful: a repeat of a flow is served from the cache at
/// `mem_reads = 1`, so the *cost* annotation legitimately depends on
/// classification order, while the classification outcome (matched rule,
/// priority, action) must still be identical packet-for-packet. Every
/// stateless backend keeps the full bit-for-bit contract.
fn assert_verdicts_match(kind: EngineKind, got: &[Verdict], want: &[Verdict], ctx: &str) {
    if kind == EngineKind::Cached {
        assert_eq!(got.len(), want.len(), "{kind}: {ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.matched, w.matched, "{kind}: {ctx}: packet {i}");
            assert_eq!(g.action, w.action, "{kind}: {ctx}: packet {i}");
        }
    } else {
        assert_eq!(got, want, "{kind}: {ctx}");
    }
}

/// Every registry backend, cloned-replica mode: pipeline verdicts equal
/// the backend's own sequential `classify`, in order.
#[test]
fn pipeline_matches_sequential_for_every_backend_cloned() {
    let (rules, trace) = workload();
    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(kind);
        let reference = builder.build(&rules).unwrap();
        let want: Vec<Verdict> = trace.iter().map(|h| reference.classify(h)).collect();
        let source = EngineSource::replicated(&builder, &rules, 3).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 3,
                queue_chunks: 2,
                chunk: 97, // deliberately not a divisor of the trace length
            },
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = pipe.run_batch(&trace, &mut out);
        assert_verdicts_match(kind, &out, &want, "pipeline vs sequential");
        assert_eq!(stats.packets, trace.len() as u64, "{kind}");
        assert_eq!(
            stats.hits,
            want.iter().filter(|v| v.is_hit()).count() as u64,
            "{kind}"
        );
        assert_eq!(
            stats.mem_reads,
            out.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>(),
            "{kind}: folded reads equal per-verdict sums"
        );
    }
}

/// Every registry backend, shared-`Arc` mode: same contract through the
/// read-only `&self` path.
#[test]
fn pipeline_matches_sequential_for_every_backend_shared() {
    let (rules, trace) = workload();
    for kind in EngineKind::ALL {
        let engine: Arc<dyn PacketClassifier> =
            Arc::from(EngineBuilder::new(kind).build(&rules).unwrap());
        let want: Vec<Verdict> = trace.iter().map(|h| engine.classify(h)).collect();
        let mut pipe = IngestPipeline::spawn(
            EngineSource::Shared(engine),
            IngestConfig {
                workers: 4,
                queue_chunks: 3,
                chunk: 128,
            },
        )
        .unwrap();
        let mut out = Vec::new();
        let stats = pipe.run_batch(&trace, &mut out);
        assert_verdicts_match(kind, &out, &want, "shared pipeline vs sequential");
        assert_eq!(stats.packets, trace.len() as u64, "{kind}");
    }
}

#[test]
fn zero_length_batch_is_empty_and_reusable() {
    let (rules, trace) = workload();
    let source =
        EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 2).unwrap();
    let mut pipe = IngestPipeline::spawn(
        source,
        IngestConfig {
            workers: 2,
            ..IngestConfig::default()
        },
    )
    .unwrap();
    let mut out = vec![Verdict::miss(9)];
    let stats = pipe.run_batch(&[], &mut out);
    assert!(out.is_empty(), "stale verdicts must be cleared");
    assert_eq!(stats, LookupStats::default());
    // An empty batch must not wedge the pool for later real work.
    let stats = pipe.run_batch(&trace[..50], &mut out);
    assert_eq!(out.len(), 50);
    assert_eq!(stats.packets, 50);
}

#[test]
fn more_workers_than_packets() {
    let (rules, trace) = workload();
    let builder = EngineBuilder::new(EngineKind::ConfigurableBst);
    let reference = builder.build(&rules).unwrap();
    let source = EngineSource::replicated(&builder, &rules, 8).unwrap();
    let mut pipe = IngestPipeline::spawn(
        source,
        IngestConfig {
            workers: 8,
            queue_chunks: 2,
            chunk: 1, // every header its own chunk: 3 chunks, 8 workers
        },
    )
    .unwrap();
    assert_eq!(pipe.worker_count(), 8);
    let tiny = &trace[..3];
    let mut out = Vec::new();
    let stats = pipe.run_batch(tiny, &mut out);
    assert_eq!(out.len(), 3);
    assert_eq!(stats.packets, 3);
    for (h, v) in tiny.iter().zip(&out) {
        assert_eq!(*v, reference.classify(h), "idle workers must not corrupt");
    }
}

/// A worker that holds every chunk until the test opens its gate, and
/// counts chunks it has accepted — the instrument for observing that a
/// full bounded queue *blocks* the feeder instead of dropping headers.
#[derive(Debug)]
struct GatedWorker {
    gate: mpsc::Receiver<()>,
    processed: Arc<AtomicUsize>,
}

impl BatchWorker for GatedWorker {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        self.gate.recv().expect("test holds the gate sender");
        self.processed.fetch_add(1, Ordering::SeqCst);
        out.clear();
        let mut stats = LookupStats::default();
        for _ in headers {
            let v = Verdict::miss(1);
            stats.absorb(&v);
            out.push(v);
        }
        stats
    }
}

#[test]
fn bounded_queue_blocks_feeder_and_drops_nothing() {
    const QUEUE: usize = 2;
    const WORKERS: usize = 2;
    const CHUNKS: usize = 12;
    let processed = Arc::new(AtomicUsize::new(0));
    let mut gates = Vec::new();
    let workers: Vec<Box<dyn BatchWorker>> = (0..WORKERS)
        .map(|_| {
            let (gate_tx, gate_rx) = mpsc::channel();
            gates.push(gate_tx);
            Box::new(GatedWorker {
                gate: gate_rx,
                processed: Arc::clone(&processed),
            }) as Box<dyn BatchWorker>
        })
        .collect();
    let mut pipe = IngestPipeline::from_workers(
        workers,
        IngestConfig {
            workers: WORKERS,
            queue_chunks: QUEUE,
            chunk: 4,
        },
    )
    .unwrap();

    // Feed CHUNKS chunks from a helper thread while every worker is
    // gated shut. The queue holds QUEUE chunks and each worker can pull
    // one more before blocking inside its gate, so the feeder must stall
    // with at most QUEUE + WORKERS + 1 chunks accepted (the +1 is the
    // chunk sitting in the blocked `send`).
    let headers = vec![Header::new([0, 0, 0, 1].into(), [0, 0, 0, 2].into(), 1, 2, 6); CHUNKS * 4];
    let fed = Arc::new(AtomicUsize::new(0));
    let feeder = {
        let fed = Arc::clone(&fed);
        std::thread::spawn(move || {
            for chunk in headers.chunks(4) {
                pipe.feed(chunk);
                fed.fetch_add(1, Ordering::SeqCst);
            }
            pipe // hand the pipeline back for draining
        })
    };

    // Give the feeder ample time to race ahead if backpressure were
    // broken; the bound below is hard, not a timing guess.
    std::thread::sleep(Duration::from_millis(150));
    let stalled_at = fed.load(Ordering::SeqCst);
    assert!(
        stalled_at <= QUEUE + WORKERS + 1,
        "feeder accepted {stalled_at} chunks past a {QUEUE}-deep queue: backpressure is broken"
    );
    assert!(stalled_at < CHUNKS, "feeder must actually be blocked");

    // Open the gates: every worker may now process every chunk.
    for gate in &gates {
        for _ in 0..CHUNKS {
            let _ = gate.send(());
        }
    }
    let mut pipe = feeder.join().expect("feeder thread");
    assert_eq!(fed.load(Ordering::SeqCst), CHUNKS, "all chunks were fed");
    let mut out = Vec::new();
    let stats = pipe.drain(&mut out);
    // Nothing was dropped: one verdict per header, all chunks processed.
    assert_eq!(out.len(), CHUNKS * 4);
    assert_eq!(stats.packets, (CHUNKS * 4) as u64);
    assert_eq!(processed.load(Ordering::SeqCst), CHUNKS);
}

/// Streaming lifecycle: interleaved feed/drain rounds equal one big
/// sequential pass, and the pool's threads persist across rounds.
#[test]
fn streaming_rounds_equal_one_shot() {
    let (rules, trace) = workload();
    let builder = EngineBuilder::from_spec("configurable-bst").unwrap();
    let reference = builder.build(&rules).unwrap();
    let want: Vec<Verdict> = trace.iter().map(|h| reference.classify(h)).collect();
    let source = EngineSource::replicated(&builder, &rules, 2).unwrap();
    let mut pipe = IngestPipeline::spawn(
        source,
        IngestConfig {
            workers: 2,
            queue_chunks: 2,
            chunk: 64,
        },
    )
    .unwrap();
    let mut out = Vec::new();
    let mut folded = LookupStats::default();
    for round in trace.chunks(250) {
        pipe.feed(round);
        folded = folded + pipe.drain(&mut out);
    }
    assert_eq!(out, want);
    assert_eq!(folded.packets, trace.len() as u64);
}

/// Drain-on-error reuse, per backend: a `WorkloadError` mid-stream (an
/// update event in a classify-only stream) must leave the pool idle
/// with every already-fed chunk drained — and the same pool must then
/// accept a fresh `run_source` and process it exactly like the
/// backend's own sequential classify.
#[test]
fn pool_is_reusable_after_workload_error_for_every_backend() {
    use spc::classbench::{ScenarioScript, TraceError, TraceEvent, TraceSource};
    use spc::engine::WorkloadError;

    let (rules, _) = workload();
    let pool_rules = RuleSetGenerator::new(FilterKind::Fw, 20)
        .seed(SEED ^ 7)
        .generate();
    let traffic = TraceGenerator::new().seed(SEED ^ 0x11).match_fraction(0.85);

    // The reference stream: same generator seed as the retry below, so
    // the recovered pool's verdicts can be checked header-for-header.
    let mut headers: Vec<Header> = Vec::new();
    let mut probe = traffic.stream(&rules, 150);
    while let Some(event) = probe.next_event().unwrap() {
        match event {
            TraceEvent::Headers(h) => headers.extend(h),
            other => panic!("classify-only stream produced {other:?}"),
        }
    }

    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(kind);
        let reference = builder.build(&rules).unwrap();
        let want: Vec<Verdict> = headers.iter().map(|h| reference.classify(h)).collect();
        let source = EngineSource::replicated(&builder, &rules, 2).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 2,
                queue_chunks: 2,
                chunk: 48,
            },
        )
        .unwrap();

        // A classify-only pool fed a scenario with an update event:
        // typed error, pre-error chunks drained, nothing in flight.
        let script = ScenarioScript::parse("classify 120; insert 1; classify 50").unwrap();
        let mut bad = script.source(&traffic, &rules, pool_rules.rules()).unwrap();
        let mut out = Vec::new();
        let err = pipe.run_source(&mut bad, &mut out).unwrap_err();
        assert!(
            matches!(err, WorkloadError::Source(TraceError::UnexpectedUpdate)),
            "{kind}: {err}"
        );
        assert_eq!(out.len(), 120, "{kind}: pre-error headers drained");
        assert_eq!(pipe.in_flight(), 0, "{kind}: pool left idle");

        // The same pool, fresh stream: correct verdicts, in order.
        let mut fresh = traffic.stream(&rules, 150);
        let stats = pipe
            .run_source(&mut fresh, &mut out)
            .unwrap_or_else(|e| panic!("{kind}: recovered pool must serve: {e}"));
        assert_eq!(stats.packets, headers.len() as u64, "{kind}");
        assert_verdicts_match(kind, &out, &want, "recovered pool vs sequential");
        pipe.shutdown();
    }
}
