//! Differential oracles for the streaming workload layer
//! (`spc::classbench`'s `TraceSource` family):
//!
//! * pcap replay — a synthetic trace written through `PcapWriter` and
//!   read back through `PcapReader` must classify *identically* to the
//!   original trace, for every registry backend, on the sequential and
//!   the `IngestPipeline::run_source` paths alike;
//! * malformed captures — bad magic, truncated record header, truncated
//!   packet body — must each surface as their own typed `PcapError`;
//! * scenario churn — a `ScenarioScript` driven through `run_scenario`
//!   must leave the engine verdict-equivalent to an oracle *rebuilt
//!   from scratch* over the live rule set (the same strongest-possible
//!   reference `tests/sharded_oracle.rs` uses).

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc::classbench::{
    write_pcap, FilterKind, PcapError, PcapReader, RuleSetGenerator, ScenarioScript, TraceError,
    TraceGenerator, TraceSource,
};
use spc::engine::{
    build_engine, run_scenario, EngineBuilder, EngineKind, EngineSource, IngestConfig,
    IngestPipeline, Verdict, WorkloadError,
};
use spc::types::{Header, Priority, Rule, RuleId, RuleSet};

const RULES: usize = 240;
const TRACE: usize = 400;
const SEED: u64 = 20_14;

fn workload() -> (RuleSet, Vec<Header>, TraceGenerator) {
    let rules = RuleSetGenerator::new(FilterKind::Acl, RULES)
        .seed(SEED)
        .generate();
    // Locality and background traffic (odd protocols, arbitrary ports)
    // make the capture representative of the messy parts of real taps.
    let traffic = TraceGenerator::new()
        .seed(SEED ^ 0xf00d)
        .match_fraction(0.8)
        .locality(0.25);
    let trace = traffic.generate(&rules, TRACE);
    (rules, trace, traffic)
}

/// Compares replayed verdicts against the original pass. The cached
/// backend is stateful — a repeat of a flow is served from the cache at
/// `mem_reads = 1`, so cost annotations depend on classification order —
/// but the classification outcome (matched rule, priority, action) must
/// be identical packet-for-packet. Stateless backends keep the full
/// bit-for-bit contract.
fn assert_verdicts_match(kind: EngineKind, got: &[Verdict], want: &[Verdict], ctx: &str) {
    if kind == EngineKind::Cached {
        assert_eq!(got.len(), want.len(), "{kind}: {ctx}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.matched, w.matched, "{kind}: {ctx}: packet {i}");
            assert_eq!(g.action, w.action, "{kind}: {ctx}: packet {i}");
        }
    } else {
        assert_eq!(got, want, "{kind}: {ctx}");
    }
}

/// Writes `trace` to an in-memory capture.
fn capture(trace: &[Header]) -> Vec<u8> {
    let mut w = spc::classbench::PcapWriter::new(Vec::new()).unwrap();
    for h in trace {
        w.write_header(h).unwrap();
    }
    w.finish().unwrap()
}

/// The writer→reader round trip is the identity on headers.
#[test]
fn pcap_roundtrip_reproduces_the_trace() {
    let (_, trace, _) = workload();
    let replayed = PcapReader::from_bytes(capture(&trace))
        .unwrap()
        .collect_headers()
        .unwrap();
    assert_eq!(replayed, trace);

    // Through a real file too.
    let path = std::env::temp_dir().join(format!("spc_trace_replay_{}.pcap", std::process::id()));
    write_pcap(&path, trace.iter().copied()).unwrap();
    let replayed = PcapReader::open(&path).unwrap().collect_headers().unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(replayed, trace);
}

/// Every registry backend classifies the pcap-replayed trace exactly as
/// it classifies the original synthetic trace — sequentially and when
/// the capture is streamed through the ingest pipeline.
#[test]
fn replayed_trace_classifies_identically_for_every_backend() {
    let (rules, trace, _) = workload();
    let bytes = capture(&trace);
    for kind in EngineKind::ALL {
        let builder = EngineBuilder::new(kind);
        let mut engine = builder.build(&rules).unwrap();
        let (mut want, mut got) = (Vec::new(), Vec::new());
        engine.classify_batch(&trace, &mut want);

        let replayed = PcapReader::from_bytes(bytes.clone())
            .unwrap()
            .collect_headers()
            .unwrap();
        engine.classify_batch(&replayed, &mut got);
        assert_verdicts_match(kind, &got, &want, "replay vs original, sequential");

        // Streamed: the capture drives the worker pool directly.
        let source = EngineSource::replicated(&builder, &rules, 2).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 2,
                queue_chunks: 2,
                chunk: 64,
            },
        )
        .unwrap();
        let mut reader = PcapReader::from_bytes(bytes.clone())
            .unwrap()
            .with_chunk(53);
        let stats = pipe.run_source(&mut reader, &mut got).unwrap();
        assert_verdicts_match(kind, &got, &want, "replay vs original, run_source");
        assert_eq!(stats.packets, trace.len() as u64, "{kind}");
    }
}

/// Each class of capture damage yields its own typed error — through
/// the `TraceSource` surface, as a consumer would see it.
#[test]
fn malformed_captures_yield_distinct_typed_errors() {
    let (_, trace, _) = workload();
    let good = capture(&trace);

    let mut bad_magic = good.clone();
    bad_magic[0..4].copy_from_slice(&0x0bad_f00du32.to_le_bytes());
    assert!(matches!(
        PcapReader::from_bytes(bad_magic).unwrap_err(),
        PcapError::BadMagic { magic: 0x0bad_f00d }
    ));

    // Cut mid-way through a record header (16 bytes after the 24-byte
    // file header + one full 40-byte record).
    let cut_header = good[..24 + 40 + 9].to_vec();
    let e = PcapReader::from_bytes(cut_header)
        .unwrap()
        .collect_headers()
        .unwrap_err();
    assert!(
        matches!(
            e,
            TraceError::Pcap(PcapError::TruncatedRecordHeader {
                offset: 64,
                have: 9
            })
        ),
        "{e}"
    );

    // Cut mid-way through a packet body.
    let cut_body = good[..24 + 40 + 16 + 3].to_vec();
    let e = PcapReader::from_bytes(cut_body)
        .unwrap()
        .collect_headers()
        .unwrap_err();
    assert!(
        matches!(
            e,
            TraceError::Pcap(PcapError::TruncatedPacketBody {
                need: 24,
                have: 3,
                ..
            })
        ),
        "{e}"
    );
}

/// Scenario churn against every updatable registry configuration,
/// checked against an oracle rebuilt from scratch over the live rules:
/// any state the update path corrupts shows up as a verdict
/// disagreement.
#[test]
fn scenario_churn_matches_rebuilt_oracle() {
    let (base, probe, traffic) = workload();
    // Foreign-family pool with fresh priorities: rare duplicates, and
    // inserts land across the whole priority order.
    let pool: Vec<Rule> = RuleSetGenerator::new(FilterKind::Fw, 96)
        .seed(SEED ^ 0x77)
        .generate()
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut r = *r;
            r.priority = Priority(500 + 250 * (i as u32 % 4));
            r
        })
        .collect();
    let script = ScenarioScript::parse("repeat 6 { insert 12; classify 50; remove 6 }").unwrap();
    for spec in [
        "configurable-bst",
        "configurable-mbt",
        "sharded:inner=configurable-bst,shards=2,strategy=prio",
        "sharded:inner=configurable-bst,shards=8,strategy=hash",
    ] {
        let mut engine = build_engine(spec, &base).unwrap();
        let mut source = script
            .source(&traffic, &base, &pool)
            .unwrap()
            .with_chunk(32);
        let mut verdicts = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)
            .unwrap_or_else(|e| panic!("{spec}: scenario failed: {e}"));
        assert_eq!(report.lookup.packets, 300, "{spec}");
        assert_eq!(verdicts.len(), 300, "{spec}");
        assert_eq!(report.inserts + report.duplicates, 72, "{spec}");
        assert_eq!(report.removes + report.skipped_removes, 36, "{spec}");

        // Rebuild the reference over base + surviving inserts; its
        // positional ids map back through `live` (both sides allocate
        // ids in insertion order, so priority ties break identically).
        let mut live: Vec<(RuleId, Rule)> = base.iter().map(|(id, r)| (id, *r)).collect();
        live.extend(report.live_inserts.iter().copied());
        assert_eq!(engine.rules(), live.len(), "{spec}");
        let rules: RuleSet = live.iter().map(|&(_, r)| r).collect();
        let mut reference = build_engine("linear", &rules).unwrap();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        engine.classify_batch(&probe, &mut got);
        reference.classify_batch(&probe, &mut want);
        for ((h, w), g) in probe.iter().zip(&want).zip(&got) {
            let want_global = w.rule.map(|pos| live[pos.0 as usize].0);
            assert_eq!(g.rule, want_global, "{spec} vs rebuilt linear at {h}");
            assert_eq!(g.priority, w.priority, "{spec} priority at {h}");
            assert_eq!(g.action, w.action, "{spec} action at {h}");
        }
    }
}

/// The same scenario source replayed twice produces the same events —
/// so scenario measurements are reproducible run to run.
#[test]
fn scenario_runs_are_deterministic() {
    let (base, _, traffic) = workload();
    let pool = RuleSetGenerator::new(FilterKind::Ipc, 30)
        .seed(SEED ^ 0x3)
        .generate();
    let script = ScenarioScript::parse("repeat 3 { insert 5; classify 40; remove 5 }").unwrap();
    let run = || {
        let mut engine = build_engine("configurable-bst", &base).unwrap();
        let mut source = script.source(&traffic, &base, pool.rules()).unwrap();
        let mut verdicts = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts).unwrap();
        (verdicts, report.inserts, report.update_cycles())
    };
    assert_eq!(run(), run());
}

/// A classify-only consumer refuses a churn scenario loudly.
#[test]
fn pipeline_rejects_churn_scenarios() {
    let (base, _, traffic) = workload();
    let pool = RuleSetGenerator::new(FilterKind::Fw, 8)
        .seed(SEED)
        .generate();
    let script = ScenarioScript::parse("insert 1; classify 10; remove 1").unwrap();
    let mut source = script.source(&traffic, &base, pool.rules()).unwrap();
    let source_builder = EngineBuilder::new(EngineKind::Linear);
    let mut pipe = IngestPipeline::spawn(
        EngineSource::replicated(&source_builder, &base, 2).unwrap(),
        IngestConfig {
            workers: 2,
            queue_chunks: 2,
            chunk: 16,
        },
    )
    .unwrap();
    let mut out: Vec<Verdict> = Vec::new();
    let e = pipe.run_source(&mut source, &mut out).unwrap_err();
    assert!(
        matches!(e, WorkloadError::Source(TraceError::UnexpectedUpdate)),
        "{e}"
    );
}
