//! [`PacketClassifier`] that partitions the rule set across N inner
//! engines and merges their verdicts by priority.
//!
//! The paper scales by replicating single-field engines in parallel
//! hardware; [`ShardedEngine`] is the software analogue one level up:
//! a [`spc_core::shard::ShardPlan`] splits the rule set (by priority
//! band or field hash), one inner [`PacketClassifier`] is built per
//! slice, and every lookup queries all shards, keeping the hit with the
//! best `(priority, global rule id)`. Because each shard sees every
//! header, correctness is independent of the partitioning strategy —
//! the differential oracle enforces exactly that.
//!
//! The batch path is where sharding pays, and it runs entirely on the
//! shared [`crate::pipeline`] worker-pool machinery — each shard is one
//! [`pipeline::BatchWorker`] (its inner engine's own amortised
//! `classify_batch`, so a configurable inner reuses its
//! [`spc_core::ClassifyScratch`] across the whole batch, plus the
//! local→global rule-id remap). The topology depends on the strategy:
//!
//! * [`ShardStrategy::FieldHash`] — [`pipeline::broadcast_batch`]: every
//!   worker sees every chunk, remapped verdicts stream back to one merge
//!   loop. All shards are always queried; shard structures are smaller
//!   and (given cores) run concurrently.
//! * [`ShardStrategy::PriorityBands`] — [`pipeline::cascade_batch`]:
//!   band workers form a channel-fed pipeline in band order. Priority
//!   bands are totally ordered by `(priority, global id)`, so a hit in
//!   band `k` cannot be beaten by any later band — each worker resolves
//!   its hits on the spot and forwards only unresolved headers
//!   downstream. High-priority traffic never pays for the long tail, and
//!   chunks ripple through the pipeline concurrently.
//!
//! When every inner engine supports the paper's §V.A fast incremental
//! update (`sharded:inner=configurable-*`), so does the sharded engine:
//! `insert`/`remove` route to the owning shard through a live
//! [`ShardRouter`] — the hash strategy re-folds the rule's `hash_dim`
//! projection through the same hwsim `HashUnit` the plan used (opening
//! a fresh shard when a slot gains its first rule), and the priority
//! band strategy places the rule in the band covering its
//! `(priority, global id)` key, splitting a band that outgrows the skew
//! threshold by migrating its upper half into a fresh inner engine.
//! Global ids are allocated monotonically and never reused, so verdict
//! merging and tie-breaks are unaffected by churn.

use crate::pipeline::{self, BatchWorker};
use crate::{
    EngineKind, LookupStats, MatchHandle, PacketClassifier, UpdateError, UpdateReport, Verdict,
};
use spc_core::shard::{RouteTarget, ShardRouter, ShardSlice, ShardStrategy};
use spc_hwsim::AccessCounts;
use spc_types::{Header, Rule, RuleId};
use std::fmt;

/// One shard: an inner engine plus the local→global rule-id map.
#[derive(Debug)]
struct Shard {
    engine: Box<dyn PacketClassifier>,
    global_ids: Vec<RuleId>,
}

impl Shard {
    /// Rewrites a shard-local verdict into global rule-id space (both
    /// the shim `rule` field and the [`MatchHandle`] it mirrors).
    fn remap(&self, v: Verdict) -> Verdict {
        Verdict {
            rule: v.rule.map(|id| self.global_ids[id.0 as usize]),
            matched: v.matched.map(|m| MatchHandle {
                id: self.global_ids[m.id.0 as usize],
                ..m
            }),
            ..v
        }
    }

    /// Records the global id behind a shard-local id. Inner classifiers
    /// allocate local ids monotonically and never reuse them, so the map
    /// stays a dense vector; slots of removed rules go stale harmlessly
    /// (the inner engine can never hit them again).
    fn set_global(&mut self, local: RuleId, global: RuleId) {
        let idx = local.0 as usize;
        if self.global_ids.len() <= idx {
            self.global_ids.resize(idx + 1, RuleId(u32::MAX));
        }
        self.global_ids[idx] = global;
    }

    /// Rewrites the rule ids an inner engine's [`UpdateError`] carries
    /// into global id space — a shard-local id must never leak through
    /// the sharded engine's API, where it would name an unrelated rule.
    fn remap_error(&self, e: UpdateError) -> UpdateError {
        let global = |local: RuleId| {
            self.global_ids
                .get(local.0 as usize)
                .copied()
                .unwrap_or(local)
        };
        match e {
            UpdateError::Duplicate { existing } => UpdateError::Duplicate {
                existing: global(existing),
            },
            UpdateError::UnknownRule { id } => UpdateError::UnknownRule { id: global(id) },
            other => other,
        }
    }
}

/// Builds an empty inner engine for shards that churn creates after the
/// initial plan: a hash slot gaining its first rule, or the upper half
/// of a split priority band. Errors are backend build failures, already
/// rendered to text (they surface as [`UpdateError::Rejected`]).
pub type InnerFactory = Box<dyn Fn() -> Result<Box<dyn PacketClassifier>, String> + Send + Sync>;

/// The incremental-update state of a [`ShardedEngine`] whose inner
/// engines all support updates: the live router (routing decisions +
/// global→local id map), the factory for churn-created shards, and the
/// band-split threshold.
struct LiveUpdates {
    router: ShardRouter,
    factory: InnerFactory,
    /// A priority band longer than this splits (see
    /// [`ShardedEngine::enable_updates`] for the policy).
    band_threshold: usize,
}

impl fmt::Debug for LiveUpdates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveUpdates")
            .field("router", &self.router)
            .field("band_threshold", &self.band_threshold)
            .finish_non_exhaustive()
    }
}

/// Bands this short never split, whatever the skew factor — splitting
/// a handful of rules buys nothing and a pathological skew setting must
/// not shatter the cascade into confetti.
const MIN_BAND_QUOTA: usize = 16;

/// A shard is one pool worker: the inner engine's amortised batch path,
/// with every verdict remapped into global rule-id space on the way out.
impl BatchWorker for Shard {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        let stats = self.engine.classify_batch(headers, out);
        for v in out.iter_mut() {
            *v = self.remap(*v);
        }
        stats
    }
}

/// A partitioned multi-classifier backend: N inner engines, one merged
/// verdict. Built by [`crate::EngineBuilder`] from specs like
/// `sharded:inner=configurable-bst,shards=8,strategy=prio`.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    strategy: ShardStrategy,
    inner_kind: EngineKind,
    rules: usize,
    /// `Some` when every inner engine supports updates and the builder
    /// armed the routed `insert`/`remove` path.
    live: Option<LiveUpdates>,
    last_report: Option<UpdateReport>,
    epoch: u64,
}

impl ShardedEngine {
    /// Assembles a sharded engine from built inner engines and their
    /// id maps (one per [`ShardSlice`] of the plan that produced them).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or an engine's rule count disagrees
    /// with its slice — both indicate a builder bug, not user error.
    pub fn from_parts(
        parts: Vec<(Box<dyn PacketClassifier>, ShardSlice)>,
        strategy: ShardStrategy,
        inner_kind: EngineKind,
    ) -> Self {
        assert!(!parts.is_empty(), "a sharded engine needs >= 1 shard");
        let mut shards = Vec::with_capacity(parts.len());
        let mut rules = 0;
        for (engine, slice) in parts {
            assert_eq!(engine.rules(), slice.global_ids.len(), "slice mismatch");
            rules += slice.global_ids.len();
            shards.push(Shard {
                engine,
                global_ids: slice.global_ids,
            });
        }
        ShardedEngine {
            shards,
            strategy,
            inner_kind,
            rules,
            live: None,
            last_report: None,
            epoch: 0,
        }
    }

    /// Arms the incremental-update path (the paper's §V.A fast update,
    /// routed to the owning shard).
    ///
    /// `router` must describe exactly the rules the inner engines were
    /// built from — [`crate::EngineBuilder`] derives both from the same
    /// [`spc_core::shard::ShardPlan`] — and `factory` builds an empty
    /// inner engine for shards churn creates later. `skew` sets the
    /// band-rebalance policy: a priority band splits when it exceeds
    /// `skew × max(ceil(rules / bands), 16)` rules, both measured at
    /// arming time, so the threshold is a fixed per-band capacity (no
    /// feedback loop) and at most one split runs per insert. Values
    /// below 1.0 are clamped to 1.0; hash strategies ignore it.
    pub fn enable_updates(&mut self, router: ShardRouter, factory: InnerFactory, skew: f64) {
        assert_eq!(router.len(), self.rules, "router must mirror the engine");
        assert_eq!(
            router.shard_count(),
            self.shards.len(),
            "router must cover every shard"
        );
        let quota = self.rules.div_ceil(self.shards.len()).max(MIN_BAND_QUOTA);
        let band_threshold = (quota as f64 * skew.max(1.0)).ceil() as usize;
        self.live = Some(LiveUpdates {
            router,
            factory,
            band_threshold,
        });
    }

    /// Number of shards actually built (empty slices are dropped by the
    /// plan, so this can be below the requested count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy in force.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The registry kind of the inner engines.
    pub fn inner_kind(&self) -> EngineKind {
        self.inner_kind
    }

    /// Per-shard rule counts, for load-balance inspection.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.rules()).collect()
    }

    /// Folds `from` into `into`: the hit with the better
    /// `(priority, global rule id)` wins, memory reads accumulate (all
    /// shards are queried, so every shard's reads are real work). The
    /// merge is commutative and associative, which is what lets the
    /// batch path fold chunks in arrival order. Crate-visible because
    /// the snapshot wrapper's hash-sharded snapshots merge per-shard
    /// verdicts with exactly these semantics (`crate::snapshot`).
    pub(crate) fn merge(into: &mut Verdict, from: &Verdict) {
        into.add_reads(from.mem_reads);
        let wins = match (from.rule, into.rule) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(f), Some(i)) => (from.priority, f) < (into.priority, i),
        };
        if wins {
            into.rule = from.rule;
            into.priority = from.priority;
            into.action = from.action;
            into.matched = from.matched;
        }
    }

    /// Splits priority band `band` by migrating the upper half of its
    /// rules — a mini rule-set migration — into a fresh inner engine
    /// spliced in at `band + 1`, preserving the `(priority, global id)`
    /// cascade invariant so early-exit merging stays correct.
    ///
    /// Best-effort: the moved rules are installed into the fresh engine
    /// *first*, and if any install fails (factory error, capacity) the
    /// fresh engine is discarded with the live engines untouched — an
    /// oversized band is a load-balance wart, not a correctness problem.
    /// Returns the hardware write cycles the migration cost.
    ///
    /// # Panics
    ///
    /// Panics if a migrated rule cannot be removed from the source band
    /// after its copy was installed in the new one — that would leave
    /// the rule live twice and indicates an inner-engine bug.
    ///
    /// An abandoned split doubles `band_threshold` so the failed
    /// migration is not retried wholesale on every subsequent insert
    /// into the still-oversized band — retries resume only once the
    /// band has grown well past the point that failed, bounding the
    /// wasted work to O(log) attempts over the engine's lifetime.
    // Every id in `moves` came out of the router's own split plan a few
    // lines up, and nothing removes rules between planning and applying,
    // so the location/remove lookups cannot miss.
    #[allow(clippy::expect_used)]
    fn split_band(shards: &mut Vec<Shard>, live: &mut LiveUpdates, band: usize) -> u64 {
        let abandon = |live: &mut LiveUpdates| {
            live.band_threshold = live.band_threshold.saturating_mul(2);
            0
        };
        let moves = live.router.split_moves(band);
        if moves.is_empty() {
            return 0;
        }
        let Ok(engine) = (live.factory)() else {
            return abandon(live);
        };
        let mut fresh = Shard {
            engine,
            global_ids: Vec::new(),
        };
        let mut cycles = 0u64;
        let mut moved = Vec::with_capacity(moves.len());
        for &global in &moves {
            let rule = live
                .router
                .location(global)
                .expect("split move is installed")
                .rule;
            match fresh.engine.insert(rule) {
                Ok(local) => {
                    fresh.set_global(local, global);
                    cycles += fresh
                        .engine
                        .last_update_report()
                        .map_or(0, |r| r.hw_write_cycles);
                    moved.push((global, local));
                }
                Err(_) => return abandon(live),
            }
        }
        for &(global, _) in &moved {
            let local = live
                .router
                .location(global)
                .expect("still installed in the source band")
                .local;
            shards[band]
                .engine
                .remove(local)
                .expect("migrated rule is installed in the source band");
            cycles += shards[band]
                .engine
                .last_update_report()
                .map_or(0, |r| r.hw_write_cycles);
        }
        shards.insert(band + 1, fresh);
        live.router.apply_band_split(band, &moved);
        cycles
    }
}

impl PacketClassifier for ShardedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn rules(&self) -> usize {
        self.rules
    }

    fn classify(&self, header: &Header) -> Verdict {
        match self.strategy {
            // Bands are (priority, id)-ordered: the first band that hits
            // holds the global HPMR, and later bands are never read.
            ShardStrategy::PriorityBands => {
                let mut reads = 0u32;
                for shard in &self.shards {
                    let mut v = shard.remap(shard.engine.classify(header));
                    v.add_reads(reads);
                    if v.is_hit() {
                        return v;
                    }
                    reads = v.mem_reads;
                }
                Verdict::miss(reads)
            }
            // Hash shards are unordered: query all, keep the best.
            ShardStrategy::FieldHash(_) => {
                let mut merged = Verdict::miss(0);
                for shard in &self.shards {
                    let v = shard.remap(shard.engine.classify(header));
                    Self::merge(&mut merged, &v);
                }
                merged
            }
        }
    }

    /// Fans the batch out over one scoped pool worker per shard —
    /// [`pipeline::broadcast_batch`] for hash shards,
    /// [`pipeline::cascade_batch`] for priority bands (see the module
    /// docs) — and merges verdict chunks as they stream back.
    ///
    /// The returned [`LookupStats`] is the per-shard stats folded with
    /// `+` and then restated in merged terms: `packets` is the batch
    /// length (not shards × batch) and `hits` counts merged hits, while
    /// `mem_reads` always equals the sum of the emitted verdicts' reads
    /// — for hash shards that is every shard's reads for every header
    /// (N parallel hardware engines all do the work); for priority
    /// bands only the bands a header actually visited.
    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        if headers.is_empty() {
            return LookupStats::default();
        }
        out.resize(headers.len(), Verdict::miss(0));

        if self.shards.len() == 1 {
            // No fan-out to pay for: one worker, processed inline.
            let mut stats = self.shards[0].process(headers, out);
            stats.hits = out.iter().filter(|v| v.is_hit()).count() as u64;
            return stats;
        }

        let folded = match self.strategy {
            ShardStrategy::FieldHash(_) => pipeline::broadcast_batch(
                &mut self.shards,
                headers,
                out,
                Self::merge,
                pipeline::DEFAULT_CHUNK,
            ),
            ShardStrategy::PriorityBands => {
                pipeline::cascade_batch(&mut self.shards, headers, out, pipeline::DEFAULT_CHUNK)
            }
        };
        LookupStats {
            packets: headers.len() as u64,
            hits: out.iter().filter(|v| v.is_hit()).count() as u64,
            mem_reads: out.iter().map(|v| u64::from(v.mem_reads)).sum(),
            combos_probed: folded.combos_probed,
            cache_hits: folded.cache_hits,
            cache_misses: folded.cache_misses,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.memory_bits()).sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.shards
            .iter()
            .map(|s| s.engine.access_counts())
            .fold(AccessCounts::default(), |a, b| a + b)
    }

    fn reset_access_counts(&self) {
        for s in &self.shards {
            s.engine.reset_access_counts();
        }
    }

    /// `true` when every inner engine supports updates — then the
    /// builder armed the routed update path via
    /// [`ShardedEngine::enable_updates`].
    fn supports_updates(&self) -> bool {
        self.live.is_some()
    }

    /// Routes the rule to its owning shard — the hash of its
    /// `hash_dim` projection, or the priority band covering its
    /// `(priority, global id)` key — and installs it there, creating
    /// the shard first if churn just opened it (an empty hash slot).
    /// Under priority bands, a band grown past the skew threshold is
    /// split afterwards (see [`ShardedEngine::enable_updates`]).
    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        // A failed insert (unsupported, duplicate, inner rejection) must
        // leave the previous report and the epoch untouched — the epoch
        // bumps iff the report is replaced.
        let name = self.name();
        let live = self
            .live
            .as_mut()
            .ok_or(UpdateError::Unsupported { engine: name })?;
        // The cross-shard mirror of the Rule Filter's duplicate-key
        // check: under priority bands the collision can live in a
        // different band, where no inner engine would see it.
        if let Some(existing) = live.router.duplicate_of(&rule) {
            return Err(UpdateError::Duplicate { existing });
        }
        let shard = match live.router.route(&rule) {
            RouteTarget::Existing(shard) => shard,
            RouteTarget::NewShard { slot } => {
                let engine = (live.factory)().map_err(|reason| UpdateError::Rejected { reason })?;
                self.shards.push(Shard {
                    engine,
                    global_ids: Vec::new(),
                });
                live.router.register_shard(slot)
            }
        };
        let local = match self.shards[shard].engine.insert(rule) {
            Ok(local) => local,
            // Inner errors carry shard-local ids; translate before they
            // escape into the global-id API.
            Err(e) => return Err(self.shards[shard].remap_error(e)),
        };
        let global = live.router.record_insert(rule, shard, local);
        self.shards[shard].set_global(local, global);
        self.rules += 1;
        let mut report = self.shards[shard].engine.last_update_report().map_or_else(
            || UpdateReport {
                rule_id: global,
                created_labels: 0,
                freed_labels: 0,
                hw_write_cycles: 0,
            },
            |r| UpdateReport {
                rule_id: global,
                ..r
            },
        );
        if self.strategy == ShardStrategy::PriorityBands
            && live.router.shard_len(shard) > live.band_threshold
        {
            report.hw_write_cycles = report.hw_write_cycles.saturating_add(Self::split_band(
                &mut self.shards,
                live,
                shard,
            ));
        }
        self.last_report = Some(report);
        self.epoch += 1;
        Ok(global)
    }

    /// Removes a rule from the shard that owns its global id.
    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let name = self.name();
        let live = self
            .live
            .as_mut()
            .ok_or(UpdateError::Unsupported { engine: name })?;
        let (shard, local) = match live.router.location(id) {
            Some(loc) => (loc.shard, loc.local),
            None => return Err(UpdateError::UnknownRule { id }),
        };
        if let Err(e) = self.shards[shard].engine.remove(local) {
            return Err(self.shards[shard].remap_error(e));
        }
        live.router.record_remove(id);
        self.rules -= 1;
        // Always replace the report on success (even if the inner
        // backend reported nothing) so the epoch/report pair moves
        // together.
        self.last_report = Some(self.shards[shard].engine.last_update_report().map_or_else(
            || UpdateReport {
                rule_id: id,
                created_labels: 0,
                freed_labels: 0,
                hw_write_cycles: 0,
            },
            |r| UpdateReport { rule_id: id, ..r },
        ));
        self.epoch += 1;
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.last_report
    }

    fn update_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use spc_types::{Action, PortRange, Priority, ProtoSpec, Rule, RuleSet};

    fn rules(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i as u16))
                    .build()
            })
            .collect()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 7, port, 6)
    }

    fn sharded(n_rules: u32, shards: usize) -> Box<dyn PacketClassifier> {
        EngineBuilder::from_spec(&format!("sharded:inner=linear,shards={shards}"))
            .unwrap()
            .build(&rules(n_rules))
            .unwrap()
    }

    #[test]
    fn merged_verdicts_carry_global_ids() {
        let mut e = sharded(20, 4);
        assert_eq!(e.rules(), 20);
        assert_eq!(e.kind(), EngineKind::Sharded);
        for port in 0..20u16 {
            let v = e.classify(&hdr(port));
            assert_eq!(v.rule, Some(RuleId(u32::from(port))), "global id restored");
            assert_eq!(v.action, Some(Action::Forward(port)));
        }
        assert!(!e.classify(&hdr(999)).is_hit());
        let trace: Vec<Header> = (0..64).map(|i| hdr(i % 25)).collect();
        let mut out = Vec::new();
        let stats = e.classify_batch(&trace, &mut out);
        assert_eq!(stats.packets, 64);
        assert_eq!(out.len(), 64);
        for (h, v) in trace.iter().zip(&out) {
            assert_eq!(*v, e.classify(h), "batch equals single at {h}");
        }
        assert_eq!(stats.hits, out.iter().filter(|v| v.is_hit()).count() as u64);
        assert_eq!(
            stats.mem_reads,
            out.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>(),
            "folded reads equal the per-verdict sums"
        );
    }

    #[test]
    fn merge_prefers_priority_then_global_id() {
        let hit = |rule: u32, prio: u32, reads: u32| {
            Verdict::hit(
                MatchHandle {
                    id: RuleId(rule),
                    priority: Priority(prio),
                    mask_summary: spc_types::MaskSummary::NONE,
                },
                Action::Forward(rule as u16),
                reads,
            )
        };
        let mut m = Verdict::miss(2);
        ShardedEngine::merge(&mut m, &hit(9, 5, 3));
        assert_eq!(m.rule, Some(RuleId(9)));
        assert_eq!(m.mem_reads, 5);
        // Lower priority value wins...
        ShardedEngine::merge(&mut m, &hit(30, 1, 1));
        assert_eq!(m.rule, Some(RuleId(30)));
        // ...equal priority falls back to the lower global id...
        ShardedEngine::merge(&mut m, &hit(12, 1, 1));
        assert_eq!(m.rule, Some(RuleId(12)));
        // ...and a worse hit or miss changes nothing but the reads.
        ShardedEngine::merge(&mut m, &hit(50, 8, 1));
        ShardedEngine::merge(&mut m, &Verdict::miss(4));
        assert_eq!(m.rule, Some(RuleId(12)));
        assert_eq!(m.priority, Some(Priority(1)));
        assert_eq!(m.mem_reads, 12);
    }

    #[test]
    fn single_shard_skips_fanout_but_matches_semantics() {
        let mut one = sharded(12, 1);
        let mut four = sharded(12, 4);
        let trace: Vec<Header> = (0..40).map(|i| hdr(i % 14)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let sa = one.classify_batch(&trace, &mut a);
        let sb = four.classify_batch(&trace, &mut b);
        // Matches agree; mem_reads legitimately differ (every shard
        // scans its slice, so totals depend on the partition).
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.action, y.action);
        }
        assert_eq!(sa.packets, sb.packets);
        assert_eq!(sa.hits, sb.hits);
    }

    #[test]
    fn batch_on_empty_input_is_empty() {
        let mut e = sharded(8, 2);
        let mut out = vec![Verdict::miss(1)];
        let stats = e.classify_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, LookupStats::default());
    }

    #[test]
    fn memory_and_rules_aggregate() {
        let one = sharded(16, 1);
        let four = sharded(16, 4);
        assert_eq!(one.rules(), four.rules());
        // Four linear shards hold the same rules overall; per-shard
        // structures can only add overhead.
        assert!(four.memory_bits() >= one.memory_bits() / 2);
    }

    #[test]
    fn non_updatable_inner_keeps_updates_unsupported() {
        let mut e = sharded(8, 2); // inner=linear
        assert!(!e.supports_updates());
        assert!(matches!(
            e.insert(Rule::builder(Priority(0)).build()),
            Err(UpdateError::Unsupported { .. })
        ));
        assert!(matches!(
            e.remove(RuleId(0)),
            Err(UpdateError::Unsupported { .. })
        ));
        assert!(e.last_update_report().is_none());
    }

    fn updatable(spec: &str, n_rules: u32) -> ShardedEngine {
        let builder = EngineBuilder::from_spec(spec).unwrap();
        let engine = builder.build_sharded(&rules(n_rules)).unwrap();
        assert!(engine.supports_updates(), "{spec}");
        engine
    }

    #[test]
    fn insert_and_remove_route_to_owning_shard() {
        for strategy in ["prio", "hash"] {
            let spec = format!("sharded:inner=configurable-bst,shards=4,strategy={strategy}");
            let mut e = updatable(&spec, 20);
            let before = e.rules();
            let r = Rule::builder(Priority(3))
                .dst_port(PortRange::exact(500))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(77))
                .build();
            let id = e.insert(r).unwrap();
            assert_eq!(e.rules(), before + 1);
            assert!(id.0 >= 20, "churn ids continue after the planned ones");
            let rep = e.last_update_report().expect("insert must report");
            assert_eq!(rep.rule_id, id);
            assert!(rep.hw_write_cycles >= 3, "§V.A floor");
            let v = e.classify(&hdr(500));
            assert_eq!(v.rule, Some(id), "{spec}");
            assert_eq!(v.action, Some(Action::Forward(77)));
            // Duplicate dims are rejected across shard boundaries, even
            // with a different priority (label keys ignore priority).
            let mut dup = r;
            dup.priority = Priority(9999);
            assert_eq!(
                e.insert(dup),
                Err(UpdateError::Duplicate { existing: id }),
                "{spec}"
            );
            e.remove(id).unwrap();
            let rep = e.last_update_report().expect("remove must report");
            assert_eq!(rep.rule_id, id);
            assert!(!e.classify(&hdr(500)).is_hit());
            assert_eq!(e.rules(), before);
            assert_eq!(e.remove(id), Err(UpdateError::UnknownRule { id }), "{spec}");
            // Batch and single paths agree after churn.
            let trace: Vec<Header> = (0..30).map(|i| hdr(i % 22)).collect();
            let mut out = Vec::new();
            e.classify_batch(&trace, &mut out);
            for (h, v) in trace.iter().zip(&out) {
                assert_eq!(*v, e.classify(h), "{spec} batch-vs-single at {h}");
            }
        }
    }

    #[test]
    fn duplicate_rejection_survives_twin_churn() {
        // Projection twins at priority extremes land in different bands
        // (so the planned build succeeds); after one twin is removed the
        // survivor must still be found by the duplicate check, and the
        // id the error names must be the *global* id of a live rule.
        let twin = |p: u32, tag: u16| {
            Rule::builder(Priority(p))
                .dst_port(PortRange::exact(900))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(tag))
                .build()
        };
        let mut rs = rules(10);
        let first = rs.push(twin(2, 1));
        let second = rs.push(twin(5000, 2));
        let mut e =
            EngineBuilder::from_spec("sharded:inner=configurable-bst,shards=2,strategy=prio")
                .unwrap()
                .build_sharded(&rs)
                .unwrap();
        assert!(e.supports_updates());
        e.remove(second).unwrap();
        assert_eq!(
            e.insert(twin(7000, 3)),
            Err(UpdateError::Duplicate { existing: first }),
            "duplicate check must survive twin removal and name the live global id"
        );
        let v = e.classify(&hdr(900));
        assert_eq!(v.rule, Some(first), "the surviving twin still matches");
    }

    #[test]
    fn hash_insert_opens_empty_slot_as_new_shard() {
        // All 12 planned rules share proto 6; hashing on proto fills one
        // slot, so a fresh protocol value must open a new shard.
        let mut e = updatable(
            "sharded:inner=configurable-bst,shards=8,strategy=hash,hash_dim=proto",
            12,
        );
        let shards_before = e.shard_count();
        let mut opened = false;
        for proto in 0u8..30 {
            let r = Rule::builder(Priority(100 + u32::from(proto)))
                .proto(ProtoSpec::Exact(proto))
                .action(Action::Forward(u16::from(proto)))
                .build();
            let id = e.insert(r).unwrap();
            let h = Header::new([9, 9, 9, 9].into(), [8, 8, 8, 8].into(), 1, 999, proto);
            let v = e.classify(&h);
            // Planned rules only match dst_port < 12 headers; port 999
            // headers resolve to the freshly inserted per-proto rule.
            assert_eq!(v.rule, Some(id), "proto {proto}");
            opened |= e.shard_count() > shards_before;
        }
        assert!(opened, "some protocol value must land in an empty slot");
    }

    #[test]
    fn skewed_inserts_split_priority_bands() {
        let mut e = updatable("sharded:inner=configurable-bst,shards=2,strategy=prio", 24);
        let bands_before = e.shard_count();
        // Everything lands in the top band: priorities 0..24 already
        // exist, and these all beat them.
        for i in 0..80u16 {
            let r = Rule::builder(Priority(0))
                .dst_port(PortRange::exact(1000 + i))
                .proto(ProtoSpec::Exact(17))
                .action(Action::Forward(i))
                .build();
            e.insert(r).unwrap();
        }
        assert!(
            e.shard_count() > bands_before,
            "an oversized band must split ({} bands)",
            e.shard_count()
        );
        // Every rule is still reachable with its own id, and the
        // early-exit cascade still resolves the right priorities.
        for i in 0..80u16 {
            let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 1000 + i, 17);
            let v = e.classify(&h);
            assert_eq!(v.action, Some(Action::Forward(i)), "port {}", 1000 + i);
            assert_eq!(v.priority, Some(Priority(0)));
        }
        for port in 0..24u16 {
            assert!(
                e.classify(&hdr(port)).is_hit(),
                "planned rule {port} survives"
            );
        }
        let trace: Vec<Header> = (0..60)
            .map(|i| Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 990 + i, 17))
            .collect();
        let mut out = Vec::new();
        e.classify_batch(&trace, &mut out);
        for (h, v) in trace.iter().zip(&out) {
            assert_eq!(*v, e.classify(h), "batch-vs-single after split at {h}");
        }
    }

    #[test]
    fn churn_on_initially_empty_engine() {
        for strategy in ["prio", "hash"] {
            let spec = format!("sharded:inner=configurable-bst,shards=4,strategy={strategy}");
            let builder = EngineBuilder::from_spec(&spec).unwrap();
            let mut e = builder.build_sharded(&RuleSet::new()).unwrap();
            assert!(e.supports_updates(), "{spec}");
            assert_eq!(e.rules(), 0);
            let mut ids = Vec::new();
            for i in 0..20u16 {
                let r = Rule::builder(Priority(u32::from(i)))
                    .dst_port(PortRange::exact(i))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i))
                    .build();
                ids.push(e.insert(r).unwrap());
            }
            for (i, &id) in ids.iter().enumerate() {
                let v = e.classify(&hdr(i as u16));
                assert_eq!(v.rule, Some(id), "{spec}");
            }
            for &id in &ids {
                e.remove(id).unwrap();
            }
            assert_eq!(e.rules(), 0);
            assert!(!e.classify(&hdr(3)).is_hit(), "{spec}");
        }
    }
}
