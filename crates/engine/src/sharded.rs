//! [`PacketClassifier`] that partitions the rule set across N inner
//! engines and merges their verdicts by priority.
//!
//! The paper scales by replicating single-field engines in parallel
//! hardware; [`ShardedEngine`] is the software analogue one level up:
//! a [`spc_core::shard::ShardPlan`] splits the rule set (by priority
//! band or field hash), one inner [`PacketClassifier`] is built per
//! slice, and every lookup queries all shards, keeping the hit with the
//! best `(priority, global rule id)`. Because each shard sees every
//! header, correctness is independent of the partitioning strategy —
//! the differential oracle enforces exactly that.
//!
//! The batch path is where sharding pays, and it runs entirely on the
//! shared [`crate::pipeline`] worker-pool machinery — each shard is one
//! [`pipeline::BatchWorker`] (its inner engine's own amortised
//! `classify_batch`, so a configurable inner reuses its
//! [`spc_core::ClassifyScratch`] across the whole batch, plus the
//! local→global rule-id remap). The topology depends on the strategy:
//!
//! * [`ShardStrategy::FieldHash`] — [`pipeline::broadcast_batch`]: every
//!   worker sees every chunk, remapped verdicts stream back to one merge
//!   loop. All shards are always queried; shard structures are smaller
//!   and (given cores) run concurrently.
//! * [`ShardStrategy::PriorityBands`] — [`pipeline::cascade_batch`]:
//!   band workers form a channel-fed pipeline in band order. Priority
//!   bands are totally ordered by `(priority, global id)`, so a hit in
//!   band `k` cannot be beaten by any later band — each worker resolves
//!   its hits on the spot and forwards only unresolved headers
//!   downstream. High-priority traffic never pays for the long tail, and
//!   chunks ripple through the pipeline concurrently.

use crate::pipeline::{self, BatchWorker};
use crate::{EngineKind, LookupStats, PacketClassifier, Verdict};
use spc_core::shard::{ShardSlice, ShardStrategy};
use spc_hwsim::AccessCounts;
use spc_types::{Header, RuleId};

/// One shard: an inner engine plus the local→global rule-id map.
#[derive(Debug)]
struct Shard {
    engine: Box<dyn PacketClassifier>,
    global_ids: Vec<RuleId>,
}

impl Shard {
    /// Rewrites a shard-local verdict into global rule-id space.
    fn remap(&self, v: Verdict) -> Verdict {
        Verdict {
            rule: v.rule.map(|id| self.global_ids[id.0 as usize]),
            ..v
        }
    }
}

/// A shard is one pool worker: the inner engine's amortised batch path,
/// with every verdict remapped into global rule-id space on the way out.
impl BatchWorker for Shard {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        let stats = self.engine.classify_batch(headers, out);
        for v in out.iter_mut() {
            *v = self.remap(*v);
        }
        stats
    }
}

/// A partitioned multi-classifier backend: N inner engines, one merged
/// verdict. Built by [`crate::EngineBuilder`] from specs like
/// `sharded:inner=configurable-bst,shards=8,strategy=prio`.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    strategy: ShardStrategy,
    inner_kind: EngineKind,
    rules: usize,
}

impl ShardedEngine {
    /// Assembles a sharded engine from built inner engines and their
    /// id maps (one per [`ShardSlice`] of the plan that produced them).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or an engine's rule count disagrees
    /// with its slice — both indicate a builder bug, not user error.
    pub fn from_parts(
        parts: Vec<(Box<dyn PacketClassifier>, ShardSlice)>,
        strategy: ShardStrategy,
        inner_kind: EngineKind,
    ) -> Self {
        assert!(!parts.is_empty(), "a sharded engine needs >= 1 shard");
        let mut shards = Vec::with_capacity(parts.len());
        let mut rules = 0;
        for (engine, slice) in parts {
            assert_eq!(engine.rules(), slice.global_ids.len(), "slice mismatch");
            rules += slice.global_ids.len();
            shards.push(Shard {
                engine,
                global_ids: slice.global_ids,
            });
        }
        ShardedEngine {
            shards,
            strategy,
            inner_kind,
            rules,
        }
    }

    /// Number of shards actually built (empty slices are dropped by the
    /// plan, so this can be below the requested count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy in force.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The registry kind of the inner engines.
    pub fn inner_kind(&self) -> EngineKind {
        self.inner_kind
    }

    /// Per-shard rule counts, for load-balance inspection.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.rules()).collect()
    }

    /// Folds `from` into `into`: the hit with the better
    /// `(priority, global rule id)` wins, memory reads accumulate (all
    /// shards are queried, so every shard's reads are real work). The
    /// merge is commutative and associative, which is what lets the
    /// batch path fold chunks in arrival order.
    fn merge(into: &mut Verdict, from: &Verdict) {
        into.mem_reads = into.mem_reads.saturating_add(from.mem_reads);
        let wins = match (from.rule, into.rule) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(f), Some(i)) => (from.priority, f) < (into.priority, i),
        };
        if wins {
            into.rule = from.rule;
            into.priority = from.priority;
            into.action = from.action;
        }
    }
}

impl PacketClassifier for ShardedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn rules(&self) -> usize {
        self.rules
    }

    fn classify(&self, header: &Header) -> Verdict {
        match self.strategy {
            // Bands are (priority, id)-ordered: the first band that hits
            // holds the global HPMR, and later bands are never read.
            ShardStrategy::PriorityBands => {
                let mut reads = 0u32;
                for shard in &self.shards {
                    let mut v = shard.remap(shard.engine.classify(header));
                    v.mem_reads = v.mem_reads.saturating_add(reads);
                    if v.is_hit() {
                        return v;
                    }
                    reads = v.mem_reads;
                }
                Verdict::miss(reads)
            }
            // Hash shards are unordered: query all, keep the best.
            ShardStrategy::FieldHash(_) => {
                let mut merged = Verdict::miss(0);
                for shard in &self.shards {
                    let v = shard.remap(shard.engine.classify(header));
                    Self::merge(&mut merged, &v);
                }
                merged
            }
        }
    }

    /// Fans the batch out over one scoped pool worker per shard —
    /// [`pipeline::broadcast_batch`] for hash shards,
    /// [`pipeline::cascade_batch`] for priority bands (see the module
    /// docs) — and merges verdict chunks as they stream back.
    ///
    /// The returned [`LookupStats`] is the per-shard stats folded with
    /// `+` and then restated in merged terms: `packets` is the batch
    /// length (not shards × batch) and `hits` counts merged hits, while
    /// `mem_reads` always equals the sum of the emitted verdicts' reads
    /// — for hash shards that is every shard's reads for every header
    /// (N parallel hardware engines all do the work); for priority
    /// bands only the bands a header actually visited.
    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        if headers.is_empty() {
            return LookupStats::default();
        }
        out.resize(headers.len(), Verdict::miss(0));

        if self.shards.len() == 1 {
            // No fan-out to pay for: one worker, processed inline.
            let mut stats = self.shards[0].process(headers, out);
            stats.hits = out.iter().filter(|v| v.is_hit()).count() as u64;
            return stats;
        }

        let folded = match self.strategy {
            ShardStrategy::FieldHash(_) => pipeline::broadcast_batch(
                &mut self.shards,
                headers,
                out,
                Self::merge,
                pipeline::DEFAULT_CHUNK,
            ),
            ShardStrategy::PriorityBands => {
                pipeline::cascade_batch(&mut self.shards, headers, out, pipeline::DEFAULT_CHUNK)
            }
        };
        LookupStats {
            packets: headers.len() as u64,
            hits: out.iter().filter(|v| v.is_hit()).count() as u64,
            mem_reads: out.iter().map(|v| u64::from(v.mem_reads)).sum(),
            combos_probed: folded.combos_probed,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.memory_bits()).sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.shards
            .iter()
            .map(|s| s.engine.access_counts())
            .fold(AccessCounts::default(), |a, b| a + b)
    }

    fn reset_access_counts(&self) {
        for s in &self.shards {
            s.engine.reset_access_counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use spc_types::{Action, PortRange, Priority, ProtoSpec, Rule, RuleSet};

    fn rules(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i as u16))
                    .build()
            })
            .collect()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 7, port, 6)
    }

    fn sharded(n_rules: u32, shards: usize) -> Box<dyn PacketClassifier> {
        EngineBuilder::from_spec(&format!("sharded:inner=linear,shards={shards}"))
            .unwrap()
            .build(&rules(n_rules))
            .unwrap()
    }

    #[test]
    fn merged_verdicts_carry_global_ids() {
        let mut e = sharded(20, 4);
        assert_eq!(e.rules(), 20);
        assert_eq!(e.kind(), EngineKind::Sharded);
        for port in 0..20u16 {
            let v = e.classify(&hdr(port));
            assert_eq!(v.rule, Some(RuleId(u32::from(port))), "global id restored");
            assert_eq!(v.action, Some(Action::Forward(port)));
        }
        assert!(!e.classify(&hdr(999)).is_hit());
        let trace: Vec<Header> = (0..64).map(|i| hdr(i % 25)).collect();
        let mut out = Vec::new();
        let stats = e.classify_batch(&trace, &mut out);
        assert_eq!(stats.packets, 64);
        assert_eq!(out.len(), 64);
        for (h, v) in trace.iter().zip(&out) {
            assert_eq!(*v, e.classify(h), "batch equals single at {h}");
        }
        assert_eq!(stats.hits, out.iter().filter(|v| v.is_hit()).count() as u64);
        assert_eq!(
            stats.mem_reads,
            out.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>(),
            "folded reads equal the per-verdict sums"
        );
    }

    #[test]
    fn merge_prefers_priority_then_global_id() {
        let hit = |rule: u32, prio: u32, reads: u32| Verdict {
            rule: Some(RuleId(rule)),
            priority: Some(Priority(prio)),
            action: Some(Action::Forward(rule as u16)),
            mem_reads: reads,
        };
        let mut m = Verdict::miss(2);
        ShardedEngine::merge(&mut m, &hit(9, 5, 3));
        assert_eq!(m.rule, Some(RuleId(9)));
        assert_eq!(m.mem_reads, 5);
        // Lower priority value wins...
        ShardedEngine::merge(&mut m, &hit(30, 1, 1));
        assert_eq!(m.rule, Some(RuleId(30)));
        // ...equal priority falls back to the lower global id...
        ShardedEngine::merge(&mut m, &hit(12, 1, 1));
        assert_eq!(m.rule, Some(RuleId(12)));
        // ...and a worse hit or miss changes nothing but the reads.
        ShardedEngine::merge(&mut m, &hit(50, 8, 1));
        ShardedEngine::merge(&mut m, &Verdict::miss(4));
        assert_eq!(m.rule, Some(RuleId(12)));
        assert_eq!(m.priority, Some(Priority(1)));
        assert_eq!(m.mem_reads, 12);
    }

    #[test]
    fn single_shard_skips_fanout_but_matches_semantics() {
        let mut one = sharded(12, 1);
        let mut four = sharded(12, 4);
        let trace: Vec<Header> = (0..40).map(|i| hdr(i % 14)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let sa = one.classify_batch(&trace, &mut a);
        let sb = four.classify_batch(&trace, &mut b);
        // Matches agree; mem_reads legitimately differ (every shard
        // scans its slice, so totals depend on the partition).
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.action, y.action);
        }
        assert_eq!(sa.packets, sb.packets);
        assert_eq!(sa.hits, sb.hits);
    }

    #[test]
    fn batch_on_empty_input_is_empty() {
        let mut e = sharded(8, 2);
        let mut out = vec![Verdict::miss(1)];
        let stats = e.classify_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, LookupStats::default());
    }

    #[test]
    fn memory_and_rules_aggregate() {
        let one = sharded(16, 1);
        let four = sharded(16, 4);
        assert_eq!(one.rules(), four.rules());
        // Four linear shards hold the same rules overall; per-shard
        // structures can only add overhead.
        assert!(four.memory_bits() >= one.memory_bits() / 2);
    }
}
