//! [`PacketClassifier`] that partitions the rule set across N inner
//! engines and merges their verdicts by priority.
//!
//! The paper scales by replicating single-field engines in parallel
//! hardware; [`ShardedEngine`] is the software analogue one level up:
//! a [`spc_core::shard::ShardPlan`] splits the rule set (by priority
//! band or field hash), one inner [`PacketClassifier`] is built per
//! slice, and every lookup queries all shards, keeping the hit with the
//! best `(priority, global rule id)`. Because each shard sees every
//! header, correctness is independent of the partitioning strategy —
//! the differential oracle enforces exactly that.
//!
//! The batch path is where sharding pays. It fans out over one scoped
//! worker thread per shard (`std::thread::scope`), each worker running
//! its inner engine's own amortised `classify_batch` chunk by chunk (so
//! a configurable inner reuses its [`spc_core::ClassifyScratch`] across
//! the whole batch), with verdict chunks streaming through `mpsc`
//! channels. The wiring depends on the strategy:
//!
//! * [`ShardStrategy::FieldHash`] — *broadcast*: every worker sees every
//!   chunk, remapped verdicts stream back to one merge loop. All shards
//!   are always queried; shard structures are smaller and (given cores)
//!   run concurrently.
//! * [`ShardStrategy::PriorityBands`] — *cascade*: band workers form a
//!   channel-fed pipeline in band order. Priority bands are totally
//!   ordered by `(priority, global id)`, so a hit in band `k` cannot be
//!   beaten by any later band — each worker resolves its hits on the
//!   spot and forwards only unresolved headers downstream. High-priority
//!   traffic never pays for the long tail, and chunks ripple through the
//!   pipeline concurrently.

use crate::{EngineKind, LookupStats, PacketClassifier, Verdict};
use spc_core::shard::{ShardSlice, ShardStrategy};
use spc_hwsim::AccessCounts;
use spc_types::{Header, RuleId};
use std::sync::mpsc;

/// Headers per work unit on the batch path. Small enough that merge
/// overlaps shard work, large enough that channel traffic is noise.
const CHUNK: usize = 1024;

/// One shard: an inner engine plus the local→global rule-id map.
#[derive(Debug)]
struct Shard {
    engine: Box<dyn PacketClassifier>,
    global_ids: Vec<RuleId>,
}

impl Shard {
    /// Rewrites a shard-local verdict into global rule-id space.
    fn remap(&self, v: Verdict) -> Verdict {
        Verdict {
            rule: v.rule.map(|id| self.global_ids[id.0 as usize]),
            ..v
        }
    }
}

/// A partitioned multi-classifier backend: N inner engines, one merged
/// verdict. Built by [`crate::EngineBuilder`] from specs like
/// `sharded:inner=configurable-bst,shards=8,strategy=prio`.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    strategy: ShardStrategy,
    inner_kind: EngineKind,
    rules: usize,
}

impl ShardedEngine {
    /// Assembles a sharded engine from built inner engines and their
    /// id maps (one per [`ShardSlice`] of the plan that produced them).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or an engine's rule count disagrees
    /// with its slice — both indicate a builder bug, not user error.
    pub fn from_parts(
        parts: Vec<(Box<dyn PacketClassifier>, ShardSlice)>,
        strategy: ShardStrategy,
        inner_kind: EngineKind,
    ) -> Self {
        assert!(!parts.is_empty(), "a sharded engine needs >= 1 shard");
        let mut shards = Vec::with_capacity(parts.len());
        let mut rules = 0;
        for (engine, slice) in parts {
            assert_eq!(engine.rules(), slice.global_ids.len(), "slice mismatch");
            rules += slice.global_ids.len();
            shards.push(Shard {
                engine,
                global_ids: slice.global_ids,
            });
        }
        ShardedEngine {
            shards,
            strategy,
            inner_kind,
            rules,
        }
    }

    /// Number of shards actually built (empty slices are dropped by the
    /// plan, so this can be below the requested count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning strategy in force.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// The registry kind of the inner engines.
    pub fn inner_kind(&self) -> EngineKind {
        self.inner_kind
    }

    /// Per-shard rule counts, for load-balance inspection.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.rules()).collect()
    }

    /// Folds `from` into `into`: the hit with the better
    /// `(priority, global rule id)` wins, memory reads accumulate (all
    /// shards are queried, so every shard's reads are real work). The
    /// merge is commutative and associative, which is what lets the
    /// batch path fold chunks in arrival order.
    fn merge(into: &mut Verdict, from: &Verdict) {
        into.mem_reads = into.mem_reads.saturating_add(from.mem_reads);
        let wins = match (from.rule, into.rule) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(f), Some(i)) => (from.priority, f) < (into.priority, i),
        };
        if wins {
            into.rule = from.rule;
            into.priority = from.priority;
            into.action = from.action;
        }
    }

    /// Broadcast fan-out: every worker classifies every chunk; remapped
    /// verdict chunks stream back over one channel and merge in arrival
    /// order (the merge is commutative, so order doesn't matter).
    /// Returns the inner stats folded with `+`.
    fn batch_broadcast(
        shards: &mut [Shard],
        headers: &[Header],
        out: &mut [Verdict],
    ) -> LookupStats {
        let (tx, rx) = mpsc::channel::<(usize, Vec<Verdict>, LookupStats)>();
        let mut folded = LookupStats::default();
        std::thread::scope(|scope| {
            for shard in shards.iter_mut() {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut buf = Vec::new();
                    for (ci, chunk) in headers.chunks(CHUNK).enumerate() {
                        let stats = shard.engine.classify_batch(chunk, &mut buf);
                        let remapped = buf.iter().map(|&v| shard.remap(v)).collect();
                        // A send only fails if the receiver is gone, and
                        // the merge loop below outlives every worker.
                        let _ = tx.send((ci * CHUNK, remapped, stats));
                    }
                });
            }
            drop(tx);
            while let Ok((offset, chunk, stats)) = rx.recv() {
                folded = folded + stats;
                for (slot, v) in out[offset..].iter_mut().zip(&chunk) {
                    Self::merge(slot, v);
                }
            }
        });
        folded
    }

    /// Cascade pipeline for priority bands: worker `k` receives chunks
    /// of `(header index, reads so far)`, resolves every hit (band
    /// order guarantees no later band can beat it) straight to the
    /// result channel, and forwards only unresolved headers to worker
    /// `k + 1`. The last band resolves its misses too. Returns the
    /// inner stats folded with `+` (only `combos_probed` survives into
    /// the caller's restatement).
    fn batch_cascade(shards: &mut [Shard], headers: &[Header], out: &mut [Verdict]) -> LookupStats {
        type Work = Vec<(usize, u32)>;
        let n = shards.len();
        let (res_tx, res_rx) = mpsc::channel::<Vec<(usize, Verdict)>>();
        let (stat_tx, stat_rx) = mpsc::channel::<LookupStats>();
        std::thread::scope(|scope| {
            // Seed band 0 with the whole batch, nothing read yet.
            let (seed_tx, seed_rx) = mpsc::channel::<Work>();
            for chunk_start in (0..headers.len()).step_by(CHUNK) {
                let chunk_end = (chunk_start + CHUNK).min(headers.len());
                let _ = seed_tx.send((chunk_start..chunk_end).map(|i| (i, 0u32)).collect());
            }
            drop(seed_tx);

            let mut rx = seed_rx;
            for (k, shard) in shards.iter_mut().enumerate() {
                let is_last = k + 1 == n;
                let (fwd_tx, fwd_rx) = mpsc::channel::<Work>();
                let my_rx = std::mem::replace(&mut rx, fwd_rx);
                let res_tx = res_tx.clone();
                let stat_tx = stat_tx.clone();
                scope.spawn(move || {
                    let mut gathered: Vec<Header> = Vec::new();
                    let mut buf: Vec<Verdict> = Vec::new();
                    let mut folded = LookupStats::default();
                    while let Ok(items) = my_rx.recv() {
                        gathered.clear();
                        gathered.extend(items.iter().map(|&(i, _)| headers[i]));
                        folded = folded + shard.engine.classify_batch(&gathered, &mut buf);
                        let mut resolved = Vec::new();
                        let mut unresolved: Work = Vec::new();
                        for (&(i, carried), v) in items.iter().zip(&buf) {
                            let mut v = shard.remap(*v);
                            v.mem_reads = v.mem_reads.saturating_add(carried);
                            if v.is_hit() || is_last {
                                resolved.push((i, v));
                            } else {
                                unresolved.push((i, v.mem_reads));
                            }
                        }
                        if !resolved.is_empty() {
                            let _ = res_tx.send(resolved);
                        }
                        if !unresolved.is_empty() {
                            let _ = fwd_tx.send(unresolved);
                        }
                    }
                    // Dropping fwd_tx here closes the downstream band's
                    // inbox, draining the pipeline stage by stage.
                    let _ = stat_tx.send(folded);
                });
            }
            drop(res_tx);
            drop(stat_tx);
            while let Ok(batch) = res_rx.recv() {
                for (i, v) in batch {
                    out[i] = v;
                }
            }
        });
        let mut folded = LookupStats::default();
        while let Ok(s) = stat_rx.try_recv() {
            folded = folded + s;
        }
        folded
    }
}

impl PacketClassifier for ShardedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn rules(&self) -> usize {
        self.rules
    }

    fn classify(&self, header: &Header) -> Verdict {
        match self.strategy {
            // Bands are (priority, id)-ordered: the first band that hits
            // holds the global HPMR, and later bands are never read.
            ShardStrategy::PriorityBands => {
                let mut reads = 0u32;
                for shard in &self.shards {
                    let mut v = shard.remap(shard.engine.classify(header));
                    v.mem_reads = v.mem_reads.saturating_add(reads);
                    if v.is_hit() {
                        return v;
                    }
                    reads = v.mem_reads;
                }
                Verdict::miss(reads)
            }
            // Hash shards are unordered: query all, keep the best.
            ShardStrategy::FieldHash(_) => {
                let mut merged = Verdict::miss(0);
                for shard in &self.shards {
                    let v = shard.remap(shard.engine.classify(header));
                    Self::merge(&mut merged, &v);
                }
                merged
            }
        }
    }

    /// Fans the batch out over one scoped worker per shard (broadcast
    /// for hash shards, a channel-fed cascade pipeline for priority
    /// bands — see the module docs) and merges verdict chunks as they
    /// stream back.
    ///
    /// The returned [`LookupStats`] is the per-shard stats folded with
    /// `+` and then restated in merged terms: `packets` is the batch
    /// length (not shards × batch) and `hits` counts merged hits, while
    /// `mem_reads` always equals the sum of the emitted verdicts' reads
    /// — for hash shards that is every shard's reads for every header
    /// (N parallel hardware engines all do the work); for priority
    /// bands only the bands a header actually visited.
    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        if headers.is_empty() {
            return LookupStats::default();
        }
        out.resize(headers.len(), Verdict::miss(0));

        if self.shards.len() == 1 {
            // No fan-out to pay for: delegate and remap in place.
            let shard = &mut self.shards[0];
            let mut stats = shard.engine.classify_batch(headers, out);
            for v in out.iter_mut() {
                *v = shard.remap(*v);
            }
            stats.hits = out.iter().filter(|v| v.is_hit()).count() as u64;
            return stats;
        }

        let folded = match self.strategy {
            ShardStrategy::FieldHash(_) => Self::batch_broadcast(&mut self.shards, headers, out),
            ShardStrategy::PriorityBands => Self::batch_cascade(&mut self.shards, headers, out),
        };
        LookupStats {
            packets: headers.len() as u64,
            hits: out.iter().filter(|v| v.is_hit()).count() as u64,
            mem_reads: out.iter().map(|v| u64::from(v.mem_reads)).sum(),
            combos_probed: folded.combos_probed,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.engine.memory_bits()).sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.shards
            .iter()
            .map(|s| s.engine.access_counts())
            .fold(AccessCounts::default(), |a, b| a + b)
    }

    fn reset_access_counts(&self) {
        for s in &self.shards {
            s.engine.reset_access_counts();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use spc_types::{Action, PortRange, Priority, ProtoSpec, Rule, RuleSet};

    fn rules(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i as u16))
                    .build()
            })
            .collect()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 7, port, 6)
    }

    fn sharded(n_rules: u32, shards: usize) -> Box<dyn PacketClassifier> {
        EngineBuilder::from_spec(&format!("sharded:inner=linear,shards={shards}"))
            .unwrap()
            .build(&rules(n_rules))
            .unwrap()
    }

    #[test]
    fn merged_verdicts_carry_global_ids() {
        let mut e = sharded(20, 4);
        assert_eq!(e.rules(), 20);
        assert_eq!(e.kind(), EngineKind::Sharded);
        for port in 0..20u16 {
            let v = e.classify(&hdr(port));
            assert_eq!(v.rule, Some(RuleId(u32::from(port))), "global id restored");
            assert_eq!(v.action, Some(Action::Forward(port)));
        }
        assert!(!e.classify(&hdr(999)).is_hit());
        let trace: Vec<Header> = (0..64).map(|i| hdr(i % 25)).collect();
        let mut out = Vec::new();
        let stats = e.classify_batch(&trace, &mut out);
        assert_eq!(stats.packets, 64);
        assert_eq!(out.len(), 64);
        for (h, v) in trace.iter().zip(&out) {
            assert_eq!(*v, e.classify(h), "batch equals single at {h}");
        }
        assert_eq!(stats.hits, out.iter().filter(|v| v.is_hit()).count() as u64);
        assert_eq!(
            stats.mem_reads,
            out.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>(),
            "folded reads equal the per-verdict sums"
        );
    }

    #[test]
    fn merge_prefers_priority_then_global_id() {
        let hit = |rule: u32, prio: u32, reads: u32| Verdict {
            rule: Some(RuleId(rule)),
            priority: Some(Priority(prio)),
            action: Some(Action::Forward(rule as u16)),
            mem_reads: reads,
        };
        let mut m = Verdict::miss(2);
        ShardedEngine::merge(&mut m, &hit(9, 5, 3));
        assert_eq!(m.rule, Some(RuleId(9)));
        assert_eq!(m.mem_reads, 5);
        // Lower priority value wins...
        ShardedEngine::merge(&mut m, &hit(30, 1, 1));
        assert_eq!(m.rule, Some(RuleId(30)));
        // ...equal priority falls back to the lower global id...
        ShardedEngine::merge(&mut m, &hit(12, 1, 1));
        assert_eq!(m.rule, Some(RuleId(12)));
        // ...and a worse hit or miss changes nothing but the reads.
        ShardedEngine::merge(&mut m, &hit(50, 8, 1));
        ShardedEngine::merge(&mut m, &Verdict::miss(4));
        assert_eq!(m.rule, Some(RuleId(12)));
        assert_eq!(m.priority, Some(Priority(1)));
        assert_eq!(m.mem_reads, 12);
    }

    #[test]
    fn single_shard_skips_fanout_but_matches_semantics() {
        let mut one = sharded(12, 1);
        let mut four = sharded(12, 4);
        let trace: Vec<Header> = (0..40).map(|i| hdr(i % 14)).collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let sa = one.classify_batch(&trace, &mut a);
        let sb = four.classify_batch(&trace, &mut b);
        // Matches agree; mem_reads legitimately differ (every shard
        // scans its slice, so totals depend on the partition).
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.action, y.action);
        }
        assert_eq!(sa.packets, sb.packets);
        assert_eq!(sa.hits, sb.hits);
    }

    #[test]
    fn batch_on_empty_input_is_empty() {
        let mut e = sharded(8, 2);
        let mut out = vec![Verdict::miss(1)];
        let stats = e.classify_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, LookupStats::default());
    }

    #[test]
    fn memory_and_rules_aggregate() {
        let one = sharded(16, 1);
        let four = sharded(16, 4);
        assert_eq!(one.rules(), four.rules());
        // Four linear shards hold the same rules overall; per-shard
        // structures can only add overhead.
        assert!(four.memory_bits() >= one.memory_bits() / 2);
    }
}
