//! # spc-engine — one API for every packet classifier in the workspace
//!
//! The workspace grew two parallel classifier APIs: the configurable
//! architecture's `spc_core::Classifier::classify -> Classification` and
//! the comparison algorithms' `spc_baselines::Baseline::classify ->
//! BaselineResult`. Every harness, test and example had to glue them
//! together by hand. This crate is the glue, done once:
//!
//! * [`PacketClassifier`] — the unified trait: build-agnostic lookups
//!   ([`PacketClassifier::classify`]), an amortised batch path
//!   ([`PacketClassifier::classify_batch`]), memory/access
//!   instrumentation, and an incremental-update capability probe
//!   ([`PacketClassifier::supports_updates`] with
//!   [`PacketClassifier::insert`] / [`PacketClassifier::remove`]);
//! * [`Verdict`] / [`LookupStats`] — one result vocabulary replacing the
//!   `Classification` vs `BaselineResult` split;
//! * [`EngineKind`] — the registry of all backends (the paper's
//!   configurable architecture in both `IPalg_s` settings, the five
//!   Table I comparators, and the [`ShardedEngine`] partitioned
//!   multi-classifier);
//! * [`EngineBuilder`] — constructs any backend as
//!   `Box<dyn PacketClassifier>` from an [`EngineKind`] or a config
//!   string such as `"configurable-bst:rf_bits=14"`, enabling scenario
//!   sweeps from CLIs and benches;
//! * [`pipeline`] — the generalised ingest worker pool
//!   ([`IngestPipeline`]): any backend driven from a header stream
//!   through a bounded, backpressure-aware queue, over per-worker
//!   engine replicas or one shared `Arc` engine. The sharded backend's
//!   batch paths run on the same machinery
//!   ([`pipeline::broadcast_batch`] / [`pipeline::cascade_batch`]);
//! * [`cache`] — the flow verdict cache: [`CachedEngine`] wraps any
//!   backend with an exact-match microflow table plus an optional
//!   masked megaflow layer, kept coherent with incremental updates
//!   through the [`PacketClassifier::update_epoch`] /
//!   [`PacketClassifier::last_update_report`] contract;
//! * [`snapshot`] — snapshot-swap concurrent serving: [`SnapshotEngine`]
//!   publishes immutable rule-set snapshots that [`SnapshotReader`]s on
//!   other threads classify against lock-free while `insert`/`remove`
//!   rebuild and atomically publish the next version (per-shard rebuilds
//!   for `sharded:` inners);
//! * [`TupleSpaceEngine`] / [`SoftTcamEngine`] — the update-first
//!   backends of `spc-tuplespace` behind the same trait: tuple-space
//!   search (`"tss:tables=8"`) and a partitioned software TCAM
//!   (`"tcam:capacity=1048576,partitions=8"`), both with live
//!   incremental updates priced in §V.A write cycles;
//! * [`workload`] — engines driven from streaming
//!   [`spc_classbench::TraceSource`] workloads: classify-only streams
//!   (synthetic or pcap replay) through
//!   [`IngestPipeline::run_source`], mixed classify/update scenarios
//!   through [`run_scenario`].
//!
//! # Example
//!
//! ```
//! use spc_engine::{EngineBuilder, EngineKind};
//! use spc_types::{Action, Header, PortRange, Priority, ProtoSpec, Rule, RuleSet};
//!
//! let rules = RuleSet::from_rules(vec![Rule::builder(Priority(0))
//!     .dst_port(PortRange::exact(80))
//!     .proto(ProtoSpec::Exact(6))
//!     .action(Action::Forward(1))
//!     .build()]);
//! let mut engine = EngineBuilder::new(EngineKind::ConfigurableMbt)
//!     .build(&rules)
//!     .expect("rules fit the default provisioning");
//! let web = Header::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 999, 80, 6);
//! assert_eq!(engine.classify(&web).action, Some(Action::Forward(1)));
//!
//! // The same call works for every backend in the registry.
//! for kind in EngineKind::ALL {
//!     let e = EngineBuilder::new(kind).build(&rules).unwrap();
//!     assert!(e.classify(&web).is_hit(), "{kind}");
//! }
//! ```

mod baseline;
mod builder;
pub mod cache;
mod configurable;
mod kind;
mod optimized;
pub mod pipeline;
mod sharded;
pub mod snapshot;
mod tuple;
pub mod workload;

pub use baseline::BaselineEngine;
pub use builder::{build_engine, AuditPolicy, BuildError, EngineBuilder, OptimizePolicy};
pub use cache::{CacheStats, CachedEngine};
pub use configurable::ConfigurableEngine;
pub use kind::EngineKind;
pub use optimized::OptimizedEngine;
pub use pipeline::{
    BatchWorker, EngineSource, IngestConfig, IngestPipeline, PipelineError, SharedWorker,
};
pub use sharded::{InnerFactory, ShardedEngine};
pub use snapshot::{SnapshotEngine, SnapshotReader};
pub use tuple::{
    SoftTcamEngine, TupleSpaceEngine, DEFAULT_TCAM_CAPACITY, DEFAULT_TCAM_PARTITIONS,
    DEFAULT_TSS_TABLES,
};
pub use workload::{run_scenario, ScenarioReport, WorkloadError};
// Re-exported so callers can configure sharding without a spc-core dep.
pub use spc_core::shard::ShardStrategy;
// Re-exported so callers can read update-cost accounting
// ([`PacketClassifier::last_update_report`]) without a spc-core dep.
pub use spc_core::UpdateReport;

use spc_hwsim::AccessCounts;
use spc_types::{Action, Header, MaskSummary, Priority, Rule, RuleId};
use std::fmt;

/// What a hit matched: the rule's identity plus the per-dimension
/// wildcard summary of its filter — everything a flow cache needs to key
/// and invalidate cached verdicts without re-reading the rule set.
///
/// Produced by every backend on a hit ([`Verdict::matched`]); the mask
/// summary is derivable from the stored rule (the configurable
/// architecture reads it off `spc_core::Classifier::rule_filter()`
/// entries via [`MaskSummary::of_rule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchHandle {
    /// The matched rule's id.
    pub id: RuleId,
    /// The matched rule's priority.
    pub priority: Priority,
    /// Per-dimension care masks of the matched rule's filter.
    pub mask_summary: MaskSummary,
}

/// The outcome of classifying one header, common to every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// The Highest Priority Matching Rule, or `None` on a miss.
    ///
    /// Deprecated-style shim: prefer [`Verdict::matched`], which carries
    /// the full [`MatchHandle`]. The bare field stays so existing
    /// examples and harnesses keep compiling, and constructors keep it
    /// consistent with `matched`.
    pub rule: Option<RuleId>,
    /// Priority of the matched rule (shim; prefer [`Verdict::matched`]).
    pub priority: Option<Priority>,
    /// Action of the matched rule.
    pub action: Option<Action>,
    /// The full match handle behind `rule`/`priority`: id, priority and
    /// the rule's per-dimension wildcard summary.
    pub matched: Option<MatchHandle>,
    /// Memory words this lookup read in the backend's hardware model.
    pub mem_reads: u32,
}

impl Verdict {
    /// A miss that still cost `mem_reads` accesses.
    pub fn miss(mem_reads: u32) -> Self {
        Verdict {
            rule: None,
            priority: None,
            action: None,
            matched: None,
            mem_reads,
        }
    }

    /// A hit, with the shim fields (`rule`, `priority`) and the
    /// [`MatchHandle`] filled consistently from one source — backends
    /// should build hits through this constructor so the pair can never
    /// diverge.
    pub fn hit(handle: MatchHandle, action: Action, mem_reads: u32) -> Self {
        Verdict {
            rule: Some(handle.id),
            priority: Some(handle.priority),
            action: Some(action),
            matched: Some(handle),
            mem_reads,
        }
    }

    /// Whether a rule matched.
    pub fn is_hit(&self) -> bool {
        self.rule.is_some()
    }

    /// The match handle of a hit — rule id, priority and the rule's
    /// per-dimension wildcard summary ([`None`] on a miss). This is the
    /// accessor new code should use instead of the bare
    /// `rule`/`priority` fields.
    pub fn matched(&self) -> Option<MatchHandle> {
        self.matched
    }

    /// Folds `reads` more memory reads into this verdict, saturating.
    ///
    /// Every merge/cascade path accumulates reads through this one
    /// helper so overflow behaviour is uniform with [`LookupStats`]:
    /// counters peg at the maximum instead of aborting a run (debug
    /// builds panic on bare `+` overflow).
    pub fn add_reads(&mut self, reads: u32) {
        self.mem_reads = self.mem_reads.saturating_add(reads);
    }
}

/// Aggregate accounting over a batch of lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupStats {
    /// Headers classified.
    pub packets: u64,
    /// Headers that matched a rule.
    pub hits: u64,
    /// Total memory words read.
    pub mem_reads: u64,
    /// Rule Filter combinations probed (configurable architecture only;
    /// equals `packets` on the single-probe fast path, 0 for baselines).
    pub combos_probed: u64,
    /// Lookups served from a flow cache ([`CachedEngine`]; 0 elsewhere).
    pub cache_hits: u64,
    /// Lookups that fell through a flow cache to the inner engine
    /// ([`CachedEngine`]; 0 elsewhere).
    pub cache_misses: u64,
}

impl LookupStats {
    /// Folds one verdict into the totals.
    ///
    /// Saturating, like every stats fold in this crate: a pegged
    /// counter is a measurement artefact, an aborted run is lost work.
    pub fn absorb(&mut self, v: &Verdict) {
        self.packets = self.packets.saturating_add(1);
        self.hits = self.hits.saturating_add(u64::from(v.is_hit()));
        self.mem_reads = self.mem_reads.saturating_add(u64::from(v.mem_reads));
    }

    /// Mean memory reads per packet.
    pub fn avg_mem_reads(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.mem_reads as f64 / self.packets as f64
        }
    }

    /// Fraction of packets that hit a rule.
    pub fn hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hits as f64 / self.packets as f64
        }
    }

    /// Fraction of lookups served from a flow cache (0 when no cache is
    /// in the path).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

impl std::ops::Add for LookupStats {
    type Output = LookupStats;
    /// Saturating per field, matching [`LookupStats::absorb`] — the two
    /// fold paths (per-verdict and per-chunk) must agree on overflow.
    fn add(self, rhs: LookupStats) -> LookupStats {
        LookupStats {
            packets: self.packets.saturating_add(rhs.packets),
            hits: self.hits.saturating_add(rhs.hits),
            mem_reads: self.mem_reads.saturating_add(rhs.mem_reads),
            combos_probed: self.combos_probed.saturating_add(rhs.combos_probed),
            cache_hits: self.cache_hits.saturating_add(rhs.cache_hits),
            cache_misses: self.cache_misses.saturating_add(rhs.cache_misses),
        }
    }
}

/// Error from the incremental-update path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UpdateError {
    /// The backend is build-once: it must be reconstructed via
    /// [`EngineBuilder`] to change its rule set.
    Unsupported {
        /// The engine's display name.
        engine: &'static str,
    },
    /// A rule identical in every dimension is already installed —
    /// harmless to skip during bulk churn, unlike [`UpdateError::Rejected`].
    Duplicate {
        /// The already-installed rule.
        existing: RuleId,
    },
    /// The backend rejected the update (capacity, rule filter full, ...).
    Rejected {
        /// Backend-specific reason.
        reason: String,
    },
    /// No rule with this id is installed.
    UnknownRule {
        /// The offending id.
        id: RuleId,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Unsupported { engine } => {
                write!(
                    f,
                    "{engine} does not support incremental updates; rebuild it"
                )
            }
            UpdateError::Duplicate { existing } => {
                write!(f, "identical rule already installed as {existing}")
            }
            UpdateError::Rejected { reason } => write!(f, "update rejected: {reason}"),
            UpdateError::UnknownRule { id } => write!(f, "unknown rule {id}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// One packet-classification engine, whatever its algorithm.
///
/// Backends are constructed by [`EngineBuilder`] and consumed as
/// `Box<dyn PacketClassifier>`; harnesses, tests and examples never need
/// to know which algorithm is behind the box. See the crate docs for the
/// design rationale and `docs/engine_design.md` for how to add a backend.
///
/// Engines are `Send + Sync`: lookups take `&self` and all hardware-model
/// access counters are atomic, so a built engine can serve concurrent
/// readers — `Arc<dyn PacketClassifier>` behind
/// [`pipeline::IngestPipeline`]'s shared mode relies on exactly this.
/// Only the `&mut self` paths (batch scratch reuse, incremental updates)
/// need exclusive access.
///
/// # Example
///
/// ```
/// use spc_engine::{build_engine, PacketClassifier};
/// use spc_types::{Header, Priority, Rule, RuleSet};
///
/// let rules = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// let mut engine = build_engine("configurable-mbt", &rules).unwrap();
/// let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 9, 80, 6);
/// // Single-shot lookups share `&self`; the batch path amortises scratch.
/// assert!(engine.classify(&h).is_hit());
/// let mut verdicts = Vec::new();
/// let stats = engine.classify_batch(&[h; 10], &mut verdicts);
/// assert_eq!(stats.hits, 10);
/// ```
pub trait PacketClassifier: fmt::Debug + Send + Sync {
    /// Which registry entry this engine is.
    fn kind(&self) -> EngineKind;

    /// Display name (matches the paper's table rows where applicable).
    fn name(&self) -> &'static str;

    /// Installed rule count.
    fn rules(&self) -> usize;

    /// Classifies one header.
    fn classify(&self, header: &Header) -> Verdict;

    /// Classifies a batch, appending one [`Verdict`] per header to `out`
    /// (which is cleared first) and returning aggregate accounting.
    ///
    /// The default implementation loops over [`PacketClassifier::classify`];
    /// backends with per-lookup working memory override it to reuse
    /// scratch buffers across the batch (see [`ConfigurableEngine`]).
    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        out.reserve(headers.len());
        let mut stats = LookupStats::default();
        for h in headers {
            let v = self.classify(h);
            stats.absorb(&v);
            out.push(v);
        }
        stats
    }

    /// Bits of memory the structure occupies in the hardware model.
    fn memory_bits(&self) -> u64;

    /// Cumulative structural memory access counters, where the backend
    /// models them (the configurable architecture); zeros otherwise —
    /// per-lookup costs are always available via [`Verdict::mem_reads`].
    fn access_counts(&self) -> AccessCounts {
        AccessCounts::default()
    }

    /// Resets [`PacketClassifier::access_counts`].
    fn reset_access_counts(&self) {}

    /// Whether [`PacketClassifier::insert`] / [`PacketClassifier::remove`]
    /// are live paths (the paper's §V.A fast incremental update) rather
    /// than [`UpdateError::Unsupported`].
    fn supports_updates(&self) -> bool {
        false
    }

    /// Installs one rule incrementally.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Unsupported`] for build-once backends;
    /// [`UpdateError::Duplicate`] for an already-installed 5-tuple;
    /// [`UpdateError::Rejected`] on capacity.
    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        let _ = rule;
        Err(UpdateError::Unsupported {
            engine: self.name(),
        })
    }

    /// Removes one rule incrementally.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Unsupported`] for build-once backends;
    /// [`UpdateError::UnknownRule`] for an id that is not installed.
    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let _ = id;
        Err(UpdateError::Unsupported {
            engine: self.name(),
        })
    }

    /// The §V.A cost accounting of the most recent *successful*
    /// [`PacketClassifier::insert`] / [`PacketClassifier::remove`]:
    /// hardware write cycles (the paper's 2 data cycles + 1 hash cycle
    /// floor plus structural writes) and labels created/freed.
    ///
    /// `None` before the first successful update and on build-once
    /// backends. A *failed* insert/remove leaves the previous report in
    /// place — the report and [`PacketClassifier::update_epoch`] move
    /// together, so a reader that saw the epoch advance can always fetch
    /// the report that advanced it.
    fn last_update_report(&self) -> Option<UpdateReport> {
        None
    }

    /// Monotonic update-generation counter.
    ///
    /// **Contract:** the epoch starts at 0 and bumps by exactly one iff
    /// [`PacketClassifier::last_update_report`] is replaced — that is,
    /// only on a *successful* [`PacketClassifier::insert`] /
    /// [`PacketClassifier::remove`]. Failed updates change neither. A
    /// cache layered in front of the engine ([`CachedEngine`]) compares
    /// the epoch it last synchronised with against this value: equal
    /// means every cached verdict is still current; a mismatch means the
    /// rule set changed underneath it and cached entries whose matched
    /// rule appears in the report must be dropped (full flush as the
    /// fallback when the delta cannot be attributed).
    ///
    /// Build-once backends never update, so the default (constant 0) is
    /// correct for them.
    fn update_epoch(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_constructors() {
        let m = Verdict::miss(7);
        assert!(!m.is_hit());
        assert_eq!(m.mem_reads, 7);
        assert_eq!(m.matched(), None);

        let handle = MatchHandle {
            id: RuleId(4),
            priority: Priority(2),
            mask_summary: MaskSummary::NONE,
        };
        let h = Verdict::hit(handle, Action::Drop, 3);
        assert!(h.is_hit());
        // The shim fields can never diverge from the handle.
        assert_eq!(h.rule, Some(RuleId(4)));
        assert_eq!(h.priority, Some(Priority(2)));
        assert_eq!(h.matched(), Some(handle));
    }

    #[test]
    fn stats_absorb_and_add() {
        let mut s = LookupStats::default();
        s.absorb(&Verdict::miss(10));
        s.absorb(&Verdict::hit(
            MatchHandle {
                id: RuleId(0),
                priority: Priority(1),
                mask_summary: MaskSummary::NONE,
            },
            Action::Drop,
            6,
        ));
        assert_eq!(s.packets, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.mem_reads, 16);
        assert!((s.avg_mem_reads() - 8.0).abs() < 1e-12);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        let t = s + s;
        assert_eq!(t.packets, 4);
        assert_eq!(t.mem_reads, 32);
    }

    #[test]
    fn empty_stats_safe() {
        let s = LookupStats::default();
        assert_eq!(s.avg_mem_reads(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn update_error_display() {
        assert!(UpdateError::Unsupported { engine: "RFC" }
            .to_string()
            .contains("RFC"));
        assert!(UpdateError::UnknownRule { id: RuleId(3) }
            .to_string()
            .contains('3'));
        assert!(UpdateError::Rejected {
            reason: "full".into()
        }
        .to_string()
        .contains("full"));
        assert!(UpdateError::Duplicate {
            existing: RuleId(7)
        }
        .to_string()
        .contains("r7"));
    }
}
