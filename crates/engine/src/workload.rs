//! Driving engines from streaming workloads ([`TraceSource`]).
//!
//! `spc-classbench` defines *what* a workload is — a stream of header
//! chunks, optionally interleaved with rule insert/remove events. This
//! module defines how engines consume one:
//!
//! * [`IngestPipeline::feed_from`] / [`IngestPipeline::run_source`] —
//!   classify-only streams (synthetic, pcap replay) through the
//!   bounded-queue worker pool, chunk by chunk, so a lazy or
//!   file-backed source never has to materialise and the pool's
//!   backpressure reaches all the way back to the source;
//! * [`run_scenario`] — mixed classify/update scenarios (e.g. a
//!   [`spc_classbench::ScenarioScript`]) against a single engine,
//!   owning the insert-index → [`RuleId`] mapping and folding the §V.A
//!   update cost accounting into a [`ScenarioReport`].
//!
//! # Example
//!
//! ```
//! use spc_classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceGenerator};
//! use spc_engine::{build_engine, run_scenario};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let base = RuleSetGenerator::new(FilterKind::Acl, 200).seed(1).generate();
//! let pool = RuleSetGenerator::new(FilterKind::Fw, 32).seed(2).generate();
//! let mut engine = build_engine("configurable-bst", &base)?;
//!
//! let script = ScenarioScript::parse("repeat 3 { insert 8; classify 200; remove 4 }")?;
//! let mut source = script.source(&TraceGenerator::new().seed(7), &base, pool.rules())?;
//! let mut verdicts = Vec::new();
//! let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts)?;
//! assert_eq!(report.lookup.packets, 600);
//! assert_eq!(report.inserts + report.duplicates, 24);
//! assert_eq!(report.live_inserts.len() as u64, report.inserts - report.removes);
//! # Ok(())
//! # }
//! ```

use crate::pipeline::IngestPipeline;
use crate::{LookupStats, PacketClassifier, UpdateError, Verdict};
use spc_classbench::{TraceError, TraceEvent, TraceSource};
use spc_types::{Rule, RuleId};
use std::fmt;

/// Error from driving an engine with a [`TraceSource`].
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The source itself failed (malformed pcap, update event on a
    /// classify-only path).
    Source(TraceError),
    /// The engine rejected an update event (capacity, unsupported
    /// backend, unknown rule). Duplicates are *not* errors — the runner
    /// records and skips them.
    Update(UpdateError),
    /// The source emitted a [`TraceEvent::Remove`] whose insert index it
    /// never emitted — a broken source, not a broken engine.
    BadRemove {
        /// The offending insert index.
        insert: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Source(e) => write!(f, "workload source failed: {e}"),
            WorkloadError::Update(e) => write!(f, "workload update rejected: {e}"),
            WorkloadError::BadRemove { insert } => write!(
                f,
                "workload source removed insert #{insert}, which it never emitted"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Source(e) => Some(e),
            WorkloadError::Update(e) => Some(e),
            WorkloadError::BadRemove { .. } => None,
        }
    }
}

impl From<TraceError> for WorkloadError {
    fn from(e: TraceError) -> Self {
        WorkloadError::Source(e)
    }
}

/// What a [`run_scenario`] pass did, with the paper's §V.A update cost
/// accounting folded in.
#[derive(Debug, Clone, Default)]
pub struct ScenarioReport {
    /// Aggregate lookup accounting over every classify chunk.
    pub lookup: LookupStats,
    /// Rules successfully installed.
    pub inserts: u64,
    /// Insert events skipped because the engine reported the rule as an
    /// exact duplicate of a live one.
    pub duplicates: u64,
    /// Rules successfully removed again.
    pub removes: u64,
    /// Remove events skipped because their insert was itself skipped as
    /// a duplicate (or already removed).
    pub skipped_removes: u64,
    /// Hardware write cycles across all successful inserts (§V.A).
    pub insert_cycles: u64,
    /// Hardware write cycles across all successful removes (§V.A).
    pub remove_cycles: u64,
    /// Labels newly created by inserts (zero on engines that do not
    /// report updates).
    pub created_labels: u64,
    /// Labels freed by removes.
    pub freed_labels: u64,
    /// The surviving installs in insertion order: the engine-assigned id
    /// and the rule — exactly what a differential oracle needs to
    /// rebuild the post-churn rule set.
    pub live_inserts: Vec<(RuleId, Rule)>,
}

impl ScenarioReport {
    /// Successful update operations (inserts + removes).
    pub fn update_ops(&self) -> u64 {
        self.inserts + self.removes
    }

    /// Hardware write cycles across all successful updates.
    pub fn update_cycles(&self) -> u64 {
        self.insert_cycles + self.remove_cycles
    }
}

/// Drives one engine through a mixed classify/update workload,
/// sequentially and in stream order: header chunks go through the
/// amortised [`PacketClassifier::classify_batch`] (verdicts appended to
/// `verdicts`), insert events through [`PacketClassifier::insert`] with
/// the engine-assigned [`RuleId`]s recorded, and remove events resolve
/// the source's insert index through that record. Duplicate inserts —
/// and removes of inserts that were skipped as duplicates — are counted
/// and skipped, so churn pools may overlap the installed rules.
///
/// # Errors
///
/// [`WorkloadError::Source`] when the source fails,
/// [`WorkloadError::Update`] when the engine rejects an update for any
/// reason but duplication (including [`UpdateError::Unsupported`] from a
/// build-once backend), and [`WorkloadError::BadRemove`] for a remove of
/// an insert the source never emitted.
pub fn run_scenario(
    engine: &mut dyn PacketClassifier,
    source: &mut dyn TraceSource,
    verdicts: &mut Vec<Verdict>,
) -> Result<ScenarioReport, WorkloadError> {
    let mut report = ScenarioReport::default();
    // Engine-assigned ids by the source's insert-event index; `None`
    // marks duplicates and already-removed entries.
    let mut installed: Vec<Option<(RuleId, Rule)>> = Vec::new();
    let mut chunk_verdicts = Vec::new();
    while let Some(event) = source.next_event()? {
        match event {
            TraceEvent::Headers(headers) => {
                let stats = engine.classify_batch(&headers, &mut chunk_verdicts);
                report.lookup = report.lookup + stats;
                verdicts.extend_from_slice(&chunk_verdicts);
            }
            TraceEvent::Insert(rule) => match engine.insert(rule) {
                Ok(id) => {
                    report.inserts += 1;
                    if let Some(update) = engine.last_update_report() {
                        report.insert_cycles += update.hw_write_cycles;
                        report.created_labels += u64::from(update.created_labels);
                    }
                    installed.push(Some((id, rule)));
                }
                Err(UpdateError::Duplicate { .. }) => {
                    report.duplicates += 1;
                    installed.push(None);
                }
                Err(e) => return Err(WorkloadError::Update(e)),
            },
            TraceEvent::Remove { insert } => {
                let slot = installed
                    .get_mut(insert)
                    .ok_or(WorkloadError::BadRemove { insert })?;
                match slot.take() {
                    Some((id, _)) => {
                        engine.remove(id).map_err(WorkloadError::Update)?;
                        report.removes += 1;
                        if let Some(update) = engine.last_update_report() {
                            report.remove_cycles += update.hw_write_cycles;
                            report.freed_labels += u64::from(update.freed_labels);
                        }
                    }
                    None => report.skipped_removes += 1,
                }
            }
        }
    }
    report.live_inserts = installed.into_iter().flatten().collect();
    Ok(report)
}

impl IngestPipeline {
    /// Feeds every header chunk of a classify-only source into the
    /// pool's bounded queue, returning how many headers were fed. Chunks
    /// are re-cut to the pipeline's configured chunk size, and each
    /// source chunk is enqueued before the next one is pulled — so the
    /// queue's backpressure propagates to the source and a lazy or
    /// file-backed source streams without materialising.
    ///
    /// Call [`IngestPipeline::drain`] to collect the verdicts, or use
    /// [`IngestPipeline::run_source`] for the one-shot pairing.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Source`] when the source fails mid-stream, or —
    /// wrapping [`TraceError::UnexpectedUpdate`] — when it emits an
    /// update event: the pool's workers hold replicas or a shared
    /// read-only engine, so there is no single engine an update could
    /// consistently apply to (drive mixed scenarios through
    /// [`run_scenario`] instead). Chunks fed before the error stay in
    /// flight; drain them before reusing the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if every worker died (as [`IngestPipeline::feed`]).
    pub fn feed_from(&mut self, source: &mut dyn TraceSource) -> Result<u64, WorkloadError> {
        let mut fed = 0u64;
        while let Some(event) = source.next_event()? {
            match event {
                TraceEvent::Headers(headers) => {
                    self.feed(&headers);
                    fed += headers.len() as u64;
                }
                TraceEvent::Insert(_) | TraceEvent::Remove { .. } => {
                    return Err(WorkloadError::Source(TraceError::UnexpectedUpdate))
                }
            }
        }
        Ok(fed)
    }

    /// One-shot: streams a classify-only source through the pool and
    /// drains every verdict into `out` (cleared first) in stream order —
    /// the [`TraceSource`] analogue of [`IngestPipeline::run_batch`].
    ///
    /// # Errors
    ///
    /// As [`IngestPipeline::feed_from`]. On error the already-fed chunks
    /// are drained into `out` first, so the pipeline is left idle and
    /// reusable.
    ///
    /// # Panics
    ///
    /// Panics if chunks from an earlier [`IngestPipeline::feed`] are
    /// still in flight, or if a worker died.
    pub fn run_source(
        &mut self,
        source: &mut dyn TraceSource,
        out: &mut Vec<Verdict>,
    ) -> Result<LookupStats, WorkloadError> {
        assert_eq!(
            self.in_flight(),
            0,
            "drain() the fed stream before run_source()"
        );
        out.clear();
        match self.feed_from(source) {
            Ok(_) => Ok(self.drain(out)),
            Err(e) => {
                self.drain(out);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{EngineSource, IngestConfig};
    use crate::{build_engine, EngineBuilder};
    use spc_classbench::{FilterKind, RuleSetGenerator, ScenarioScript, TraceGenerator};
    use spc_types::RuleSet;

    fn workload() -> (RuleSet, RuleSet, TraceGenerator) {
        (
            RuleSetGenerator::new(FilterKind::Acl, 150)
                .seed(3)
                .generate(),
            RuleSetGenerator::new(FilterKind::Fw, 40).seed(4).generate(),
            TraceGenerator::new().seed(9).match_fraction(0.8),
        )
    }

    fn pipe(rules: &RuleSet, workers: usize) -> IngestPipeline {
        let source =
            EngineSource::replicated(&EngineBuilder::from_spec("linear").unwrap(), rules, workers)
                .unwrap();
        IngestPipeline::spawn(
            source,
            IngestConfig {
                workers,
                queue_chunks: 2,
                chunk: 37,
            },
        )
        .unwrap()
    }

    #[test]
    fn run_source_equals_run_batch() {
        let (rules, _, traffic) = workload();
        let trace = traffic.generate(&rules, 400);
        let mut pipe = pipe(&rules, 3);
        let (mut want, mut got) = (Vec::new(), Vec::new());
        let batch_stats = pipe.run_batch(&trace, &mut want);
        let mut source = traffic.stream(&rules, 400).with_chunk(55);
        let stream_stats = pipe.run_source(&mut source, &mut got).unwrap();
        assert_eq!(got, want);
        assert_eq!(stream_stats, batch_stats);
    }

    #[test]
    fn feed_from_rejects_update_events_and_stays_usable() {
        let (rules, pool, traffic) = workload();
        let script = ScenarioScript::parse("classify 100; insert 1").unwrap();
        let mut source = script.source(&traffic, &rules, pool.rules()).unwrap();
        let mut pipe = pipe(&rules, 2);
        let mut out = Vec::new();
        let err = pipe.run_source(&mut source, &mut out).unwrap_err();
        assert!(
            matches!(err, WorkloadError::Source(TraceError::UnexpectedUpdate)),
            "{err}"
        );
        // The headers fed before the update event were drained...
        assert_eq!(out.len(), 100);
        assert_eq!(pipe.in_flight(), 0);
        // ...and the pool still serves classify-only streams.
        let mut source = traffic.stream(&rules, 64);
        let stats = pipe.run_source(&mut source, &mut out).unwrap();
        assert_eq!(stats.packets, 64);
    }

    #[test]
    fn scenario_on_a_build_once_backend_is_an_update_error() {
        let (rules, pool, traffic) = workload();
        let mut engine = build_engine("linear", &rules).unwrap();
        let script = ScenarioScript::parse("insert 1").unwrap();
        let mut source = script.source(&traffic, &rules, pool.rules()).unwrap();
        let err = run_scenario(engine.as_mut(), &mut source, &mut Vec::new()).unwrap_err();
        assert!(
            matches!(err, WorkloadError::Update(UpdateError::Unsupported { .. })),
            "{err}"
        );
    }

    #[test]
    fn scenario_classify_only_equals_classify_batch() {
        let (rules, _, traffic) = workload();
        let mut engine = build_engine("configurable-bst", &rules).unwrap();
        let trace = traffic.generate(&rules, 300);
        let mut want = Vec::new();
        let want_stats = engine.classify_batch(&trace, &mut want);

        let script = ScenarioScript::parse("classify 300").unwrap();
        let mut source = script.source(&traffic, &rules, &[]).unwrap().with_chunk(77);
        let mut engine = build_engine("configurable-bst", &rules).unwrap();
        let mut got = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut got).unwrap();
        assert_eq!(got, want);
        assert_eq!(report.lookup, want_stats);
        assert_eq!(report.update_ops(), 0);
        assert!(report.live_inserts.is_empty());
    }

    #[test]
    fn scenario_churn_accounting_adds_up() {
        let (rules, pool, traffic) = workload();
        let mut engine = build_engine("configurable-bst", &rules).unwrap();
        let before = engine.rules();
        let script = ScenarioScript::parse("repeat 4 { insert 6; classify 50; remove 3 }").unwrap();
        let mut source = script.source(&traffic, &rules, pool.rules()).unwrap();
        let mut verdicts = Vec::new();
        let report = run_scenario(engine.as_mut(), &mut source, &mut verdicts).unwrap();
        assert_eq!(verdicts.len(), 200);
        assert_eq!(report.lookup.packets, 200);
        assert_eq!(report.inserts + report.duplicates, 24);
        assert_eq!(report.removes + report.skipped_removes, 12);
        assert_eq!(
            report.live_inserts.len() as u64,
            report.inserts - report.removes
        );
        assert_eq!(
            engine.rules() as u64,
            before as u64 + report.inserts - report.removes
        );
        // The §V.A floor: 3 write cycles per successful update.
        assert!(report.insert_cycles >= 3 * report.inserts);
        assert!(report.update_cycles() >= 3 * report.update_ops());
        // Surviving ids really are live: removing one works.
        if let Some(&(id, _)) = report.live_inserts.first() {
            engine.remove(id).unwrap();
        }
    }

    #[test]
    fn bad_remove_is_typed() {
        /// A source that removes an insert it never emitted.
        struct Broken(bool);
        impl TraceSource for Broken {
            fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
                if self.0 {
                    return Ok(None);
                }
                self.0 = true;
                Ok(Some(TraceEvent::Remove { insert: 7 }))
            }
        }
        let (rules, ..) = workload();
        let mut engine = build_engine("configurable-bst", &rules).unwrap();
        let err = run_scenario(engine.as_mut(), &mut Broken(false), &mut Vec::new()).unwrap_err();
        assert!(
            matches!(err, WorkloadError::BadRemove { insert: 7 }),
            "{err}"
        );
    }

    #[test]
    fn workload_error_display_and_source() {
        use std::error::Error;
        let e = WorkloadError::from(TraceError::UnexpectedUpdate);
        assert!(e.to_string().contains("source"));
        assert!(e.source().is_some());
        let e = WorkloadError::Update(UpdateError::UnknownRule {
            id: spc_types::RuleId(3),
        });
        assert!(e.to_string().contains("update"));
        assert!(e.source().is_some());
        let e = WorkloadError::BadRemove { insert: 2 };
        assert!(e.to_string().contains("#2"));
        assert!(e.source().is_none());
    }
}
