//! The flow verdict cache: a microflow/megaflow layer in front of any
//! inner [`PacketClassifier`].
//!
//! Real SDN traffic has heavy flow locality, yet the paper's architecture
//! pays the full two-phase lookup (seven segment engines + Rule Filter
//! hash) for every packet. [`CachedEngine`] is the OVS-style answer: an
//! exact-match 5-tuple **microflow** table answers repeats of a header in
//! one probe, and an optional **megaflow** layer answers whole *masked
//! flow classes* — headers that no installed rule can tell apart.
//!
//! # The two layers
//!
//! * **Microflow** — keyed by the full [`Header`]. Open-addressed,
//!   power-of-two slots, bounded linear probe window, clock
//!   (second-chance) eviction. A hit returns the cached verdict with
//!   `mem_reads = 1` (one wide cache-line read in the hardware model).
//! * **Megaflow** — keyed by the header's seven query values masked by
//!   the *fold mask*: the OR of every installed rule's
//!   [`MaskSummary`]. Because the fold covers each rule's own summary,
//!   two headers with equal masked queries match exactly the same rules
//!   — so one entry serves every header in the class, including misses.
//!   (Keying by only the *matched* rule's mask would be unsound: a
//!   lower-priority rule narrower than the match could distinguish two
//!   headers the matched rule cannot. See `docs/flow_cache.md`.)
//!
//! # Coherence under churn
//!
//! All updates flow *through* the wrapper (it owns the inner engine), so
//! invalidation is wrapper-mediated and targeted:
//!
//! * `remove(id)` — drop cached entries whose matched rule is `id`.
//!   Misses stay valid: removing a rule can never turn a miss into a hit.
//! * `insert(rule)` — drop microflow entries the new rule matches. If
//!   the fold mask tightened, every megaflow key is stale: full megaflow
//!   flush; otherwise drop only megaflow classes the new rule can match.
//!
//! As a defensive fallback the wrapper also snapshots the inner engine's
//! [`PacketClassifier::update_epoch`] after each synchronisation; if a
//! lookup ever observes a different epoch (an out-of-band update through
//! [`CachedEngine::inner_mut`]), the whole cache is flushed before
//! serving — stale verdicts are never returned.
//!
//! # Concurrency of the `&self` classify path
//!
//! [`PacketClassifier::classify`] takes `&self`, so one `CachedEngine`
//! can be shared behind an `Arc` across reader threads. The flow table
//! lives behind one [`Mutex`]: a lookup takes the lock to probe, and on
//! a miss *releases it* before the inner-engine classify, re-locking
//! only to install the result — the expensive work never runs under the
//! lock, and concurrent installs of the same flow are benign
//! last-writer-wins races (both writers hold equal verdicts for the
//! same rule-set version, because updates require `&mut self` and so
//! cannot overlap any `&self` lookup). The concurrency-oracle tier
//! (`tests/flow_cache.rs` concurrent stress, `tests/snapshot_consistency.rs`)
//! exercises exactly these interleavings. For serving that stays
//! lock-free *during* churn, wrap the engine in
//! [`crate::SnapshotEngine`] (`snapshot:inner=cached:...` — each
//! published version carries a cold cache; `cached:inner=(snapshot:...)`
//! keeps one warm cache in front of the swap instead; see
//! `docs/concurrency.md` for the trade-off).

use crate::{EngineKind, LookupStats, PacketClassifier, UpdateError, UpdateReport, Verdict};
use spc_hwsim::AccessCounts;
use spc_types::{Header, MaskSummary, Rule, RuleId, ALL_DIMS};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded linear-probe window: a key lives within this many slots of
/// its home position or not at all.
const PROBE_WINDOW: usize = 8;

/// One cached flow: key, verdict, and the matched rule (if any) for
/// targeted invalidation, plus the clock reference bit.
#[derive(Debug, Clone, Copy)]
struct Entry<K> {
    key: K,
    verdict: Verdict,
    referenced: bool,
}

/// An open-addressed, power-of-two flow table with clock eviction.
///
/// Generic over the key so the microflow layer ([`Header`] keys) and the
/// megaflow layer (masked-query `[u16; 7]` keys) share one
/// implementation.
#[derive(Debug)]
struct FlowTable<K> {
    slots: Vec<Option<Entry<K>>>,
    /// `slots.len() - 1`; capacity is a power of two.
    mask: usize,
    len: usize,
}

impl<K: Hash + Eq + Copy> FlowTable<K> {
    fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(PROBE_WINDOW);
        FlowTable {
            slots: vec![None; capacity],
            mask: capacity - 1,
            len: 0,
        }
    }

    fn home(&self, key: &K) -> usize {
        // DefaultHasher is deterministic for a fixed key within one
        // process — exactly what a lookup table needs; no DoS surface
        // since keys come from the local workload, not an adversary.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Probes for `key`; on a hit sets the reference bit and returns the
    /// cached verdict.
    fn get(&mut self, key: &K) -> Option<Verdict> {
        let home = self.home(key);
        for i in 0..PROBE_WINDOW {
            let slot = (home + i) & self.mask;
            if let Some(e) = &mut self.slots[slot] {
                if e.key == *key {
                    e.referenced = true;
                    return Some(e.verdict);
                }
            }
        }
        None
    }

    /// Installs (or refreshes) `key -> verdict`. Returns `true` when an
    /// unrelated entry was evicted to make room.
    fn insert(&mut self, key: K, verdict: Verdict) -> bool {
        let home = self.home(&key);
        // First pass: refresh an existing entry or take a free slot.
        for i in 0..PROBE_WINDOW {
            let slot = (home + i) & self.mask;
            match &mut self.slots[slot] {
                Some(e) if e.key == key => {
                    e.verdict = verdict;
                    e.referenced = true;
                    return false;
                }
                None => {
                    self.slots[slot] = Some(Entry {
                        key,
                        verdict,
                        referenced: true,
                    });
                    self.len += 1;
                    return false;
                }
                Some(_) => {}
            }
        }
        // Window full: clock eviction — clear reference bits while
        // scanning, evict the first unreferenced entry (second chance),
        // falling back to the home slot if every entry was hot.
        let mut victim = home;
        for i in 0..PROBE_WINDOW {
            let slot = (home + i) & self.mask;
            match &mut self.slots[slot] {
                // Unreachable (the first pass would have taken a free
                // slot), but a free slot is also the perfect victim.
                None => {
                    victim = slot;
                    break;
                }
                Some(e) if e.referenced => e.referenced = false,
                Some(_) => {
                    victim = slot;
                    break;
                }
            }
        }
        self.slots[victim] = Some(Entry {
            key,
            verdict,
            referenced: true,
        });
        true
    }

    /// Drops every entry `pred` selects; returns how many were dropped.
    fn retain_not(&mut self, mut pred: impl FnMut(&K, &Verdict) -> bool) -> u64 {
        let mut dropped = 0;
        for slot in &mut self.slots {
            if let Some(e) = slot {
                if pred(&e.key, &e.verdict) {
                    *slot = None;
                    self.len -= 1;
                    dropped += 1;
                }
            }
        }
        dropped
    }

    fn clear(&mut self) {
        if self.len > 0 {
            self.slots.iter_mut().for_each(|s| *s = None);
            self.len = 0;
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// The mutable cache state behind the wrapper's lock: both layers plus
/// the fold mask the megaflow keys were computed under.
#[derive(Debug)]
struct CacheState {
    micro: FlowTable<Header>,
    mega: Option<FlowTable<[u16; 7]>>,
    /// OR of every installed rule's [`MaskSummary`] — the megaflow key
    /// mask. Kept *covering* (never shrunk on remove): a too-wide fold
    /// only splits classes finer, which stays sound.
    fold: MaskSummary,
}

impl CacheState {
    /// Drops both layers and widens the fold to all-care (without the
    /// rule list the fold cannot be recomputed; all-care classes are
    /// finer, which stays sound).
    fn flush(&mut self) {
        self.micro.clear();
        if let Some(mega) = &mut self.mega {
            mega.clear();
        }
        self.fold = MaskSummary {
            masks: [u16::MAX; 7],
        };
    }

    /// Targeted invalidation after a successful `insert` through the
    /// wrapper. Returns `(entries dropped, megaflow flushed)`.
    fn invalidate_for_insert(&mut self, rule: &Rule) -> (u64, bool) {
        // Microflow: the new rule can only change verdicts of headers
        // it matches.
        let mut dropped = self.micro.retain_not(|h, _| rule.matches(h));
        let mut flushed = false;
        let new_fold = self.fold.or(MaskSummary::of_rule(rule));
        if let Some(mega) = &mut self.mega {
            if new_fold == self.fold {
                // Fold unchanged: keys stay valid; drop only the masked
                // classes the new rule can match. Exact because the
                // rule's own mask is covered by the fold.
                dropped += mega.retain_not(|key, _| {
                    ALL_DIMS
                        .iter()
                        .enumerate()
                        .all(|(i, d)| rule.dim_value(*d).matches(key[i]))
                });
            } else {
                // Fold tightened: every megaflow key was computed under
                // a narrower mask — all stale.
                mega.clear();
                flushed = true;
            }
        }
        self.fold = new_fold;
        (dropped, flushed)
    }

    /// Targeted invalidation after a successful `remove` through the
    /// wrapper: drop entries whose matched rule is gone. Misses stay
    /// valid (removing a rule can never turn a miss into a hit), and
    /// the fold is deliberately left wide (see [`CacheState::fold`]).
    /// Returns the number of entries dropped.
    fn invalidate_for_remove(&mut self, id: RuleId) -> u64 {
        let hit_on = |v: &Verdict| v.matched.is_some_and(|m| m.id == id);
        let mut dropped = self.micro.retain_not(|_, v| hit_on(v));
        if let Some(mega) = &mut self.mega {
            dropped += mega.retain_not(|_, v| hit_on(v));
        }
        dropped
    }
}

/// A point-in-time snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served by either cache layer.
    pub hits: u64,
    /// Lookups that fell through to the inner engine.
    pub misses: u64,
    /// Entries evicted to make room (either layer).
    pub evictions: u64,
    /// Entries dropped by targeted invalidation after an update.
    pub invalidations: u64,
    /// Whole-layer flushes (fold tightened, or epoch fallback).
    pub flushes: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A flow verdict cache wrapped around any inner backend
/// ([`EngineKind::Cached`], spec
/// `cached:inner=<spec>,flows=N[,megaflow=on|off]`).
///
/// Lookups probe the microflow table, then the megaflow layer, then the
/// inner engine (populating both layers on the way back). Cache hits
/// cost `mem_reads = 1`. Updates route through the wrapper to the inner
/// engine and invalidate affected entries (see the module docs for the
/// protocol); the wrapper delegates epoch/report accounting to the
/// inner engine so the [`PacketClassifier::update_epoch`] contract holds
/// through the cache.
#[derive(Debug)]
pub struct CachedEngine {
    inner: Box<dyn PacketClassifier>,
    state: Mutex<CacheState>,
    /// The inner epoch the cache last synchronised with; a mismatch at
    /// lookup time (out-of-band update) triggers the full-flush
    /// fallback.
    seen_epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    flushes: AtomicU64,
    /// Scratch for the batch path: indices of headers that missed.
    miss_idx: Vec<usize>,
    miss_headers: Vec<Header>,
    miss_verdicts: Vec<Verdict>,
}

impl CachedEngine {
    /// Wraps `inner` with a cache of `flows` microflow slots (rounded up
    /// to a power of two) and, when `megaflow` is set, a same-sized
    /// megaflow layer. `rules` are the rules `inner` was built from —
    /// they seed the fold mask the megaflow layer keys on.
    pub fn new<'a>(
        inner: Box<dyn PacketClassifier>,
        flows: usize,
        megaflow: bool,
        rules: impl IntoIterator<Item = &'a Rule>,
    ) -> Self {
        let fold = MaskSummary::fold(rules);
        let seen = inner.update_epoch();
        CachedEngine {
            inner,
            state: Mutex::new(CacheState {
                micro: FlowTable::new(flows),
                mega: megaflow.then(|| FlowTable::new(flows)),
                fold,
            }),
            seen_epoch: AtomicU64::new(seen),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            miss_idx: Vec::new(),
            miss_headers: Vec::new(),
            miss_verdicts: Vec::new(),
        }
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &dyn PacketClassifier {
        &*self.inner
    }

    /// Mutable access to the wrapped engine — an *out-of-band* channel:
    /// updates applied here bypass the wrapper's targeted invalidation.
    /// The epoch fallback catches them (next lookup flushes everything),
    /// which is exactly what this accessor exists to let tests prove.
    pub fn inner_mut(&mut self) -> &mut dyn PacketClassifier {
        &mut *self.inner
    }

    /// Whether the megaflow layer is enabled.
    pub fn has_megaflow(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .mega
            .is_some()
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }

    /// A cache hit re-reported as one wide memory read: whatever the
    /// inner lookup cost when the entry was populated, serving it again
    /// costs a single cache-line access in the hardware model.
    fn as_cache_hit(v: Verdict) -> Verdict {
        Verdict { mem_reads: 1, ..v }
    }

    /// Flushes both layers if the inner epoch moved without the wrapper
    /// seeing the update (out-of-band churn through
    /// [`CachedEngine::inner_mut`]).
    fn flush_if_stale(&self, state: &mut CacheState) {
        let epoch = self.inner.update_epoch();
        if self.seen_epoch.swap(epoch, Ordering::Relaxed) != epoch {
            state.flush();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probes both layers; `None` means fall through to the inner
    /// engine.
    fn probe(&self, state: &mut CacheState, header: &Header) -> Option<Verdict> {
        if let Some(v) = state.micro.get(header) {
            return Some(Self::as_cache_hit(v));
        }
        let fold = state.fold;
        if let Some(mega) = &mut state.mega {
            if let Some(v) = mega.get(&fold.masked_query(header)) {
                return Some(Self::as_cache_hit(v));
            }
        }
        None
    }

    /// Installs an inner verdict into both layers.
    fn install(&self, state: &mut CacheState, header: &Header, verdict: Verdict) {
        let mut evicted = u64::from(state.micro.insert(*header, verdict));
        let fold = state.fold;
        if let Some(mega) = &mut state.mega {
            evicted += u64::from(mega.insert(fold.masked_query(header), verdict));
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

impl PacketClassifier for CachedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Cached
    }

    fn name(&self) -> &'static str {
        "Cached"
    }

    fn rules(&self) -> usize {
        self.inner.rules()
    }

    fn classify(&self, header: &Header) -> Verdict {
        {
            let mut state = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.flush_if_stale(&mut state);
            if let Some(v) = self.probe(&mut state, header) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        // Classify outside the lock: concurrent readers miss into the
        // inner engine in parallel. A racing double-install of the same
        // flow is benign (same verdict — updates take `&mut self`, so
        // they cannot interleave with `&self` lookups).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = self.inner.classify(header);
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.install(&mut state, header, verdict);
        verdict
    }

    /// Two-pass batch: probe every header, batch only the misses into
    /// the inner engine's amortised path, then merge and populate. A
    /// repeat of a flow that is *already pending* in the miss list is
    /// deduplicated — it never reaches the inner engine and is served as
    /// a cache hit once the first occurrence's verdict lands, so a cold
    /// cache still amortises a high-locality batch. With flow locality
    /// most headers never reach the inner engine — this is where the
    /// cache's throughput win comes from.
    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        let epoch = self.inner.update_epoch();
        let state = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.seen_epoch.swap(epoch, Ordering::Relaxed) != epoch {
            state.flush();
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        out.resize(headers.len(), Verdict::miss(0));
        self.miss_idx.clear();
        self.miss_headers.clear();
        let mut stats = LookupStats::default();
        // Headers queued for the inner engine this batch, mapped to their
        // position in `miss_headers`; repeats resolve here instead of
        // costing a second inner lookup.
        let mut pending: HashMap<Header, usize> = HashMap::new();
        // (out slot, miss position) for deduplicated repeats.
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (i, h) in headers.iter().enumerate() {
            if let Some(v) = {
                if let Some(v) = state.micro.get(h) {
                    Some(Self::as_cache_hit(v))
                } else {
                    let fold = state.fold;
                    state
                        .mega
                        .as_mut()
                        .and_then(|mega| mega.get(&fold.masked_query(h)))
                        .map(Self::as_cache_hit)
                }
            } {
                out[i] = v;
                stats.absorb(&v);
            } else if let Some(&m) = pending.get(h) {
                dups.push((i, m));
            } else {
                pending.insert(*h, self.miss_headers.len());
                self.miss_idx.push(i);
                self.miss_headers.push(*h);
            }
        }
        let probe_hits = stats.packets;

        if !self.miss_headers.is_empty() {
            let inner_stats = self
                .inner
                .classify_batch(&self.miss_headers, &mut self.miss_verdicts);
            stats = stats + inner_stats;
            let mut evicted = 0u64;
            for (slot, (h, v)) in self
                .miss_idx
                .iter()
                .zip(self.miss_headers.iter().zip(&self.miss_verdicts))
            {
                out[*slot] = *v;
                evicted += u64::from(state.micro.insert(*h, *v));
                let fold = state.fold;
                if let Some(mega) = &mut state.mega {
                    evicted += u64::from(mega.insert(fold.masked_query(h), *v));
                }
            }
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        for &(slot, m) in &dups {
            let v = Self::as_cache_hit(self.miss_verdicts[m]);
            out[slot] = v;
            stats.absorb(&v);
        }

        // Nested caches (e.g. sharded-of-cached) already folded their own
        // cache counters in via `inner_stats` — add, never overwrite.
        let batch_hits = probe_hits + dups.len() as u64;
        stats.cache_hits = stats.cache_hits.saturating_add(batch_hits);
        stats.cache_misses = stats
            .cache_misses
            .saturating_add(self.miss_headers.len() as u64);
        self.hits.fetch_add(batch_hits, Ordering::Relaxed);
        self.misses
            .fetch_add(self.miss_headers.len() as u64, Ordering::Relaxed);
        stats
    }

    fn memory_bits(&self) -> u64 {
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let micro_bits =
            (state.micro.capacity() * std::mem::size_of::<Option<Entry<Header>>>()) as u64 * 8;
        let mega_bits = state.mega.as_ref().map_or(0, |m| {
            (m.capacity() * std::mem::size_of::<Option<Entry<[u16; 7]>>>()) as u64 * 8
        });
        self.inner.memory_bits() + micro_bits + mega_bits
    }

    fn access_counts(&self) -> AccessCounts {
        self.inner.access_counts()
    }

    fn reset_access_counts(&self) {
        self.inner.reset_access_counts();
    }

    fn supports_updates(&self) -> bool {
        self.inner.supports_updates()
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        // A failed inner insert changes nothing (no epoch bump, no
        // report replacement — the inner backend guarantees it), so the
        // cache stays valid untouched.
        let id = self.inner.insert(rule)?;
        let (dropped, flushed) = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .invalidate_for_insert(&rule);
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        self.flushes
            .fetch_add(u64::from(flushed), Ordering::Relaxed);
        self.seen_epoch
            .store(self.inner.update_epoch(), Ordering::Relaxed);
        Ok(id)
    }

    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        self.inner.remove(id)?;
        let dropped = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .invalidate_for_remove(id);
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        self.seen_epoch
            .store(self.inner.update_epoch(), Ordering::Relaxed);
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.inner.last_update_report()
    }

    fn update_epoch(&self) -> u64 {
        self.inner.update_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_engine, EngineBuilder};
    use spc_types::{Action, PortRange, Priority, ProtoSpec, RuleSet};

    fn rules(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i as u16))
                    .build()
            })
            .collect()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 7, port, 6)
    }

    fn cached(n_rules: u32, flows: usize, megaflow: bool) -> CachedEngine {
        let rs = rules(n_rules);
        let inner = build_engine("linear", &rs).unwrap();
        CachedEngine::new(inner, flows, megaflow, rs.rules())
    }

    #[test]
    fn repeat_lookups_hit_the_cache() {
        let e = cached(16, 64, true);
        let first = e.classify(&hdr(3));
        assert_eq!(first.action, Some(Action::Forward(3)));
        let again = e.classify(&hdr(3));
        assert_eq!(again.rule, first.rule);
        assert_eq!(again.mem_reads, 1, "cache hit is one wide read");
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn megaflow_serves_whole_masked_classes() {
        // Rules ignore source IP entirely, so two headers differing only
        // there are one megaflow class: the second is a hit even though
        // its exact 5-tuple was never seen.
        let e = cached(8, 64, true);
        let a = Header::new([9, 9, 9, 9].into(), [5, 6, 7, 8].into(), 7, 2, 6);
        let b = Header::new([200, 1, 2, 3].into(), [5, 6, 7, 8].into(), 7, 2, 6);
        let va = e.classify(&a);
        let vb = e.classify(&b);
        assert_eq!(va.rule, vb.rule);
        assert_eq!(e.cache_stats().hits, 1, "megaflow absorbed the twin");

        // Without megaflow the twin misses.
        let e2 = cached(8, 64, false);
        e2.classify(&a);
        e2.classify(&b);
        assert_eq!(e2.cache_stats().hits, 0);
    }

    #[test]
    fn cached_misses_are_cached_too() {
        let e = cached(4, 64, true);
        assert!(!e.classify(&hdr(999)).is_hit());
        assert!(!e.classify(&hdr(999)).is_hit());
        assert_eq!(e.cache_stats().hits, 1, "a cached miss is still a hit");
    }

    #[test]
    fn insert_through_wrapper_invalidates_targeted() {
        let rs = rules(4);
        let inner = build_engine("configurable-bst", &rs).unwrap();
        let mut e = CachedEngine::new(inner, 64, true, rs.rules());
        assert!(!e.classify(&hdr(700)).is_hit());
        // New rule covers port 700; the cached miss must die.
        let r = Rule::builder(Priority(0))
            .dst_port(PortRange::exact(700))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Drop)
            .build();
        let id = e.insert(r).unwrap();
        let v = e.classify(&hdr(700));
        assert_eq!(v.rule, Some(id), "stale miss was invalidated");
        assert_eq!(v.action, Some(Action::Drop));
    }

    #[test]
    fn remove_through_wrapper_drops_its_entries() {
        let rs = rules(4);
        let inner = build_engine("configurable-bst", &rs).unwrap();
        let mut e = CachedEngine::new(inner, 64, true, rs.rules());
        let v = e.classify(&hdr(2));
        let id = v.rule.unwrap();
        e.remove(id).unwrap();
        assert!(!e.classify(&hdr(2)).is_hit(), "cached hit was invalidated");
        assert!(e.cache_stats().invalidations > 0);
        // Unrelated cached flows survive the targeted invalidation.
        e.classify(&hdr(1));
        let before = e.cache_stats().hits;
        e.classify(&hdr(1));
        assert_eq!(e.cache_stats().hits, before + 1);
    }

    #[test]
    fn out_of_band_update_triggers_epoch_flush() {
        let rs = rules(4);
        let inner = build_engine("configurable-bst", &rs).unwrap();
        let mut e = CachedEngine::new(inner, 64, true, rs.rules());
        assert!(!e.classify(&hdr(800)).is_hit());
        // Bypass the wrapper: the cache cannot see this insert.
        let r = Rule::builder(Priority(0))
            .dst_port(PortRange::exact(800))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Drop)
            .build();
        e.inner_mut().insert(r).unwrap();
        // The epoch fallback must flush before serving the stale miss.
        let v = e.classify(&hdr(800));
        assert_eq!(v.action, Some(Action::Drop));
        assert!(e.cache_stats().flushes > 0, "epoch mismatch flushed");
    }

    #[test]
    fn eviction_under_tiny_capacity_stays_correct() {
        let e = cached(64, PROBE_WINDOW, false);
        for round in 0..3 {
            for port in 0..64u16 {
                let v = e.classify(&hdr(port));
                assert_eq!(
                    v.action,
                    Some(Action::Forward(port)),
                    "round {round} port {port}"
                );
            }
        }
        assert!(e.cache_stats().evictions > 0, "capacity forces evictions");
    }

    #[test]
    fn batch_matches_single_and_reports_cache_stats() {
        let rs = rules(32);
        let inner = build_engine("linear", &rs).unwrap();
        let mut e = CachedEngine::new(inner, 256, true, rs.rules());
        let trace: Vec<Header> = (0..200).map(|i| hdr(i % 8)).collect();
        let mut out = Vec::new();
        let stats = e.classify_batch(&trace, &mut out);
        assert_eq!(stats.packets, 200);
        assert_eq!(stats.cache_hits + stats.cache_misses, 200);
        assert!(stats.cache_hits >= 192, "8 distinct flows, 200 packets");
        for (h, v) in trace.iter().zip(&out) {
            let s = e.classify(h);
            assert_eq!(v.rule, s.rule, "batch equals single at {h}");
            assert_eq!(v.action, s.action);
        }
    }

    #[test]
    fn spec_built_cached_engine_roundtrips() {
        let e = EngineBuilder::from_spec("cached:inner=linear,flows=128")
            .unwrap()
            .build(&rules(8))
            .unwrap();
        assert_eq!(e.kind(), EngineKind::Cached);
        assert!(e.classify(&hdr(5)).is_hit());
    }
}
