//! [`PacketClassifier`] adapters for the update-first backends of
//! `spc-tuplespace`: tuple-space search and the software TCAM.

use crate::{EngineKind, MatchHandle, PacketClassifier, UpdateError, UpdateReport, Verdict};
use spc_tuplespace::{SoftTcam, TcamUpdate, TssUpdate, TupleError, TupleSpace};
use spc_types::{Header, MaskSummary, Rule, RuleId, RuleSet};

/// Default per-tuple hash-table slot hint (`tss:tables=`), rounded up to
/// a power of two by the structure.
pub const DEFAULT_TSS_TABLES: usize = 8;
/// Default provisioned TCAM slots (`tcam:capacity=`). ClassBench-style
/// wide port ranges expand to up to ~900 entries per rule, so the
/// default leaves headroom for ~1k worst-case or ~100k typical rules.
pub const DEFAULT_TCAM_CAPACITY: usize = 1 << 20;
/// Default allocator partition count (`tcam:partitions=`).
pub const DEFAULT_TCAM_PARTITIONS: usize = 8;

impl From<TupleError> for UpdateError {
    fn from(e: TupleError) -> Self {
        match e {
            TupleError::Duplicate { existing } => UpdateError::Duplicate {
                existing: RuleId(existing),
            },
            TupleError::UnknownRule { id } => UpdateError::UnknownRule { id: RuleId(id) },
            // Capacity exhaustion is an environment limit, not a protocol
            // error — keep it distinguishable from duplicates so churn
            // loops can surface it.
            TupleError::CapacityExhausted { capacity, needed } => UpdateError::Rejected {
                reason: format!("tcam capacity exhausted: need {needed} of {capacity} slots"),
            },
        }
    }
}

fn verdict(hit: Option<(u32, &Rule)>, reads: u32) -> Verdict {
    match hit {
        Some((id, rule)) => Verdict::hit(
            MatchHandle {
                id: RuleId(id),
                priority: rule.priority,
                mask_summary: MaskSummary::of_rule(rule),
            },
            rule.action,
            reads,
        ),
        None => Verdict::miss(reads),
    }
}

/// Tuple-space search behind the unified API.
///
/// Wraps [`spc_tuplespace::TupleSpace`]: one hash table per mask
/// signature, probed in best-priority order. Updates touch exactly one
/// tuple's table plus the pruning index, and the per-update
/// [`TssUpdate`] cost is surfaced as a §V.A-style [`UpdateReport`] —
/// one label for the rule itself plus one per tuple opened or freed,
/// and a write cycle per hash slot written.
#[derive(Debug)]
pub struct TupleSpaceEngine {
    ts: TupleSpace,
    last_report: Option<UpdateReport>,
    epoch: u64,
}

impl TupleSpaceEngine {
    /// Wraps an already-built tuple space.
    pub fn new(ts: TupleSpace) -> Self {
        TupleSpaceEngine {
            ts,
            last_report: None,
            epoch: 0,
        }
    }

    /// Builds from a rule set with the given per-tuple slot hint.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Duplicate`] when two rules share all seven match
    /// dimensions.
    pub fn build(rules: &RuleSet, slots_hint: usize) -> Result<Self, UpdateError> {
        Ok(TupleSpaceEngine::new(TupleSpace::build(rules, slots_hint)?))
    }

    /// The wrapped structure, for tuple-level instrumentation the
    /// backend-agnostic trait does not expose.
    pub fn tuple_space(&self) -> &TupleSpace {
        &self.ts
    }

    fn report(id: u32, up: &TssUpdate, insert: bool) -> UpdateReport {
        let tuples = u32::from(if insert {
            up.tuple_created
        } else {
            up.tuple_freed
        });
        UpdateReport {
            rule_id: RuleId(id),
            created_labels: if insert { 1 + tuples } else { 0 },
            freed_labels: if insert { 0 } else { 1 + tuples },
            // §V.A floor (2 data + 1 hash) plus every hash slot written.
            hw_write_cycles: 3 + u64::from(up.slots_written),
        }
    }
}

impl PacketClassifier for TupleSpaceEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::TupleSpace
    }

    fn name(&self) -> &'static str {
        "Tuple-space search"
    }

    fn rules(&self) -> usize {
        self.ts.len()
    }

    fn classify(&self, header: &Header) -> Verdict {
        let (hit, reads) = self.ts.lookup(header);
        verdict(hit, reads)
    }

    fn memory_bits(&self) -> u64 {
        self.ts.memory_bits()
    }

    fn supports_updates(&self) -> bool {
        true
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        // A failed update must leave both the report and the epoch
        // untouched: the epoch bumps iff the report is replaced.
        let (id, up) = self.ts.insert(rule)?;
        self.last_report = Some(Self::report(id, &up, true));
        self.epoch += 1;
        Ok(RuleId(id))
    }

    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let (_, up) = self.ts.remove(id.0)?;
        self.last_report = Some(Self::report(id.0, &up, false));
        self.epoch += 1;
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.last_report
    }

    fn update_epoch(&self) -> u64 {
        self.epoch
    }
}

/// The software TCAM behind the unified API.
///
/// Wraps [`spc_tuplespace::SoftTcam`]: a priority-ordered ternary array
/// scanned first-match. The per-update [`TcamUpdate`] is surfaced as a
/// [`UpdateReport`] whose write cycles are proportional to the entries
/// the partitioned allocator had to move — the shift-on-insert cost a
/// real TCAM pays.
#[derive(Debug)]
pub struct SoftTcamEngine {
    tcam: SoftTcam,
    last_report: Option<UpdateReport>,
    epoch: u64,
}

impl SoftTcamEngine {
    /// Wraps an already-built TCAM.
    pub fn new(tcam: SoftTcam) -> Self {
        SoftTcamEngine {
            tcam,
            last_report: None,
            epoch: 0,
        }
    }

    /// Builds from a rule set with the given slot capacity and
    /// allocator partition count.
    ///
    /// # Errors
    ///
    /// [`UpdateError::Rejected`] when the prefix expansion exceeds
    /// `capacity`, [`UpdateError::Duplicate`] on identical filters.
    pub fn build(rules: &RuleSet, capacity: usize, partitions: usize) -> Result<Self, UpdateError> {
        Ok(SoftTcamEngine::new(SoftTcam::build(
            rules, capacity, partitions,
        )?))
    }

    /// The wrapped structure, for slot-level instrumentation the
    /// backend-agnostic trait does not expose.
    pub fn tcam(&self) -> &SoftTcam {
        &self.tcam
    }

    fn report(id: u32, up: &TcamUpdate) -> UpdateReport {
        UpdateReport {
            rule_id: RuleId(id),
            created_labels: up.entries_added,
            freed_labels: up.entries_removed,
            // §V.A floor plus one cycle per slot written: the rule's own
            // entries, the entries shifted to make room, and the
            // valid-bit clears of a remove.
            hw_write_cycles: 3
                + u64::from(up.entries_added)
                + u64::from(up.entries_moved)
                + u64::from(up.entries_removed),
        }
    }
}

impl PacketClassifier for SoftTcamEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SoftTcam
    }

    fn name(&self) -> &'static str {
        "Software TCAM"
    }

    fn rules(&self) -> usize {
        self.tcam.len()
    }

    fn classify(&self, header: &Header) -> Verdict {
        let (hit, reads) = self.tcam.lookup(header);
        verdict(hit, reads)
    }

    fn memory_bits(&self) -> u64 {
        self.tcam.memory_bits()
    }

    fn supports_updates(&self) -> bool {
        true
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        // Same contract as every updating backend: failed updates leave
        // the report/epoch pair untouched.
        let (id, up) = self.tcam.insert(rule)?;
        self.last_report = Some(Self::report(id, &up));
        self.epoch += 1;
        Ok(RuleId(id))
    }

    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let (_, up) = self.tcam.remove(id.0)?;
        self.last_report = Some(Self::report(id.0, &up));
        self.epoch += 1;
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.last_report
    }

    fn update_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Action, PortRange, Priority, ProtoSpec};

    fn web_rule(p: u32, port: u16) -> Rule {
        Rule::builder(Priority(p))
            .dst_port(PortRange::exact(port))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(1))
            .build()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 999, port, 6)
    }

    fn engines() -> Vec<Box<dyn PacketClassifier>> {
        vec![
            Box::new(TupleSpaceEngine::new(TupleSpace::new(DEFAULT_TSS_TABLES))),
            Box::new(SoftTcamEngine::new(SoftTcam::new(
                DEFAULT_TCAM_CAPACITY,
                DEFAULT_TCAM_PARTITIONS,
            ))),
        ]
    }

    #[test]
    fn update_roundtrip_through_trait() {
        for mut e in engines() {
            assert!(e.supports_updates(), "{}", e.name());
            let id = e.insert(web_rule(0, 80)).unwrap();
            assert_eq!(e.rules(), 1);
            let v = e.classify(&hdr(80));
            assert_eq!(v.rule, Some(id), "{}", e.name());
            assert_eq!(v.action, Some(Action::Forward(1)));
            assert!(v.mem_reads > 0);
            e.remove(id).unwrap();
            assert!(!e.classify(&hdr(80)).is_hit());
            assert!(matches!(e.remove(id), Err(UpdateError::UnknownRule { .. })));
        }
    }

    #[test]
    fn epoch_and_report_move_together() {
        for mut e in engines() {
            assert_eq!(e.update_epoch(), 0);
            assert!(e.last_update_report().is_none());
            let id = e.insert(web_rule(0, 80)).unwrap();
            let ins = e.last_update_report().expect("insert must report");
            assert_eq!(ins.rule_id, id);
            assert!(ins.created_labels >= 1, "{}", e.name());
            assert!(ins.hw_write_cycles >= 3, "§V.A floor: 2 data + 1 hash");
            assert_eq!(e.update_epoch(), 1);
            // A duplicate is rejected and leaves the pair untouched.
            assert!(matches!(
                e.insert(web_rule(5, 80)),
                Err(UpdateError::Duplicate { .. })
            ));
            assert_eq!(e.last_update_report(), Some(ins));
            assert_eq!(e.update_epoch(), 1);
            e.remove(id).unwrap();
            let del = e.last_update_report().expect("remove must report");
            assert!(del.freed_labels >= 1);
            assert!(del.hw_write_cycles >= 3);
            assert_eq!(e.update_epoch(), 2);
        }
    }

    #[test]
    fn batch_agrees_with_single_and_accounts() {
        for mut e in engines() {
            for (p, port) in [(0u32, 80u16), (1, 443), (2, 22)] {
                e.insert(web_rule(p, port)).unwrap();
            }
            let batch: Vec<Header> = [80u16, 443, 22, 8080, 80].iter().map(|&p| hdr(p)).collect();
            let mut out = Vec::new();
            let stats = e.classify_batch(&batch, &mut out);
            assert_eq!(out.len(), batch.len());
            assert_eq!(stats.packets, 5);
            assert_eq!(stats.hits, 4, "{}", e.name());
            for (h, v) in batch.iter().zip(&out) {
                assert_eq!(*v, e.classify(h), "{}: batch != single at {h}", e.name());
            }
        }
    }

    #[test]
    fn tcam_capacity_exhaustion_is_a_rejection() {
        let mut e = SoftTcamEngine::new(SoftTcam::new(4, 2));
        let wide = Rule::builder(Priority(0))
            .src_port(PortRange::new(1000, 40000).unwrap())
            .build();
        match e.insert(wide) {
            Err(UpdateError::Rejected { reason }) => {
                assert!(reason.contains("capacity"), "{reason}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(e.update_epoch(), 0, "failed insert must not bump epoch");
        assert!(e.last_update_report().is_none());
    }

    #[test]
    fn tcam_report_prices_the_shift() {
        // 8 slots in 2 partitions; fill partition 0, then force a
        // front insert and check the report's cycles include the moves.
        let mut e = SoftTcamEngine::new(SoftTcam::new(8, 2));
        for p in 10..16u32 {
            e.insert(web_rule(p, p as u16)).unwrap();
        }
        e.insert(web_rule(0, 9999)).unwrap();
        let rep = e.last_update_report().expect("insert must report");
        assert!(
            rep.hw_write_cycles > 3 + 1,
            "shift cost must surface: {rep:?}"
        );
    }
}
