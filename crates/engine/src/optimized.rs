//! The optimizer shim: any backend built from an optimized rule set,
//! speaking the *original* set's id space.
//!
//! [`OptimizedEngine`] wraps an inner engine that was built from
//! `spc_analyze::optimize`'s output and translates every boundary
//! crossing through the [`ProvenanceMap`]:
//!
//! * **Verdicts out** — a hit's [`MatchHandle`] is rebuilt from the
//!   *original* rule (original id, original priority, original mask
//!   summary), so callers, flow caches and differential oracles see
//!   exactly what an unoptimized build would report.
//! * **Updates in** — `remove(original_id)` routes to the inner id;
//!   removing a rule the optimizer elided succeeds *synthetically* (the
//!   rule was provably dead, so un-installing it is a semantic no-op
//!   that still replaces the update report and bumps the epoch, as the
//!   [`PacketClassifier::update_epoch`] contract requires). Inserting a
//!   5-tuple that duplicates an elided rule reports
//!   [`UpdateError::Duplicate`] against the elided original id — from
//!   the caller's view that rule is still installed.
//! * **Reports out** — `last_update_report` carries original-space rule
//!   ids; `rules()` counts elided rules as installed.
//!
//! The wrapper is only constructed with id-preserving optimizer output
//! (`OptimizeConfig::id_preserving`, validated by `check_mapped`), so
//! winner identity modulo provenance is a proven property, not a hope.

use crate::{
    EngineKind, LookupStats, MatchHandle, PacketClassifier, UpdateError, UpdateReport, Verdict,
};
use spc_analyze::OptimizedRuleSet;
use spc_hwsim::AccessCounts;
use spc_types::{Header, MaskSummary, Rule, RuleId, RuleSet};
use std::collections::HashMap;

/// A backend built from an optimized rule set, remapped to answer in the
/// original set's id space. Built by
/// `EngineBuilder::with_optimize(OptimizePolicy::Validated)`.
#[derive(Debug)]
pub struct OptimizedEngine {
    inner: Box<dyn PacketClassifier>,
    /// Inner-engine id → the handle to report: the *original* rule's id,
    /// priority and mask summary. `None` for removed inner slots.
    remap: Vec<Option<MatchHandle>>,
    /// Original-space id → inner-engine id, for routing removals.
    reverse: HashMap<RuleId, RuleId>,
    /// Optimizer-elided rules, still installed from the caller's view,
    /// in original-id order (kept sorted for deterministic behaviour).
    elided: Vec<(RuleId, Rule)>,
    /// Next fresh original-space id handed to an insert.
    next_id: u32,
    /// Epoch bumps from synthetic (elided-rule) removals.
    synthetic_epochs: u64,
    /// The report of the most recent successful update, already in
    /// original id space (synthetic or remapped from the inner engine).
    last_report: Option<UpdateReport>,
}

impl OptimizedEngine {
    /// Wraps `inner` — an engine built from `opt.rules`, whose ids are
    /// therefore positional in the optimized set — and `original`, the
    /// set the caller handed to the builder.
    pub(crate) fn new(
        inner: Box<dyn PacketClassifier>,
        opt: &OptimizedRuleSet,
        original: &RuleSet,
    ) -> Self {
        let mut remap = Vec::with_capacity(opt.rules.len());
        let mut reverse = HashMap::with_capacity(opt.rules.len());
        for (inner_id, orig_id) in opt.provenance.iter() {
            let handle = original.get(orig_id).map(|rule| MatchHandle {
                id: orig_id,
                priority: rule.priority,
                mask_summary: MaskSummary::of_rule(rule),
            });
            debug_assert!(handle.is_some(), "provenance must point into the original");
            remap.push(handle);
            reverse.insert(orig_id, inner_id);
        }
        let mut elided: Vec<(RuleId, Rule)> = opt
            .removed_ids()
            .into_iter()
            .filter_map(|id| original.get(id).map(|r| (id, *r)))
            .collect();
        elided.sort_by_key(|&(id, _)| id);
        OptimizedEngine {
            inner,
            remap,
            reverse,
            elided,
            next_id: original.len() as u32,
            synthetic_epochs: 0,
            last_report: None,
        }
    }

    /// How many original rules the optimizer elided (still reported as
    /// installed).
    pub fn elided_rules(&self) -> usize {
        self.elided.len()
    }

    /// Translates one inner verdict into the original id space.
    fn remap_verdict(&self, v: Verdict) -> Verdict {
        match v.matched {
            Some(inner_handle) => {
                let handle = self
                    .remap
                    .get(inner_handle.id.0 as usize)
                    .copied()
                    .flatten()
                    .unwrap_or(inner_handle);
                let action = v.action.unwrap_or_default();
                Verdict::hit(handle, action, v.mem_reads)
            }
            None => v,
        }
    }

    /// The original-space id behind an inner id, when it is tracked.
    fn original_of(&self, inner_id: RuleId) -> Option<RuleId> {
        self.remap
            .get(inner_id.0 as usize)
            .copied()
            .flatten()
            .map(|h| h.id)
    }

    /// Translates inner-engine update errors into the original id space.
    fn remap_error(&self, e: UpdateError) -> UpdateError {
        match e {
            UpdateError::Duplicate { existing } => UpdateError::Duplicate {
                existing: self.original_of(existing).unwrap_or(existing),
            },
            other => other,
        }
    }
}

impl PacketClassifier for OptimizedEngine {
    fn kind(&self) -> EngineKind {
        self.inner.kind()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn rules(&self) -> usize {
        self.inner.rules() + self.elided.len()
    }

    fn classify(&self, header: &Header) -> Verdict {
        self.remap_verdict(self.inner.classify(header))
    }

    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        let stats = self.inner.classify_batch(headers, out);
        for v in out.iter_mut() {
            *v = self.remap_verdict(*v);
        }
        stats
    }

    fn memory_bits(&self) -> u64 {
        self.inner.memory_bits()
    }

    fn access_counts(&self) -> AccessCounts {
        self.inner.access_counts()
    }

    fn reset_access_counts(&self) {
        self.inner.reset_access_counts();
    }

    fn supports_updates(&self) -> bool {
        self.inner.supports_updates()
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        if !self.inner.supports_updates() {
            // Let the inner engine phrase its own Unsupported error.
            return self.inner.insert(rule).map_err(|e| self.remap_error(e));
        }
        // An elided rule is installed from the caller's view: a 5-tuple
        // duplicate of one reports Duplicate against the elided id, just
        // as the unoptimized engine would against the live rule.
        if let Some(&(existing, _)) = self
            .elided
            .iter()
            .find(|(_, r)| r.dim_values() == rule.dim_values())
        {
            return Err(UpdateError::Duplicate { existing });
        }
        let inner_id = self.inner.insert(rule).map_err(|e| self.remap_error(e))?;
        let orig_id = RuleId(self.next_id);
        self.next_id += 1;
        let handle = MatchHandle {
            id: orig_id,
            priority: rule.priority,
            mask_summary: MaskSummary::of_rule(&rule),
        };
        let slot = inner_id.0 as usize;
        if slot >= self.remap.len() {
            self.remap.resize(slot + 1, None);
        }
        self.remap[slot] = Some(handle);
        self.reverse.insert(orig_id, inner_id);
        self.last_report = self.inner.last_update_report().map(|r| UpdateReport {
            rule_id: orig_id,
            ..r
        });
        Ok(orig_id)
    }

    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        if !self.inner.supports_updates() {
            return self.inner.remove(id).map_err(|e| self.remap_error(e));
        }
        if let Some(pos) = self.elided.iter().position(|&(eid, _)| eid == id) {
            // The rule was provably dead: un-installing it changes no
            // verdict, but it is still a successful update — replace the
            // report and bump the epoch so cache layers stay in step.
            self.elided.remove(pos);
            self.last_report = Some(UpdateReport {
                rule_id: id,
                created_labels: 0,
                freed_labels: 0,
                hw_write_cycles: 0,
            });
            self.synthetic_epochs += 1;
            return Ok(());
        }
        let inner_id = *self
            .reverse
            .get(&id)
            .ok_or(UpdateError::UnknownRule { id })?;
        self.inner.remove(inner_id).map_err(|e| match e {
            UpdateError::UnknownRule { .. } => UpdateError::UnknownRule { id },
            other => self.remap_error(other),
        })?;
        self.reverse.remove(&id);
        if let Some(slot) = self.remap.get_mut(inner_id.0 as usize) {
            *slot = None;
        }
        self.last_report = self
            .inner
            .last_update_report()
            .map(|r| UpdateReport { rule_id: id, ..r });
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.last_report
    }

    fn update_epoch(&self) -> u64 {
        self.inner.update_epoch() + self.synthetic_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EngineBuilder, OptimizePolicy};
    use spc_types::{Action, PortRange, Priority, ProtoSpec};

    /// Original set: rule 1 is dead (shadowed by the catch-all 0), rules
    /// 0 and 2 are live.
    fn rules() -> RuleSet {
        RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 1000).unwrap())
                .action(Action::Forward(1))
                .build(),
            Rule::builder(Priority(5))
                .dst_port(PortRange::exact(80))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Drop)
                .build(),
            Rule::builder(Priority(7))
                .dst_port(PortRange::new(2000, 3000).unwrap())
                .action(Action::Forward(2))
                .build(),
        ])
    }

    fn optimized(kind: EngineKind) -> Box<dyn PacketClassifier> {
        EngineBuilder::new(kind)
            .with_optimize(OptimizePolicy::Validated)
            .build(&rules())
            .unwrap()
    }

    #[test]
    fn verdicts_come_back_in_original_id_space() {
        let rules = rules();
        for kind in EngineKind::ALL {
            let engine = optimized(kind);
            // The wrapper hides the shrink: callers still see 3 rules.
            assert_eq!(engine.rules(), 3, "{kind}");
            for (h, want) in [
                (
                    Header::new([1; 4].into(), [2; 4].into(), 9, 80, 6),
                    Some(RuleId(0)),
                ),
                (
                    Header::new([1; 4].into(), [2; 4].into(), 9, 2500, 17),
                    Some(RuleId(2)),
                ),
                (Header::new([1; 4].into(), [2; 4].into(), 9, 5000, 17), None),
            ] {
                let v = engine.classify(&h);
                assert_eq!(v.rule, want, "{kind}");
                let oracle = rules.classify(&h);
                assert_eq!(v.rule, oracle.map(|(id, _)| id), "{kind}");
                if let Some((id, rule)) = oracle {
                    let m = v.matched().unwrap();
                    // Original priority and mask, not the renumbered ones.
                    assert_eq!(m.priority, rule.priority, "{kind}");
                    assert_eq!(m.mask_summary, MaskSummary::of_rule(rule), "{kind}");
                    assert_eq!(m.id, id, "{kind}");
                    assert_eq!(v.action, Some(rule.action), "{kind}");
                }
            }
        }
    }

    #[test]
    fn elided_rules_behave_as_installed() {
        let mut engine = optimized(EngineKind::ConfigurableBst);
        let epoch0 = engine.update_epoch();
        // Inserting the dead rule's exact 5-tuple is a duplicate of the
        // (elided) rule 1.
        let again = Rule::builder(Priority(9))
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .build();
        assert!(matches!(
            engine.insert(again),
            Err(UpdateError::Duplicate {
                existing: RuleId(1)
            })
        ));
        assert_eq!(engine.update_epoch(), epoch0, "failed insert: no bump");
        // Removing it succeeds synthetically: epoch bumps, report moves.
        engine.remove(RuleId(1)).unwrap();
        assert_eq!(engine.update_epoch(), epoch0 + 1);
        let report = engine.last_update_report().unwrap();
        assert_eq!(report.rule_id, RuleId(1));
        assert_eq!(report.hw_write_cycles, 0);
        assert_eq!(engine.rules(), 2);
        // A second removal is UnknownRule, like any double-remove.
        assert!(matches!(
            engine.remove(RuleId(1)),
            Err(UpdateError::UnknownRule { id: RuleId(1) })
        ));
        // And the 5-tuple is insertable again now.
        let id = engine.insert(again).unwrap();
        assert_eq!(id, RuleId(3), "fresh original-space id");
    }

    #[test]
    fn live_removes_and_inserts_round_trip() {
        let mut engine = optimized(EngineKind::ConfigurableBst);
        let h = Header::new([1; 4].into(), [2; 4].into(), 9, 2500, 17);
        assert_eq!(engine.classify(&h).rule, Some(RuleId(2)));
        engine.remove(RuleId(2)).unwrap();
        assert_eq!(engine.last_update_report().unwrap().rule_id, RuleId(2));
        assert!(!engine.classify(&h).is_hit());
        assert_eq!(engine.rules(), 2);
        // New inserts win with their fresh original-space id.
        let id = engine
            .insert(
                Rule::builder(Priority(1))
                    .dst_port(PortRange::exact(2500))
                    .action(Action::ToController)
                    .build(),
            )
            .unwrap();
        assert_eq!(id, RuleId(3));
        let v = engine.classify(&h);
        assert_eq!(v.rule, Some(RuleId(3)));
        assert_eq!(v.action, Some(Action::ToController));
        assert_eq!(engine.last_update_report().unwrap().rule_id, RuleId(3));
        // Unknown ids stay unknown in the original space.
        assert!(matches!(
            engine.remove(RuleId(42)),
            Err(UpdateError::UnknownRule { id: RuleId(42) })
        ));
    }

    #[test]
    fn batch_path_remaps_every_verdict() {
        let rules = rules();
        let mut engine = optimized(EngineKind::Sharded);
        let headers: Vec<Header> = (0..40u16)
            .map(|i| Header::new([1; 4].into(), [2; 4].into(), i, i * 100, 6))
            .collect();
        let mut out = Vec::new();
        engine.classify_batch(&headers, &mut out);
        for (h, v) in headers.iter().zip(&out) {
            assert_eq!(v.rule, rules.classify(h).map(|(id, _)| id));
        }
    }

    #[test]
    fn build_once_backends_stay_unsupported() {
        let mut engine = optimized(EngineKind::Linear);
        assert!(!engine.supports_updates());
        assert!(matches!(
            engine.insert(Rule::any(Priority(9))),
            Err(UpdateError::Unsupported { .. })
        ));
        assert!(matches!(
            engine.remove(RuleId(1)),
            Err(UpdateError::Unsupported { .. })
        ));
    }
}
