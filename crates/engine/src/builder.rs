//! Constructing any backend from an [`EngineKind`] or a config string.

use crate::kind::ParseEngineKindError;
use crate::{BaselineEngine, ConfigurableEngine, EngineKind, PacketClassifier};
use spc_baselines::{
    Dcfl, HyperCuts, HyperCutsConfig, LinearSearch, OptionClassifier, OptionKind, Rfc,
};
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};
use spc_types::RuleSet;
use std::fmt;

/// Default RFC phase-table entry cap (the Table I harness value).
const DEFAULT_RFC_ENTRY_CAP: u64 = 1 << 27;

/// Error from [`EngineBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The spec string did not name a registered backend.
    UnknownKind {
        /// The parse failure.
        source: ParseEngineKindError,
    },
    /// A spec option was malformed (`key=value` expected) or unknown.
    BadOption {
        /// The offending option text.
        option: String,
    },
    /// The backend could not hold the rule set (capacity, duplicate
    /// 5-tuples, RFC table blow-up, ...).
    Rejected {
        /// Which backend rejected it.
        kind: EngineKind,
        /// Backend-specific reason.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownKind { source } => source.fmt(f),
            BuildError::BadOption { option } => {
                write!(
                    f,
                    "bad engine option {option:?}; expected key=value with keys rf_bits, combine"
                )
            }
            BuildError::Rejected { kind, reason } => {
                write!(f, "{kind} cannot hold this rule set: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds any registered backend as a `Box<dyn PacketClassifier>`.
///
/// ```
/// use spc_engine::EngineBuilder;
/// use spc_types::{Priority, Rule, RuleSet};
///
/// let rules = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// // Sweep backends from config strings — the CLI/bench entry point.
/// for spec in ["linear", "hypercuts", "configurable-bst:rf_bits=14"] {
///     let engine = EngineBuilder::from_spec(spec).unwrap().build(&rules).unwrap();
///     assert!(engine.rules() == 1, "{spec}");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    kind: EngineKind,
    arch: Option<ArchConfig>,
    rule_filter_bits: Option<u32>,
    combine: Option<CombineStrategy>,
    rfc_entry_cap: u64,
    hypercuts: HyperCutsConfig,
}

impl EngineBuilder {
    /// A builder for the given backend with default provisioning.
    pub fn new(kind: EngineKind) -> Self {
        EngineBuilder {
            kind,
            arch: None,
            rule_filter_bits: None,
            combine: None,
            rfc_entry_cap: DEFAULT_RFC_ENTRY_CAP,
            hypercuts: HyperCutsConfig::default(),
        }
    }

    /// Parses a config string: a backend name, optionally followed by
    /// `:key=value[,key=value...]` options.
    ///
    /// Options (configurable backends only — other kinds reject them, so
    /// a sweep never silently measures a configuration it didn't ask
    /// for): `rf_bits=N` sets the Rule Filter address width;
    /// `combine=first|probe` selects the phase-3 strategy.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownKind`] / [`BuildError::BadOption`].
    pub fn from_spec(spec: &str) -> Result<Self, BuildError> {
        let (kind_str, opts) = match spec.split_once(':') {
            Some((k, o)) => (k, Some(o)),
            None => (spec, None),
        };
        let kind: EngineKind = kind_str
            .trim()
            .parse()
            .map_err(|source| BuildError::UnknownKind { source })?;
        let mut b = EngineBuilder::new(kind);
        for opt in opts.into_iter().flat_map(|o| o.split(',')) {
            let opt = opt.trim();
            if opt.is_empty() {
                continue;
            }
            let bad = || BuildError::BadOption {
                option: opt.to_string(),
            };
            let (key, value) = opt.split_once('=').ok_or_else(bad)?;
            match key.trim() {
                "rf_bits" if kind.is_configurable() => {
                    b.rule_filter_bits = Some(value.trim().parse().map_err(|_| bad())?);
                }
                "combine" if kind.is_configurable() => {
                    b.combine = Some(match value.trim() {
                        "first" => CombineStrategy::FirstLabel,
                        "probe" => CombineStrategy::PriorityProbe,
                        _ => return Err(bad()),
                    });
                }
                _ => return Err(bad()),
            }
        }
        Ok(b)
    }

    /// The backend this builder constructs.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Overrides the full architecture configuration (configurable
    /// backends; the builder still forces `ip_alg` to match the kind).
    pub fn with_arch_config(mut self, config: ArchConfig) -> Self {
        self.arch = Some(config);
        self
    }

    /// Overrides the Rule Filter address width (configurable backends).
    pub fn with_rule_filter_bits(mut self, bits: u32) -> Self {
        self.rule_filter_bits = Some(bits);
        self
    }

    /// Overrides the phase-3 combine strategy (configurable backends).
    pub fn with_combine(mut self, combine: CombineStrategy) -> Self {
        self.combine = Some(combine);
        self
    }

    /// Overrides the RFC phase-table entry cap.
    pub fn with_rfc_entry_cap(mut self, cap: u64) -> Self {
        self.rfc_entry_cap = cap;
        self
    }

    /// Overrides the HyperCuts tuning parameters.
    pub fn with_hypercuts_config(mut self, config: HyperCutsConfig) -> Self {
        self.hypercuts = config;
        self
    }

    fn arch_for(&self, alg: IpAlg, rules: &RuleSet) -> ArchConfig {
        let mut cfg = self.arch.clone().unwrap_or_else(ArchConfig::large);
        cfg.ip_alg = alg;
        if let Some(bits) = self.rule_filter_bits {
            cfg.rule_filter_addr_bits = bits;
        } else if self.arch.is_none() {
            // Auto-size the Rule Filter to keep hash-probe chains short:
            // at least 4x the rule count, within the large() default.
            let mut bits = cfg.rule_filter_addr_bits;
            while (1usize << bits) < rules.len().saturating_mul(4) && bits < 22 {
                bits += 1;
            }
            cfg.rule_filter_addr_bits = bits;
        }
        if let Some(combine) = self.combine {
            cfg.combine = combine;
        }
        cfg
    }

    fn build_configurable(
        &self,
        alg: IpAlg,
        rules: &RuleSet,
    ) -> Result<ConfigurableEngine, BuildError> {
        let mut cls = Classifier::new(self.arch_for(alg, rules));
        cls.load(rules).map_err(|e| BuildError::Rejected {
            kind: self.kind,
            reason: e.to_string(),
        })?;
        Ok(ConfigurableEngine::new(cls))
    }

    /// Builds the backend over a rule set.
    ///
    /// # Errors
    ///
    /// [`BuildError::Rejected`] when the backend cannot hold the set
    /// (provisioning limits, duplicate 5-tuples, RFC entry cap).
    pub fn build(&self, rules: &RuleSet) -> Result<Box<dyn PacketClassifier>, BuildError> {
        Ok(match self.kind {
            EngineKind::ConfigurableMbt => Box::new(self.build_configurable(IpAlg::Mbt, rules)?),
            EngineKind::ConfigurableBst => Box::new(self.build_configurable(IpAlg::Bst, rules)?),
            EngineKind::Linear => Box::new(BaselineEngine::new(
                self.kind,
                LinearSearch::build(rules),
                rules,
            )),
            EngineKind::HyperCuts => Box::new(BaselineEngine::new(
                self.kind,
                HyperCuts::build(rules, self.hypercuts),
                rules,
            )),
            EngineKind::Rfc => {
                let rfc =
                    Rfc::build(rules, self.rfc_entry_cap).map_err(|e| BuildError::Rejected {
                        kind: self.kind,
                        reason: e.to_string(),
                    })?;
                Box::new(BaselineEngine::new(self.kind, rfc, rules))
            }
            EngineKind::Dcfl => Box::new(BaselineEngine::new(self.kind, Dcfl::build(rules), rules)),
            EngineKind::Option1 => Box::new(BaselineEngine::new(
                self.kind,
                OptionClassifier::build(rules, OptionKind::One),
                rules,
            )),
            EngineKind::Option2 => Box::new(BaselineEngine::new(
                self.kind,
                OptionClassifier::build(rules, OptionKind::Two),
                rules,
            )),
        })
    }
}

/// One-shot convenience: parse a spec and build over a rule set.
///
/// # Errors
///
/// As [`EngineBuilder::from_spec`] and [`EngineBuilder::build`].
pub fn build_engine(spec: &str, rules: &RuleSet) -> Result<Box<dyn PacketClassifier>, BuildError> {
    EngineBuilder::from_spec(spec)?.build(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Action, Header, PortRange, Priority, ProtoSpec, Rule};

    fn rules() -> RuleSet {
        RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::exact(80))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(1))
                .build(),
            Rule::builder(Priority(1)).action(Action::Drop).build(),
        ])
    }

    #[test]
    fn every_registry_kind_builds_and_classifies() {
        let rules = rules();
        let h = Header::new([9, 9, 9, 9].into(), [8, 8, 8, 8].into(), 1, 80, 6);
        for kind in EngineKind::ALL {
            let e = EngineBuilder::new(kind).build(&rules).unwrap();
            assert_eq!(e.kind(), kind);
            assert_eq!(e.rules(), 2, "{kind}");
            assert_eq!(e.classify(&h).priority, Some(Priority(0)), "{kind}");
            assert!(e.memory_bits() > 0, "{kind}");
            assert_eq!(e.supports_updates(), kind.is_configurable(), "{kind}");
        }
    }

    #[test]
    fn spec_options_reach_the_classifier() {
        let rules = rules();
        let b = EngineBuilder::from_spec("configurable-mbt:rf_bits=14,combine=first").unwrap();
        assert_eq!(b.kind(), EngineKind::ConfigurableMbt);
        // Inspect the *built* engine's live config through the adapter
        // accessor, so dropping the parsed options in build() would fail
        // here.
        let engine = b.build_configurable(IpAlg::Mbt, &rules).unwrap();
        let cfg = engine.classifier().config();
        assert_eq!(cfg.rule_filter_addr_bits, 14);
        assert_eq!(cfg.combine, CombineStrategy::FirstLabel);
        assert_eq!(cfg.ip_alg, IpAlg::Mbt);
    }

    #[test]
    fn bad_specs_fail_loudly() {
        assert!(matches!(
            EngineBuilder::from_spec("warp-drive"),
            Err(BuildError::UnknownKind { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("linear:frobnicate=1"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:rf_bits=banana"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:combine=middle"),
            Err(BuildError::BadOption { .. })
        ));
        // Configurable-only options on a fixed backend must fail loudly,
        // not be silently discarded.
        assert!(matches!(
            EngineBuilder::from_spec("rfc:combine=first"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("dcfl:rf_bits=20"),
            Err(BuildError::BadOption { .. })
        ));
    }

    #[test]
    fn duplicate_rules_reject_configurable_build() {
        let dup = RuleSet::from_rules(vec![Rule::any(Priority(0)), Rule::any(Priority(1))]);
        let e = EngineBuilder::new(EngineKind::ConfigurableMbt).build(&dup);
        assert!(matches!(e, Err(BuildError::Rejected { .. })));
        // Baselines don't mind duplicates.
        assert!(EngineBuilder::new(EngineKind::Linear).build(&dup).is_ok());
    }

    #[test]
    fn rule_filter_autosizing_scales() {
        let b = EngineBuilder::new(EngineKind::ConfigurableMbt);
        let small = b.arch_for(IpAlg::Mbt, &rules());
        assert_eq!(
            small.rule_filter_addr_bits,
            ArchConfig::large().rule_filter_addr_bits
        );
        let many: RuleSet = (0..40_000u32)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .build()
            })
            .collect();
        let big = b.arch_for(IpAlg::Mbt, &many);
        assert!(big.rule_filter_addr_bits > ArchConfig::large().rule_filter_addr_bits);
    }
}
