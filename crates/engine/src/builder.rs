//! Constructing any backend from an [`EngineKind`] or a config string.

use crate::kind::ParseEngineKindError;
use crate::{
    BaselineEngine, CachedEngine, ConfigurableEngine, EngineKind, InnerFactory, PacketClassifier,
    ShardedEngine,
};
use spc_analyze::{AnalyzerLimits, RuleSetReport};
use spc_baselines::{
    Dcfl, HyperCuts, HyperCutsConfig, LinearSearch, OptionClassifier, OptionKind, Rfc,
};
use spc_core::shard::{self, ShardStrategy};
use spc_core::{ArchConfig, Classifier, CombineStrategy, IpAlg};
use spc_types::{Dim, DimValue, RuleId, RuleSet};
use std::collections::HashMap;
use std::fmt;

/// Default RFC phase-table entry cap (the Table I harness value).
const DEFAULT_RFC_ENTRY_CAP: u64 = 1 << 27;

/// Which backend family accepts a spec key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyScope {
    /// Configurable backends — and `sharded`, which forwards these to
    /// its inner engines. (The cached wrapper does *not* forward them:
    /// tune its inner engine inside the nested `inner=(...)` spec.)
    Configurable,
    /// The sharded backend only.
    Sharded,
    /// Wrapper backends that take an inner engine (`sharded`, `cached`,
    /// `snapshot`).
    Inner,
    /// The cached backend only.
    Cached,
    /// The tuple-space backend only.
    TupleSpace,
    /// The software-TCAM backend only.
    Tcam,
    /// Every backend (build-level keys such as `optimize`).
    Any,
}

impl KeyScope {
    fn accepts(self, kind: EngineKind) -> bool {
        match self {
            KeyScope::Configurable => kind.is_configurable() || kind == EngineKind::Sharded,
            KeyScope::Sharded => kind == EngineKind::Sharded,
            KeyScope::Inner => {
                kind == EngineKind::Sharded
                    || kind == EngineKind::Cached
                    || kind == EngineKind::Snapshot
            }
            KeyScope::Cached => kind == EngineKind::Cached,
            KeyScope::TupleSpace => kind == EngineKind::TupleSpace,
            KeyScope::Tcam => kind == EngineKind::SoftTcam,
            KeyScope::Any => true,
        }
    }
}

/// The single source of truth for engine-spec keys: the
/// [`EngineBuilder::from_spec`] parser dispatches through this table and
/// [`BuildError::BadOption`]'s `Display` derives its key list from it —
/// adding a key here is the *only* way to make the parser accept it, so
/// the error message cannot rot behind the grammar.
const SPEC_KEYS: &[(&str, KeyScope)] = &[
    ("rf_bits", KeyScope::Configurable),
    ("combine", KeyScope::Configurable),
    ("inner", KeyScope::Inner),
    ("shards", KeyScope::Sharded),
    ("strategy", KeyScope::Sharded),
    ("hash_dim", KeyScope::Sharded),
    ("skew", KeyScope::Sharded),
    ("flows", KeyScope::Cached),
    ("megaflow", KeyScope::Cached),
    ("tables", KeyScope::TupleSpace),
    ("capacity", KeyScope::Tcam),
    ("partitions", KeyScope::Tcam),
    ("optimize", KeyScope::Any),
];

/// The comma-separated key list for error messages, straight from
/// [`SPEC_KEYS`].
fn spec_key_list() -> String {
    SPEC_KEYS
        .iter()
        .map(|&(name, _)| name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Error from [`EngineBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The spec string did not name a registered backend.
    UnknownKind {
        /// The parse failure.
        source: ParseEngineKindError,
    },
    /// A spec option was malformed: not `key=value`, or the value did
    /// not parse for its key.
    BadOption {
        /// The offending option text.
        option: String,
    },
    /// A well-formed `key=value` pair the spec cannot accept: an unknown
    /// key, a key belonging to a different backend, a duplicated key, or
    /// an inconsistent combination. Unknown keys are a hard error on
    /// every path — a sweep must never silently measure a configuration
    /// it didn't ask for.
    ConfigError {
        /// The offending option text.
        option: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The backend could not hold the rule set (capacity, RFC table
    /// blow-up, ...).
    Rejected {
        /// Which backend rejected it.
        kind: EngineKind,
        /// Backend-specific reason.
        reason: String,
    },
    /// Two rules in the set have identical match conditions. Duplicate
    /// 5-tuples are rejected up front on **every** backend — the
    /// configurable architecture cannot represent them (their 7-label
    /// keys collide), and letting decomposition backends silently accept
    /// what label backends reject would make the registry diverge.
    DuplicateRules {
        /// The rule that owns the filter (first occurrence).
        first: RuleId,
        /// The rule that repeats it.
        dup: RuleId,
    },
    /// The pre-build audit found [`spc_analyze::Severity::Error`]
    /// findings and the builder was configured with
    /// [`AuditPolicy::RejectErrors`].
    AuditRejected {
        /// Number of error-level findings.
        errors: usize,
        /// The first error finding's explanation.
        first: String,
    },
    /// [`OptimizePolicy::Validated`] ran the rule-set optimizer and its
    /// output failed equivalence validation against the original set —
    /// an optimizer bug caught before any engine was built from the bad
    /// rewrite.
    OptimizeFailed {
        /// The validation failure, witness included.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownKind { source } => source.fmt(f),
            BuildError::BadOption { option } => {
                write!(
                    f,
                    "bad engine option {option:?}; expected key=value (keys: {})",
                    spec_key_list()
                )
            }
            BuildError::ConfigError { option, reason } => {
                write!(f, "bad engine config {option:?}: {reason}")
            }
            BuildError::Rejected { kind, reason } => {
                write!(f, "{kind} cannot hold this rule set: {reason}")
            }
            BuildError::DuplicateRules { first, dup } => {
                write!(
                    f,
                    "rule {} duplicates the match conditions of rule {}; \
                     duplicate 5-tuples are rejected on every backend",
                    dup.0, first.0
                )
            }
            BuildError::AuditRejected { errors, first } => {
                write!(
                    f,
                    "pre-build audit rejected the rule set ({errors} error finding{}): {first}",
                    if *errors == 1 { "" } else { "s" }
                )
            }
            BuildError::OptimizeFailed { reason } => {
                write!(f, "rule-set optimization failed validation: {reason}")
            }
        }
    }
}

/// What [`EngineBuilder::build`] does with the pre-build audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditPolicy {
    /// No audit (the default): build directly.
    #[default]
    Off,
    /// Run the audit and print its findings to stderr, then build
    /// regardless of severity.
    Warn,
    /// Run the audit and refuse to build sets with
    /// [`spc_analyze::Severity::Error`] findings
    /// ([`BuildError::AuditRejected`]); print nothing.
    RejectErrors,
}

impl std::error::Error for BuildError {}

/// Whether [`EngineBuilder::build`] runs the semantics-preserving
/// rule-set optimizer before constructing the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizePolicy {
    /// Build from the rule set as given (the default).
    #[default]
    Off,
    /// Run `spc_analyze::optimize` with its id-preserving configuration
    /// (duplicate coalescing, dead-rule elimination, priority
    /// renumbering — no range merging), validate the output against the
    /// original set with the equivalence checker, build the backend from
    /// the optimized set, and wrap it in [`crate::OptimizedEngine`] so
    /// every verdict, update report and error speaks the *original* id
    /// space. Validation failure is [`BuildError::OptimizeFailed`] —
    /// never a silently different engine.
    Validated,
}

/// Builds any registered backend as a `Box<dyn PacketClassifier>`.
///
/// ```
/// use spc_engine::EngineBuilder;
/// use spc_types::{Priority, Rule, RuleSet};
///
/// let rules = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// // Sweep backends from config strings — the CLI/bench entry point.
/// for spec in ["linear", "hypercuts", "configurable-bst:rf_bits=14"] {
///     let engine = EngineBuilder::from_spec(spec).unwrap().build(&rules).unwrap();
///     assert!(engine.rules() == 1, "{spec}");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    kind: EngineKind,
    arch: Option<ArchConfig>,
    rule_filter_bits: Option<u32>,
    combine: Option<CombineStrategy>,
    rfc_entry_cap: u64,
    hypercuts: HyperCutsConfig,
    shard_count: usize,
    shard_strategy: ShardStrategy,
    shard_inner: EngineKind,
    band_skew: f64,
    audit: AuditPolicy,
    cache_flows: usize,
    cache_megaflow: bool,
    /// Full builder for the cached wrapper's inner engine (`None` means
    /// the default `configurable-bst`) — boxed because the type recurses.
    cache_inner: Option<Box<EngineBuilder>>,
    /// Full builder for the snapshot wrapper's inner engine (`None`
    /// means the default `configurable-bst`) — boxed like `cache_inner`.
    snapshot_inner: Option<Box<EngineBuilder>>,
    tss_tables: usize,
    tcam_capacity: usize,
    tcam_partitions: usize,
    optimize: OptimizePolicy,
}

/// Default shard count for `sharded` specs that don't say.
const DEFAULT_SHARDS: usize = 4;

/// Default microflow capacity for `cached` specs that don't say.
const DEFAULT_CACHE_FLOWS: usize = 4096;

/// Default band-rebalance skew factor for updatable priority-band
/// sharding: a band splits once it exceeds twice its build-time quota.
const DEFAULT_BAND_SKEW: f64 = 2.0;

/// Default dimension for `strategy=hash` when `hash_dim` is absent: the
/// low destination-IP segment, typically the most value-diverse field in
/// ClassBench-style sets.
const DEFAULT_HASH_DIM: Dim = Dim::DipLo;

/// Splits a spec's option list on commas at parenthesis depth 0, so a
/// nested inner spec — `cached:inner=(sharded:inner=linear,shards=2)` —
/// keeps its own commas.
fn split_opts(opts: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in opts.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&opts[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&opts[start..]);
    parts
}

/// Strips one balanced outer parenthesis pair, if present: the optional
/// grouping syntax for nested inner specs.
fn strip_parens(s: &str) -> &str {
    match s.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
        Some(inner) => inner,
        None => s,
    }
}

fn parse_dim(s: &str) -> Option<Dim> {
    Some(match s {
        "sip_hi" => Dim::SipHi,
        "sip_lo" => Dim::SipLo,
        "dip_hi" => Dim::DipHi,
        "dip_lo" => Dim::DipLo,
        "src_port" => Dim::SrcPort,
        "dst_port" => Dim::DstPort,
        "proto" => Dim::Proto,
        _ => return None,
    })
}

impl EngineBuilder {
    /// A builder for the given backend with default provisioning.
    ///
    /// For [`EngineKind::Sharded`] the defaults are 4 shards of
    /// `configurable-bst` split by priority bands.
    pub fn new(kind: EngineKind) -> Self {
        EngineBuilder {
            kind,
            arch: None,
            rule_filter_bits: None,
            combine: None,
            rfc_entry_cap: DEFAULT_RFC_ENTRY_CAP,
            hypercuts: HyperCutsConfig::default(),
            shard_count: DEFAULT_SHARDS,
            shard_strategy: ShardStrategy::PriorityBands,
            shard_inner: EngineKind::ConfigurableBst,
            band_skew: DEFAULT_BAND_SKEW,
            audit: AuditPolicy::Off,
            cache_flows: DEFAULT_CACHE_FLOWS,
            cache_megaflow: true,
            cache_inner: None,
            snapshot_inner: None,
            tss_tables: crate::DEFAULT_TSS_TABLES,
            tcam_capacity: crate::DEFAULT_TCAM_CAPACITY,
            tcam_partitions: crate::DEFAULT_TCAM_PARTITIONS,
            optimize: OptimizePolicy::Off,
        }
    }

    /// Parses a config string: a backend name, optionally followed by
    /// `:key=value[,key=value...]` options.
    ///
    /// Configurable backends take `rf_bits=N` (Rule Filter address
    /// width) and `combine=first|probe` (phase-3 strategy). The sharded
    /// backend takes `inner=<kind>`, `shards=N`, `strategy=prio|hash`,
    /// `hash_dim=<dimension>` (e.g. `dst_port`; implies nothing on
    /// its own — it refines `strategy=hash`) and `skew=F` (band-split
    /// factor ≥ 1.0; refines `strategy=prio`, see
    /// [`ShardedEngine::enable_updates`]), plus `rf_bits`/`combine`
    /// when its inner engine is configurable. The cached backend takes
    /// `inner=<spec>` (a *full* nested spec — parenthesise it when it
    /// contains commas, e.g. `cached:inner=(sharded:shards=4),flows=8192`),
    /// `flows=N` (microflow slots, rounded up to a power of two at build
    /// time) and `megaflow=on|off`. The snapshot backend takes
    /// `inner=<spec>` (a full nested spec, like cached —
    /// `snapshot:inner=(sharded:shards=4)` rebuilds per shard). The
    /// tuple-space backend takes `tables=N` (per-tuple hash-slot hint,
    /// rounded up to a power of two at build time); the software TCAM
    /// takes `capacity=N` (provisioned slots) and `partitions=K`
    /// (allocator partition count, at most one per slot).
    ///
    /// Every key is checked against the kind it is for: unknown keys,
    /// keys for another backend, and duplicated keys are hard
    /// [`BuildError::ConfigError`]s, never silently ignored.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownKind`] for an unregistered backend name,
    /// [`BuildError::BadOption`] for malformed `key=value` text, and
    /// [`BuildError::ConfigError`] for unknown/duplicate/inconsistent
    /// keys.
    pub fn from_spec(spec: &str) -> Result<Self, BuildError> {
        let (kind_str, opts) = match spec.split_once(':') {
            Some((k, o)) => (k, Some(o)),
            None => (spec, None),
        };
        let kind: EngineKind = kind_str
            .trim()
            .parse()
            .map_err(|source| BuildError::UnknownKind { source })?;
        let mut b = EngineBuilder::new(kind);
        let mut seen: Vec<String> = Vec::new();
        let mut hash_dim: Option<Dim> = None;
        let mut strategy_set = false;
        let mut skew_set = false;
        for opt in opts.into_iter().flat_map(split_opts) {
            let opt = opt.trim();
            if opt.is_empty() {
                continue;
            }
            let bad = || BuildError::BadOption {
                option: opt.to_string(),
            };
            let config_err = |reason: String| BuildError::ConfigError {
                option: opt.to_string(),
                reason,
            };
            let (key, value) = opt.split_once('=').ok_or_else(bad)?;
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(config_err(format!(
                    "duplicate key {key:?}; each key may appear once"
                )));
            }
            seen.push(key.to_string());
            // Admission runs through the shared SPEC_KEYS table: an
            // unregistered key — or one registered for another backend
            // family — is a hard error, never silently ignored.
            let scope = SPEC_KEYS.iter().find(|&&(name, _)| name == key);
            match scope {
                None => {
                    return Err(config_err(format!(
                        "unknown key {key:?}; known keys: {}",
                        spec_key_list()
                    )))
                }
                Some(&(_, scope)) if !scope.accepts(kind) => {
                    return Err(config_err(format!(
                        "unknown key {key:?} for backend {kind}"
                    )))
                }
                Some(_) => {}
            }
            match key {
                "rf_bits" => {
                    b.rule_filter_bits = Some(value.parse().map_err(|_| bad())?);
                }
                "combine" => {
                    b.combine = Some(match value {
                        "first" => CombineStrategy::FirstLabel,
                        "probe" => CombineStrategy::PriorityProbe,
                        _ => return Err(bad()),
                    });
                }
                "inner" if kind == EngineKind::Cached => {
                    // The cached wrapper nests a *full* spec, not just a
                    // kind name, so the inner engine is tunable in place.
                    let inner_spec = strip_parens(value);
                    let inner = EngineBuilder::from_spec(inner_spec)
                        .map_err(|e| config_err(format!("inner spec {inner_spec:?}: {e}")))?;
                    if inner.kind == EngineKind::Cached {
                        return Err(config_err(
                            "the inner engine cannot itself be cached".to_string(),
                        ));
                    }
                    b.cache_inner = Some(Box::new(inner));
                }
                "inner" if kind == EngineKind::Snapshot => {
                    // Like the cached wrapper, the snapshot wrapper
                    // nests a *full* spec — `snapshot:inner=(sharded:
                    // shards=4)` gets the per-shard rebuild path.
                    let inner_spec = strip_parens(value);
                    let inner = EngineBuilder::from_spec(inner_spec)
                        .map_err(|e| config_err(format!("inner spec {inner_spec:?}: {e}")))?;
                    if inner.kind == EngineKind::Snapshot {
                        return Err(config_err(
                            "the inner engine cannot itself be a snapshot wrapper".to_string(),
                        ));
                    }
                    b.snapshot_inner = Some(Box::new(inner));
                }
                "inner" => {
                    let inner: EngineKind = value
                        .parse()
                        .map_err(|source| BuildError::UnknownKind { source })?;
                    if inner == EngineKind::Sharded {
                        return Err(config_err(
                            "the inner engine cannot itself be sharded".to_string(),
                        ));
                    }
                    if inner == EngineKind::Snapshot {
                        return Err(config_err(
                            "the snapshot wrapper serves concurrent readers; nest it \
                             outside, not inside, a sharded engine"
                                .to_string(),
                        ));
                    }
                    b.shard_inner = inner;
                }
                "flows" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    if n == 0 {
                        return Err(config_err(
                            "flows must be >= 1 (the cache needs at least one slot)".to_string(),
                        ));
                    }
                    if !n.is_power_of_two() {
                        eprintln!(
                            "warning: flows={n} is not a power of two; \
                             rounding up to {}",
                            n.next_power_of_two()
                        );
                    }
                    b.cache_flows = n;
                }
                "megaflow" => {
                    b.cache_megaflow = match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(bad()),
                    };
                }
                "tables" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    if n == 0 {
                        return Err(config_err(
                            "tables must be >= 1 (each tuple needs at least one slot)".to_string(),
                        ));
                    }
                    if !n.is_power_of_two() {
                        eprintln!(
                            "warning: tables={n} is not a power of two; \
                             rounding up to {}",
                            n.next_power_of_two()
                        );
                    }
                    b.tss_tables = n;
                }
                "capacity" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    if n == 0 {
                        return Err(config_err(
                            "capacity must be >= 1 (the TCAM needs at least one slot)".to_string(),
                        ));
                    }
                    b.tcam_capacity = n;
                }
                "partitions" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    if n == 0 {
                        return Err(config_err("partitions must be >= 1".to_string()));
                    }
                    b.tcam_partitions = n;
                }
                "optimize" => {
                    b.optimize = match value {
                        "off" => OptimizePolicy::Off,
                        "validated" => OptimizePolicy::Validated,
                        _ => return Err(bad()),
                    };
                }
                "shards" => {
                    let n: usize = value.parse().map_err(|_| bad())?;
                    if n == 0 {
                        return Err(config_err("shards must be >= 1".to_string()));
                    }
                    b.shard_count = n;
                }
                "strategy" => {
                    strategy_set = true;
                    b.shard_strategy = match value {
                        "prio" | "priority" | "bands" => ShardStrategy::PriorityBands,
                        "hash" | "field-hash" => ShardStrategy::FieldHash(DEFAULT_HASH_DIM),
                        _ => return Err(bad()),
                    };
                }
                "hash_dim" => {
                    // An unknown dimension is an unparseable value, the
                    // same class as combine=middle: BadOption.
                    hash_dim = Some(parse_dim(value).ok_or_else(bad)?);
                }
                "skew" => {
                    let skew: f64 = value.parse().map_err(|_| bad())?;
                    if !skew.is_finite() || skew < 1.0 {
                        return Err(config_err(format!(
                            "skew must be a finite factor >= 1.0, got {value}"
                        )));
                    }
                    skew_set = true;
                    b.band_skew = skew;
                }
                _ => unreachable!("every SPEC_KEYS entry is dispatched above"),
            }
        }
        // Cross-key validation (spec key order must not matter).
        if let Some(dim) = hash_dim {
            match b.shard_strategy {
                ShardStrategy::FieldHash(_) if strategy_set => {
                    b.shard_strategy = ShardStrategy::FieldHash(dim);
                }
                _ => {
                    return Err(BuildError::ConfigError {
                        option: format!("hash_dim={dim}"),
                        reason: "hash_dim requires strategy=hash".to_string(),
                    })
                }
            }
        }
        if skew_set && matches!(b.shard_strategy, ShardStrategy::FieldHash(_)) {
            return Err(BuildError::ConfigError {
                option: format!("skew={}", b.band_skew),
                reason: "skew tunes priority-band splitting; it requires strategy=prio".to_string(),
            });
        }
        if kind == EngineKind::SoftTcam && b.tcam_partitions > b.tcam_capacity {
            return Err(BuildError::ConfigError {
                option: format!("partitions={}", b.tcam_partitions),
                reason: format!("partitions must not exceed capacity ({})", b.tcam_capacity),
            });
        }
        if kind == EngineKind::Sharded
            && !b.shard_inner.is_configurable()
            && (b.rule_filter_bits.is_some() || b.combine.is_some())
        {
            return Err(BuildError::ConfigError {
                option: spec.to_string(),
                reason: format!(
                    "rf_bits/combine apply to configurable inner engines, not {}",
                    b.shard_inner
                ),
            });
        }
        Ok(b)
    }

    /// The backend this builder constructs.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Overrides the full architecture configuration (configurable
    /// backends; the builder still forces `ip_alg` to match the kind).
    pub fn with_arch_config(mut self, config: ArchConfig) -> Self {
        self.arch = Some(config);
        self
    }

    /// Overrides the Rule Filter address width (configurable backends).
    pub fn with_rule_filter_bits(mut self, bits: u32) -> Self {
        self.rule_filter_bits = Some(bits);
        self
    }

    /// Overrides the phase-3 combine strategy (configurable backends).
    pub fn with_combine(mut self, combine: CombineStrategy) -> Self {
        self.combine = Some(combine);
        self
    }

    /// Overrides the RFC phase-table entry cap.
    pub fn with_rfc_entry_cap(mut self, cap: u64) -> Self {
        self.rfc_entry_cap = cap;
        self
    }

    /// Overrides the HyperCuts tuning parameters.
    pub fn with_hypercuts_config(mut self, config: HyperCutsConfig) -> Self {
        self.hypercuts = config;
        self
    }

    /// Sets the shard count (sharded backend; 0 is clamped to 1 at
    /// build time).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shard_count = shards;
        self
    }

    /// Sets the rule-partitioning strategy (sharded backend).
    pub fn with_shard_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.shard_strategy = strategy;
        self
    }

    /// Sets the inner backend each shard runs (sharded backend).
    pub fn with_shard_inner(mut self, inner: EngineKind) -> Self {
        self.shard_inner = inner;
        self
    }

    /// Sets the band-rebalance skew factor (sharded backend, priority
    /// bands): under incremental updates a band splits once it exceeds
    /// `skew ×` its build-time quota. Values below 1.0 are clamped.
    pub fn with_band_skew(mut self, skew: f64) -> Self {
        self.band_skew = skew;
        self
    }

    /// Sets what [`EngineBuilder::build`] does with the pre-build audit.
    pub fn with_audit(mut self, policy: AuditPolicy) -> Self {
        self.audit = policy;
        self
    }

    /// Sets the microflow capacity (cached backend; rounded up to a
    /// power of two at build time, 0 is rejected there).
    pub fn with_cache_flows(mut self, flows: usize) -> Self {
        self.cache_flows = flows;
        self
    }

    /// Enables or disables the megaflow layer (cached backend).
    pub fn with_cache_megaflow(mut self, megaflow: bool) -> Self {
        self.cache_megaflow = megaflow;
        self
    }

    /// Sets the full builder for the cached wrapper's inner engine
    /// (cached backend; defaults to `configurable-bst`).
    pub fn with_cache_inner(mut self, inner: EngineBuilder) -> Self {
        self.cache_inner = Some(Box::new(inner));
        self
    }

    /// Sets the full builder for the snapshot wrapper's inner engine
    /// (snapshot backend; defaults to `configurable-bst`).
    pub fn with_snapshot_inner(mut self, inner: EngineBuilder) -> Self {
        self.snapshot_inner = Some(Box::new(inner));
        self
    }

    /// Sets the per-tuple hash-slot hint (tuple-space backend; rounded
    /// up to a power of two, minimum 4, by the structure).
    pub fn with_tss_tables(mut self, tables: usize) -> Self {
        self.tss_tables = tables;
        self
    }

    /// Sets the provisioned slot capacity (software-TCAM backend;
    /// 0 is clamped to 1 at build time).
    pub fn with_tcam_capacity(mut self, capacity: usize) -> Self {
        self.tcam_capacity = capacity;
        self
    }

    /// Sets the allocator partition count (software-TCAM backend;
    /// clamped to `1..=capacity` at build time).
    pub fn with_tcam_partitions(mut self, partitions: usize) -> Self {
        self.tcam_partitions = partitions;
        self
    }

    /// Sets whether [`EngineBuilder::build`] optimizes the rule set
    /// first (spec key `optimize=off|validated`; any backend).
    pub fn with_optimize(mut self, policy: OptimizePolicy) -> Self {
        self.optimize = policy;
        self
    }

    /// The analyzer limits matching what this builder would actually
    /// provision for `rules`: label and Rule Filter capacities are taken
    /// from the same [`ArchConfig`] that [`EngineBuilder::build`] uses
    /// (including Rule Filter auto-sizing), so audit predictions line up
    /// with the built engine.
    pub fn audit_limits(&self, rules: &RuleSet) -> AnalyzerLimits {
        let alg = match self.kind {
            EngineKind::ConfigurableMbt => IpAlg::Mbt,
            _ => IpAlg::Bst,
        };
        let cfg = self.arch_for(alg, rules);
        let w = cfg.label_widths;
        AnalyzerLimits::from_capacities(
            (1usize << w.ip).min(cfg.ip_label_entries),
            (1usize << w.port).min(cfg.port_label_entries),
            1usize << w.proto,
            cfg.rule_slots(),
        )
    }

    /// Runs the static pre-build audit over a rule set, judged against
    /// this builder's provisioning (see [`EngineBuilder::audit_limits`]).
    ///
    /// This never constructs an engine; it is cheap enough to run before
    /// every build of an untrusted set. [`EngineBuilder::with_audit`]
    /// folds it into [`EngineBuilder::build`] itself.
    pub fn audit(&self, rules: &RuleSet) -> RuleSetReport {
        spc_analyze::analyze_with(rules, &self.audit_limits(rules))
    }

    fn arch_for(&self, alg: IpAlg, rules: &RuleSet) -> ArchConfig {
        let mut cfg = self.arch.clone().unwrap_or_else(ArchConfig::large);
        cfg.ip_alg = alg;
        if let Some(bits) = self.rule_filter_bits {
            cfg.rule_filter_addr_bits = bits;
        } else if self.arch.is_none() {
            // Auto-size the Rule Filter to keep hash-probe chains short:
            // at least 4x the rule count, within the large() default.
            let mut bits = cfg.rule_filter_addr_bits;
            while (1usize << bits) < rules.len().saturating_mul(4) && bits < 22 {
                bits += 1;
            }
            cfg.rule_filter_addr_bits = bits;
        }
        if let Some(combine) = self.combine {
            cfg.combine = combine;
        }
        cfg
    }

    fn build_configurable(
        &self,
        alg: IpAlg,
        rules: &RuleSet,
    ) -> Result<ConfigurableEngine, BuildError> {
        let mut cls = Classifier::new(self.arch_for(alg, rules));
        cls.load(rules).map_err(|e| BuildError::Rejected {
            kind: self.kind,
            reason: e.to_string(),
        })?;
        Ok(ConfigurableEngine::new(cls))
    }

    pub(crate) fn build_sharded(&self, rules: &RuleSet) -> Result<ShardedEngine, BuildError> {
        if self.shard_inner == EngineKind::Sharded {
            return Err(BuildError::ConfigError {
                option: "inner=sharded".to_string(),
                reason: "the inner engine cannot itself be sharded".to_string(),
            });
        }
        if self.shard_inner == EngineKind::Snapshot {
            return Err(BuildError::ConfigError {
                option: "inner=snapshot".to_string(),
                reason: "the snapshot wrapper serves concurrent readers; nest it \
                         outside, not inside, a sharded engine"
                    .to_string(),
            });
        }
        let plan = shard::plan(rules, self.shard_count, self.shard_strategy);
        let router = shard::ShardRouter::from_plan(&plan, self.shard_count);
        // Each shard gets its own inner engine, provisioned for its own
        // slice (Rule Filter autosizing sees the shard's rule count, not
        // the global one — that per-shard right-sizing is half the win).
        let mut inner = EngineBuilder::new(self.shard_inner);
        inner.arch.clone_from(&self.arch);
        inner.rule_filter_bits = self.rule_filter_bits;
        inner.combine = self.combine;
        inner.rfc_entry_cap = self.rfc_entry_cap;
        inner.hypercuts = self.hypercuts;
        inner.tss_tables = self.tss_tables;
        inner.tcam_capacity = self.tcam_capacity;
        inner.tcam_partitions = self.tcam_partitions;
        let mut parts = Vec::with_capacity(plan.shards.len());
        for slice in plan.shards {
            let engine = inner.build(&slice.rules)?;
            parts.push((engine, slice));
        }
        // Capability probing delegates to the engines actually built,
        // not their registry kind: sharding stays updatable exactly when
        // every inner shard is.
        let updatable = parts.iter().all(|(engine, _)| engine.supports_updates());
        let mut engine = ShardedEngine::from_parts(parts, self.shard_strategy, self.shard_inner);
        if updatable {
            // Churn can open shards the plan never built (an empty hash
            // slot gaining its first rule, a band split): hand the
            // engine a factory for empty inners with identical
            // provisioning.
            let inner_builder = inner.clone();
            let factory: InnerFactory = Box::new(move || {
                inner_builder
                    .build(&RuleSet::new())
                    .map_err(|e| e.to_string())
            });
            engine.enable_updates(router, factory, self.band_skew);
        }
        Ok(engine)
    }

    pub(crate) fn build_cached(&self, rules: &RuleSet) -> Result<CachedEngine, BuildError> {
        let inner_builder = match &self.cache_inner {
            Some(b) => (**b).clone(),
            None => EngineBuilder::new(EngineKind::ConfigurableBst),
        };
        // The spec parser rejects `inner=cached`; this guards the
        // builder-method path.
        if inner_builder.kind == EngineKind::Cached {
            return Err(BuildError::ConfigError {
                option: "inner=cached".to_string(),
                reason: "the inner engine cannot itself be cached".to_string(),
            });
        }
        if self.cache_flows == 0 {
            return Err(BuildError::ConfigError {
                option: "flows=0".to_string(),
                reason: "flows must be >= 1 (the cache needs at least one slot)".to_string(),
            });
        }
        let inner = inner_builder.build(rules)?;
        Ok(CachedEngine::new(
            inner,
            self.cache_flows.next_power_of_two(),
            self.cache_megaflow,
            rules.rules(),
        ))
    }

    /// Builds the snapshot-swap wrapper as its concrete type, so callers
    /// can take [`crate::SnapshotReader`]s ([`crate::SnapshotEngine::reader`])
    /// — the trait object returned by [`EngineBuilder::build`] cannot
    /// hand those out. `inner` defaults to `configurable-bst`; a
    /// `sharded:` inner is decomposed so updates rebuild only the
    /// touched shard.
    ///
    /// # Errors
    ///
    /// As [`EngineBuilder::build`], plus [`BuildError::ConfigError`]
    /// for snapshot-in-snapshot nesting.
    pub fn build_snapshot(&self, rules: &RuleSet) -> Result<crate::SnapshotEngine, BuildError> {
        let inner = match &self.snapshot_inner {
            Some(b) => (**b).clone(),
            None => EngineBuilder::new(EngineKind::ConfigurableBst),
        };
        // The spec parser rejects `inner=snapshot`; this guards the
        // builder-method path.
        if inner.kind == EngineKind::Snapshot {
            return Err(BuildError::ConfigError {
                option: "inner=snapshot".to_string(),
                reason: "the inner engine cannot itself be a snapshot wrapper".to_string(),
            });
        }
        if inner.kind == EngineKind::Sharded {
            if inner.shard_inner == EngineKind::Sharded || inner.shard_inner == EngineKind::Snapshot
            {
                return Err(BuildError::ConfigError {
                    option: format!("inner={}", inner.shard_inner),
                    reason: "invalid shard inner for a snapshot wrapper".to_string(),
                });
            }
            let plan = shard::plan(rules, inner.shard_count, inner.shard_strategy);
            let router = shard::ShardRouter::from_plan(&plan, inner.shard_count);
            // Per-shard inner provisioning, exactly as `build_sharded`
            // derives it: Rule Filter autosizing sees shard-local counts.
            let mut per = EngineBuilder::new(inner.shard_inner);
            per.arch.clone_from(&inner.arch);
            per.rule_filter_bits = inner.rule_filter_bits;
            per.combine = inner.combine;
            per.rfc_entry_cap = inner.rfc_entry_cap;
            per.hypercuts = inner.hypercuts;
            per.tss_tables = inner.tss_tables;
            per.tcam_capacity = inner.tcam_capacity;
            per.tcam_partitions = inner.tcam_partitions;
            crate::SnapshotEngine::from_sharded(plan, router, per, inner.shard_strategy)
        } else {
            crate::SnapshotEngine::from_single(rules, inner)
        }
    }

    /// Builds the backend over a rule set.
    ///
    /// # Errors
    ///
    /// [`BuildError::DuplicateRules`] when two rules have identical match
    /// conditions (checked up front on every backend),
    /// [`BuildError::AuditRejected`] when
    /// [`AuditPolicy::RejectErrors`] is set and the audit finds
    /// error-level issues, [`BuildError::OptimizeFailed`] when
    /// [`OptimizePolicy::Validated`] is set and the optimizer's output
    /// fails equivalence validation, and [`BuildError::Rejected`] when
    /// the backend cannot hold the set (provisioning limits, RFC entry
    /// cap).
    pub fn build(&self, rules: &RuleSet) -> Result<Box<dyn PacketClassifier>, BuildError> {
        // Duplicate 5-tuples are unrepresentable on the configurable
        // architecture; reject them uniformly so a set either builds on
        // every backend or on none. The check runs on the set as given,
        // before any optimization, so registry semantics do not depend
        // on the optimize policy.
        let mut first_seen: HashMap<[DimValue; 7], RuleId> = HashMap::new();
        for (id, rule) in rules.iter() {
            if let Some(&first) = first_seen.get(&rule.dim_values()) {
                return Err(BuildError::DuplicateRules { first, dup: id });
            }
            first_seen.insert(rule.dim_values(), id);
        }
        drop(first_seen);
        match self.audit {
            AuditPolicy::Off => {}
            AuditPolicy::Warn => {
                let report = self.audit(rules);
                for finding in &report.findings {
                    eprintln!("audit: {finding}");
                }
            }
            AuditPolicy::RejectErrors => {
                let report = self.audit(rules);
                if report.has_errors() {
                    let errors: Vec<_> = report.at_severity(spc_analyze::Severity::Error).collect();
                    return Err(BuildError::AuditRejected {
                        errors: errors.len(),
                        first: errors[0].message.clone(),
                    });
                }
            }
        }
        match self.optimize {
            OptimizePolicy::Off => self.build_raw(rules),
            OptimizePolicy::Validated => {
                let opt =
                    spc_analyze::optimize(rules, &spc_analyze::OptimizeConfig::id_preserving())
                        .map_err(|e| BuildError::OptimizeFailed {
                            reason: e.to_string(),
                        })?;
                let inner = self.build_raw(&opt.rules)?;
                Ok(Box::new(crate::OptimizedEngine::new(inner, &opt, rules)))
            }
        }
    }

    /// The kind dispatch, after all set-level checks: builds the backend
    /// from exactly the rules it is given.
    fn build_raw(&self, rules: &RuleSet) -> Result<Box<dyn PacketClassifier>, BuildError> {
        Ok(match self.kind {
            EngineKind::ConfigurableMbt => Box::new(self.build_configurable(IpAlg::Mbt, rules)?),
            EngineKind::ConfigurableBst => Box::new(self.build_configurable(IpAlg::Bst, rules)?),
            EngineKind::Linear => Box::new(BaselineEngine::new(
                self.kind,
                LinearSearch::build(rules),
                rules,
            )),
            EngineKind::HyperCuts => Box::new(BaselineEngine::new(
                self.kind,
                HyperCuts::build(rules, self.hypercuts),
                rules,
            )),
            EngineKind::Rfc => {
                let rfc =
                    Rfc::build(rules, self.rfc_entry_cap).map_err(|e| BuildError::Rejected {
                        kind: self.kind,
                        reason: e.to_string(),
                    })?;
                Box::new(BaselineEngine::new(self.kind, rfc, rules))
            }
            EngineKind::Dcfl => Box::new(BaselineEngine::new(self.kind, Dcfl::build(rules), rules)),
            EngineKind::Option1 => Box::new(BaselineEngine::new(
                self.kind,
                OptionClassifier::build(rules, OptionKind::One),
                rules,
            )),
            EngineKind::Option2 => Box::new(BaselineEngine::new(
                self.kind,
                OptionClassifier::build(rules, OptionKind::Two),
                rules,
            )),
            EngineKind::Sharded => Box::new(self.build_sharded(rules)?),
            EngineKind::Cached => Box::new(self.build_cached(rules)?),
            EngineKind::Snapshot => Box::new(self.build_snapshot(rules)?),
            EngineKind::TupleSpace => Box::new(
                crate::TupleSpaceEngine::build(rules, self.tss_tables).map_err(|e| {
                    BuildError::Rejected {
                        kind: self.kind,
                        reason: e.to_string(),
                    }
                })?,
            ),
            EngineKind::SoftTcam => Box::new(
                crate::SoftTcamEngine::build(rules, self.tcam_capacity, self.tcam_partitions)
                    .map_err(|e| BuildError::Rejected {
                        kind: self.kind,
                        reason: e.to_string(),
                    })?,
            ),
        })
    }
}

/// One-shot convenience: parse a spec and build over a rule set.
///
/// # Errors
///
/// As [`EngineBuilder::from_spec`] and [`EngineBuilder::build`].
pub fn build_engine(spec: &str, rules: &RuleSet) -> Result<Box<dyn PacketClassifier>, BuildError> {
    EngineBuilder::from_spec(spec)?.build(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Action, Header, PortRange, Priority, ProtoSpec, Rule};

    fn rules() -> RuleSet {
        RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::exact(80))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(1))
                .build(),
            Rule::builder(Priority(1)).action(Action::Drop).build(),
        ])
    }

    #[test]
    fn every_registry_kind_builds_and_classifies() {
        let rules = rules();
        let h = Header::new([9, 9, 9, 9].into(), [8, 8, 8, 8].into(), 1, 80, 6);
        for kind in EngineKind::ALL {
            let e = EngineBuilder::new(kind).build(&rules).unwrap();
            assert_eq!(e.kind(), kind);
            assert_eq!(e.rules(), 2, "{kind}");
            assert_eq!(e.classify(&h).priority, Some(Priority(0)), "{kind}");
            assert!(e.memory_bits() > 0, "{kind}");
            // Update capability delegates to the built engine, not the
            // registry kind: the default sharded and cached configs wrap
            // configurable-bst inners, so they are updatable too. The
            // snapshot wrapper is updatable regardless of its inner —
            // build-once inners are rebuilt wholesale per update. The
            // tuple-space and software-TCAM backends are update-first by
            // design.
            let expected = kind.is_configurable()
                || kind == EngineKind::Sharded
                || kind == EngineKind::Cached
                || kind == EngineKind::Snapshot
                || kind == EngineKind::TupleSpace
                || kind == EngineKind::SoftTcam;
            assert_eq!(e.supports_updates(), expected, "{kind}");
        }
    }

    #[test]
    fn sharded_capability_follows_the_inner_engines() {
        let rules = rules();
        // Configurable inners keep the §V.A update path alive...
        for spec in [
            "sharded:inner=configurable-bst,shards=2,strategy=prio",
            "sharded:inner=configurable-mbt,shards=2,strategy=hash",
        ] {
            let e = build_engine(spec, &rules).unwrap();
            assert!(e.supports_updates(), "{spec}");
        }
        // ...build-once inners do not.
        for spec in ["sharded:inner=linear,shards=2", "sharded:inner=hypercuts"] {
            let mut e = build_engine(spec, &rules).unwrap();
            assert!(!e.supports_updates(), "{spec}");
            assert!(matches!(
                e.insert(Rule::any(Priority(9))),
                Err(crate::UpdateError::Unsupported { .. })
            ));
        }
    }

    #[test]
    fn skew_spec_rules() {
        // skew parses and reaches the builder on the prio strategy.
        let b = EngineBuilder::from_spec("sharded:strategy=prio,skew=1.5").unwrap();
        assert!((b.band_skew - 1.5).abs() < 1e-12);
        // Default strategy is prio, so a bare skew is fine too.
        assert!(EngineBuilder::from_spec("sharded:skew=3").is_ok());
        // Malformed values are BadOption; out-of-range and
        // strategy-mismatched ones are ConfigError.
        assert!(matches!(
            EngineBuilder::from_spec("sharded:skew=fast"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("sharded:skew=0.5"),
            Err(BuildError::ConfigError { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("sharded:strategy=hash,skew=2"),
            Err(BuildError::ConfigError { .. })
        ));
        // skew is a sharded key, nobody else's.
        assert!(matches!(
            EngineBuilder::from_spec("linear:skew=2"),
            Err(BuildError::ConfigError { .. })
        ));
    }

    #[test]
    fn bad_option_key_list_tracks_the_parser_table() {
        let msg = BuildError::BadOption {
            option: "x".to_string(),
        }
        .to_string();
        for &(key, scope) in SPEC_KEYS {
            assert!(msg.contains(key), "BadOption must list {key:?}: {msg}");
            // Every table entry is live grammar: with a garbage value a
            // backend in the key's scope must fail on the *value*, never
            // with an unknown-key rejection.
            let probe = match scope {
                KeyScope::Cached => "cached",
                KeyScope::TupleSpace => "tss",
                KeyScope::Tcam => "tcam",
                _ => "sharded",
            };
            let e = EngineBuilder::from_spec(&format!("{probe}:{key}=\u{2301}")).unwrap_err();
            let rejected_key = matches!(
                &e,
                BuildError::ConfigError { reason, .. } if reason.contains("unknown key")
            );
            assert!(!rejected_key, "{key:?} fell out of the parser: {e}");
        }
    }

    #[test]
    fn spec_options_reach_the_classifier() {
        let rules = rules();
        let b = EngineBuilder::from_spec("configurable-mbt:rf_bits=14,combine=first").unwrap();
        assert_eq!(b.kind(), EngineKind::ConfigurableMbt);
        // Inspect the *built* engine's live config through the adapter
        // accessor, so dropping the parsed options in build() would fail
        // here.
        let engine = b.build_configurable(IpAlg::Mbt, &rules).unwrap();
        let cfg = engine.classifier().config();
        assert_eq!(cfg.rule_filter_addr_bits, 14);
        assert_eq!(cfg.combine, CombineStrategy::FirstLabel);
        assert_eq!(cfg.ip_alg, IpAlg::Mbt);
    }

    #[test]
    fn bad_specs_fail_loudly() {
        assert!(matches!(
            EngineBuilder::from_spec("warp-drive"),
            Err(BuildError::UnknownKind { .. })
        ));
        // Unknown keys are a hard ConfigError on every kind.
        assert!(matches!(
            EngineBuilder::from_spec("linear:frobnicate=1"),
            Err(BuildError::ConfigError { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("sharded:frobnicate=1"),
            Err(BuildError::ConfigError { .. })
        ));
        // Malformed values stay BadOption.
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:rf_bits=banana"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:combine=middle"),
            Err(BuildError::BadOption { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:rf_bits"),
            Err(BuildError::BadOption { .. })
        ));
        // Keys for another backend must fail loudly, not be silently
        // discarded.
        assert!(matches!(
            EngineBuilder::from_spec("rfc:combine=first"),
            Err(BuildError::ConfigError { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("dcfl:rf_bits=20"),
            Err(BuildError::ConfigError { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("linear:shards=4"),
            Err(BuildError::ConfigError { .. })
        ));
        // Duplicated keys are ambiguous, not last-wins.
        assert!(matches!(
            EngineBuilder::from_spec("configurable-mbt:rf_bits=14,rf_bits=12"),
            Err(BuildError::ConfigError { .. })
        ));
    }

    #[test]
    fn sharded_spec_options_reach_the_engine() {
        let rules = rules();
        let b = EngineBuilder::from_spec(
            "sharded:inner=linear,shards=2,strategy=hash,hash_dim=dst_port",
        )
        .unwrap();
        assert_eq!(b.kind(), EngineKind::Sharded);
        let engine = b.build_sharded(&rules).unwrap();
        assert_eq!(engine.inner_kind(), EngineKind::Linear);
        assert_eq!(engine.strategy(), ShardStrategy::FieldHash(Dim::DstPort));
        assert!(engine.shard_count() <= 2);
        assert_eq!(engine.rules(), 2);

        // strategy=hash alone picks the default dimension.
        let b = EngineBuilder::from_spec("sharded:strategy=hash").unwrap();
        let engine = b.build_sharded(&rules).unwrap();
        assert!(matches!(engine.strategy(), ShardStrategy::FieldHash(_)));

        // rf_bits flows through to configurable inner shards.
        let b =
            EngineBuilder::from_spec("sharded:inner=configurable-mbt,shards=2,rf_bits=13").unwrap();
        assert!(b.build_sharded(&rules).is_ok());
    }

    #[test]
    fn sharded_spec_inconsistencies_are_config_errors() {
        for spec in [
            "sharded:inner=sharded",                // recursive sharding
            "sharded:shards=0",                     // no shards
            "sharded:hash_dim=dst_port",            // hash_dim without strategy=hash
            "sharded:strategy=prio,hash_dim=proto", // same, explicit prio
            "sharded:inner=linear,rf_bits=14",      // rf_bits needs configurable inner
            "sharded:inner=linear,combine=probe",   // combine likewise
        ] {
            assert!(
                matches!(
                    EngineBuilder::from_spec(spec),
                    Err(BuildError::ConfigError { .. })
                ),
                "{spec} must be a ConfigError"
            );
        }
        assert!(matches!(
            EngineBuilder::from_spec("sharded:inner=quantum"),
            Err(BuildError::UnknownKind { .. })
        ));
        assert!(matches!(
            EngineBuilder::from_spec("sharded:shards=many"),
            Err(BuildError::BadOption { .. })
        ));
        // An unknown dimension name is an unparseable value: BadOption,
        // like combine=middle.
        assert!(matches!(
            EngineBuilder::from_spec("sharded:strategy=hash,hash_dim=warp"),
            Err(BuildError::BadOption { .. })
        ));
        // The builder-method path is validated at build time.
        let e = EngineBuilder::new(EngineKind::Sharded)
            .with_shard_inner(EngineKind::Sharded)
            .build(&rules());
        assert!(matches!(e, Err(BuildError::ConfigError { .. })));
    }

    #[test]
    fn spec_key_order_does_not_matter() {
        let rules = rules();
        for spec in [
            "sharded:strategy=hash,hash_dim=proto,inner=linear",
            "sharded:hash_dim=proto,strategy=hash,inner=linear",
            "sharded:inner=linear,hash_dim=proto,strategy=hash",
        ] {
            let e = EngineBuilder::from_spec(spec)
                .unwrap()
                .build_sharded(&rules);
            assert_eq!(
                e.unwrap().strategy(),
                ShardStrategy::FieldHash(Dim::Proto),
                "{spec}"
            );
        }
    }

    #[test]
    fn duplicate_rules_reject_on_every_backend() {
        // Identical match conditions (priorities differ — they are not
        // part of the filter) are a uniform hard error: no backend may
        // accept a set another backend must reject.
        let dup = RuleSet::from_rules(vec![Rule::any(Priority(0)), Rule::any(Priority(1))]);
        for kind in EngineKind::ALL {
            let e = EngineBuilder::new(kind).build(&dup);
            assert!(
                matches!(
                    e,
                    Err(BuildError::DuplicateRules {
                        first: spc_types::RuleId(0),
                        dup: spc_types::RuleId(1),
                    })
                ),
                "{kind} must reject duplicate 5-tuples"
            );
        }
        // Same conditions *and* different fields: fine everywhere.
        let ok = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::builder(Priority(1))
                .dst_port(PortRange::exact(80))
                .build(),
        ]);
        for kind in EngineKind::ALL {
            assert!(EngineBuilder::new(kind).build(&ok).is_ok(), "{kind}");
        }
    }

    #[test]
    fn audit_surfaces_findings_and_matches_provisioning() {
        let rules = rules();
        let b = EngineBuilder::new(EngineKind::ConfigurableBst);
        let report = b.audit(&rules);
        // Rule 1 is a catch-all below a specific rule: clean, no shadows.
        assert!(report.shadowed_rules().is_empty());
        assert!(!report.has_errors());
        // Limits mirror the exact config build() would use, including
        // Rule Filter auto-sizing.
        let limits = b.audit_limits(&rules);
        let cfg = b.arch_for(IpAlg::Bst, &rules);
        assert_eq!(limits.rule_filter_slots, cfg.rule_slots());
    }

    #[test]
    fn audit_policy_rejects_error_sets() {
        // 9 distinct filters against a 4-slot Rule Filter: the audit
        // predicts overflow as an error before any engine is built.
        let rules: RuleSet = (0..9u16)
            .map(|i| {
                Rule::builder(Priority(u32::from(i)))
                    .dst_port(PortRange::exact(i))
                    .proto(ProtoSpec::Exact(6))
                    .build()
            })
            .collect();
        let b = EngineBuilder::new(EngineKind::ConfigurableBst)
            .with_rule_filter_bits(2)
            .with_audit(crate::AuditPolicy::RejectErrors);
        let e = b.build(&rules);
        assert!(
            matches!(e, Err(BuildError::AuditRejected { errors, .. }) if errors >= 1),
            "audit must reject the overflowing set"
        );
        // The same build without the audit fails later, inside the
        // engine, with a less specific capacity error.
        let raw = EngineBuilder::new(EngineKind::ConfigurableBst)
            .with_rule_filter_bits(2)
            .build(&rules);
        assert!(matches!(raw, Err(BuildError::Rejected { .. })));
        // Warning-level findings (a shadowed rule) do not reject.
        let shadowing = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::builder(Priority(1))
                .dst_port(PortRange::exact(80))
                .build(),
        ]);
        let b = EngineBuilder::new(EngineKind::ConfigurableBst)
            .with_audit(crate::AuditPolicy::RejectErrors);
        assert!(b.audit(&shadowing).max_severity() == Some(spc_analyze::Severity::Warning));
        assert!(b.build(&shadowing).is_ok());
    }

    #[test]
    fn cached_spec_options_reach_the_engine() {
        let rules = rules();
        let b = EngineBuilder::from_spec("cached:inner=linear,flows=128,megaflow=off").unwrap();
        assert_eq!(b.kind(), EngineKind::Cached);
        let engine = b.build_cached(&rules).unwrap();
        assert_eq!(engine.inner().kind(), EngineKind::Linear);
        assert!(!engine.has_megaflow());

        // Defaults: configurable-bst inner, megaflow on.
        let engine = EngineBuilder::from_spec("cached")
            .unwrap()
            .build_cached(&rules)
            .unwrap();
        assert_eq!(engine.inner().kind(), EngineKind::ConfigurableBst);
        assert!(engine.has_megaflow());
        assert!(engine.supports_updates());

        // A nested inner spec tunes the inner engine in place; parens
        // protect its commas from the outer split.
        let engine =
            EngineBuilder::from_spec("cached:inner=(sharded:inner=linear,shards=2),flows=64")
                .unwrap()
                .build_cached(&rules)
                .unwrap();
        assert_eq!(engine.inner().kind(), EngineKind::Sharded);
        // Colon-style nested options work without parens when comma-free.
        let engine = EngineBuilder::from_spec("cached:inner=configurable-mbt:rf_bits=14")
            .unwrap()
            .build_cached(&rules)
            .unwrap();
        assert_eq!(engine.inner().kind(), EngineKind::ConfigurableMbt);
    }

    #[test]
    fn cached_spec_inconsistencies_are_config_errors() {
        // flows=0 is a typed ConfigError at parse time...
        let e = EngineBuilder::from_spec("cached:flows=0").unwrap_err();
        assert!(
            matches!(&e, BuildError::ConfigError { reason, .. } if reason.contains("flows")),
            "{e}"
        );
        // ...and at build time through the builder-method path.
        let e = EngineBuilder::new(EngineKind::Cached)
            .with_cache_flows(0)
            .build(&rules())
            .unwrap_err();
        assert!(matches!(e, BuildError::ConfigError { .. }));
        // A cached wrapper inside a cached wrapper is rejected.
        assert!(matches!(
            EngineBuilder::from_spec("cached:inner=cached"),
            Err(BuildError::ConfigError { .. })
        ));
        // A broken nested spec carries the inner parser's message.
        let e = EngineBuilder::from_spec("cached:inner=(linear:frobnicate=1)").unwrap_err();
        match &e {
            BuildError::ConfigError { reason, .. } => {
                assert!(
                    reason.contains("frobnicate"),
                    "inner message kept: {reason}"
                );
            }
            other => panic!("expected ConfigError, got {other}"),
        }
        // Cache keys belong to the cached backend only; rf_bits does not
        // forward through the wrapper (tune the nested inner spec).
        for spec in [
            "linear:flows=64",
            "sharded:megaflow=on",
            "cached:rf_bits=14",
            "cached:megaflow=sideways",
        ] {
            assert!(
                EngineBuilder::from_spec(spec).is_err(),
                "{spec} must be rejected"
            );
        }
    }

    #[test]
    fn tuplespace_and_tcam_spec_options_reach_the_engine() {
        let rules = rules();
        let e = build_engine("tss:tables=16", &rules).unwrap();
        assert_eq!(e.kind(), EngineKind::TupleSpace);
        assert!(e.supports_updates());
        let e = build_engine("tcam:capacity=1024,partitions=4", &rules).unwrap();
        assert_eq!(e.kind(), EngineKind::SoftTcam);
        assert!(e.supports_updates());
        // Both compose as wrapper inners and under sharding.
        for spec in [
            "cached:inner=tss,flows=64",
            "snapshot:inner=(tcam:capacity=4096)",
            "sharded:inner=tss,shards=2",
            "sharded:inner=tcam,shards=2",
        ] {
            let e = build_engine(spec, &rules).unwrap();
            assert_eq!(e.rules(), 2, "{spec}");
            assert!(e.supports_updates(), "{spec}");
        }
    }

    #[test]
    fn tuplespace_and_tcam_spec_errors_are_typed() {
        // Malformed values are BadOption.
        for spec in ["tss:tables=lots", "tcam:capacity=big", "tcam:partitions=x"] {
            assert!(
                matches!(
                    EngineBuilder::from_spec(spec),
                    Err(BuildError::BadOption { .. })
                ),
                "{spec} must be BadOption"
            );
        }
        // Out-of-range and inconsistent values are ConfigError.
        for spec in [
            "tss:tables=0",
            "tcam:capacity=0",
            "tcam:partitions=0",
            "tcam:capacity=4,partitions=8",
            "tcam:partitions=8,capacity=4", // key order must not matter
        ] {
            assert!(
                matches!(
                    EngineBuilder::from_spec(spec),
                    Err(BuildError::ConfigError { .. })
                ),
                "{spec} must be ConfigError"
            );
        }
        // Each backend's keys belong to it alone.
        for spec in [
            "tcam:tables=8",
            "tss:capacity=64",
            "linear:partitions=2",
            "sharded:inner=tss,tables=8",
        ] {
            assert!(
                matches!(
                    EngineBuilder::from_spec(spec),
                    Err(BuildError::ConfigError { .. })
                ),
                "{spec} must be ConfigError"
            );
        }
        // A rule set whose expansion overflows the TCAM is a typed
        // build rejection, not a panic.
        let wide = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .src_port(PortRange::new(1000, 40000).unwrap())
            .build()]);
        let e = EngineBuilder::from_spec("tcam:capacity=4,partitions=2")
            .unwrap()
            .build(&wide);
        assert!(
            matches!(&e, Err(BuildError::Rejected { kind, reason })
                if *kind == EngineKind::SoftTcam && reason.contains("capacity")),
            "expected a capacity rejection, got {e:?}"
        );
    }

    #[test]
    fn rule_filter_autosizing_scales() {
        let b = EngineBuilder::new(EngineKind::ConfigurableMbt);
        let small = b.arch_for(IpAlg::Mbt, &rules());
        assert_eq!(
            small.rule_filter_addr_bits,
            ArchConfig::large().rule_filter_addr_bits
        );
        let many: RuleSet = (0..40_000u32)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .build()
            })
            .collect();
        let big = b.arch_for(IpAlg::Mbt, &many);
        assert!(big.rule_filter_addr_bits > ArchConfig::large().rule_filter_addr_bits);
    }
}
