//! [`PacketClassifier`] for the Table I comparison algorithms.

use crate::{EngineKind, MatchHandle, PacketClassifier, Verdict};
use spc_baselines::Baseline;
use spc_types::{Action, Header, MaskSummary, Priority, RuleSet};
use std::fmt;

/// Adapts any [`Baseline`] to the unified API.
///
/// Baselines report only the matched [`spc_types::RuleId`] and the access
/// count; the adapter keeps a priority/action/mask side table (indexed by
/// rule id, which every baseline takes from the build-time [`RuleSet`])
/// so a [`Verdict`] is as informative as the configurable architecture's
/// — including the [`MatchHandle`] a flow cache keys on.
pub struct BaselineEngine<B> {
    kind: EngineKind,
    inner: B,
    meta: Vec<(Priority, Action, MaskSummary)>,
}

impl<B: Baseline> BaselineEngine<B> {
    /// Wraps a built baseline together with the rule set it was built
    /// from (for verdict enrichment).
    pub fn new(kind: EngineKind, inner: B, rules: &RuleSet) -> Self {
        let meta = rules
            .rules()
            .iter()
            .map(|r| (r.priority, r.action, MaskSummary::of_rule(r)))
            .collect();
        BaselineEngine { kind, inner, meta }
    }

    /// The wrapped baseline, for algorithm-specific probes (tree depth,
    /// class counts, ...).
    pub fn baseline(&self) -> &B {
        &self.inner
    }
}

impl<B: fmt::Debug> fmt::Debug for BaselineEngine<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaselineEngine")
            .field("kind", &self.kind)
            .field("rules", &self.meta.len())
            .field("inner", &self.inner)
            .finish()
    }
}

impl<B: Baseline + fmt::Debug + Send + Sync> PacketClassifier for BaselineEngine<B> {
    fn kind(&self) -> EngineKind {
        self.kind
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn rules(&self) -> usize {
        self.meta.len()
    }

    fn classify(&self, header: &Header) -> Verdict {
        let r = self.inner.classify(header);
        match r.rule {
            Some(id) => {
                let (priority, action, mask_summary) = self.meta[id.0 as usize];
                Verdict::hit(
                    MatchHandle {
                        id,
                        priority,
                        mask_summary,
                    },
                    action,
                    r.accesses,
                )
            }
            None => Verdict::miss(r.accesses),
        }
    }

    fn memory_bits(&self) -> u64 {
        self.inner.memory_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UpdateError;
    use spc_baselines::LinearSearch;
    use spc_types::{PortRange, Priority, ProtoSpec, Rule, RuleId};

    fn tiny_set() -> RuleSet {
        RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::exact(80))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(9))
                .build(),
            Rule::builder(Priority(1)).action(Action::Drop).build(),
        ])
    }

    #[test]
    fn verdicts_are_enriched() {
        let rules = tiny_set();
        let e = BaselineEngine::new(EngineKind::Linear, LinearSearch::build(&rules), &rules);
        assert_eq!(e.name(), "LinearSearch");
        assert_eq!(e.rules(), 2);
        let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 80, 6);
        let v = e.classify(&h);
        assert_eq!(v.rule, Some(RuleId(0)));
        assert_eq!(v.priority, Some(Priority(0)));
        assert_eq!(v.action, Some(Action::Forward(9)));
        assert!(v.mem_reads > 0);
        let other = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 81, 17);
        assert_eq!(e.classify(&other).action, Some(Action::Drop));
    }

    #[test]
    fn updates_are_probed_unsupported() {
        let rules = tiny_set();
        let mut e = BaselineEngine::new(EngineKind::Linear, LinearSearch::build(&rules), &rules);
        assert!(!e.supports_updates());
        assert!(matches!(
            e.insert(Rule::builder(Priority(5)).build()),
            Err(UpdateError::Unsupported {
                engine: "LinearSearch"
            })
        ));
        assert!(matches!(
            e.remove(RuleId(0)),
            Err(UpdateError::Unsupported { .. })
        ));
    }
}
