//! The backend registry.

use std::fmt;
use std::str::FromStr;

/// Every classifier backend the workspace can construct.
///
/// The two `Configurable*` entries are the paper's architecture under each
/// `IPalg_s` setting; the rest are the Table I comparison algorithms.
/// Parse one from a string (`"hypercuts"`, `"configurable-bst"`, ...) or
/// iterate [`EngineKind::ALL`] for a full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The configurable architecture, multi-bit-trie IP mode (speed).
    ConfigurableMbt,
    /// The configurable architecture, BST IP mode (density).
    ConfigurableBst,
    /// Priority-ordered linear search — the semantic oracle.
    Linear,
    /// HyperCuts decision-tree cutting.
    HyperCuts,
    /// Recursive Flow Classification.
    Rfc,
    /// Distributed Crossproducting of Field Labels.
    Dcfl,
    /// Table I "Option 1": 5-level IP tries + 4-level port tries.
    Option1,
    /// Table I "Option 2": 4-level IP tries + 5-level port tries.
    Option2,
    /// Partitioned multi-classifier: N inner engines over rule-set
    /// shards, verdicts merged by priority (see `ShardedEngine`).
    Sharded,
    /// Flow verdict cache in front of any inner backend: exact-match
    /// microflow table plus an optional masked megaflow layer (see
    /// `CachedEngine`).
    Cached,
    /// Snapshot-swap concurrent-serving wrapper: readers classify
    /// against an immutable published snapshot while updates rebuild
    /// and atomically publish the next one (see `SnapshotEngine`).
    Snapshot,
    /// Tuple-space search: rules grouped by mask signature into one
    /// hash table per tuple, probed in best-priority order; an update
    /// touches exactly one tuple (see `TupleSpaceEngine`).
    TupleSpace,
    /// Software TCAM: priority-ordered mask/value entries scanned
    /// first-match, with a partitioned allocator whose shift-on-insert
    /// cost is surfaced per update (see `SoftTcamEngine`).
    SoftTcam,
}

impl EngineKind {
    /// Every backend, in the order the paper's tables list them
    /// (workspace-grown backends follow the paper's rows).
    pub const ALL: [EngineKind; 13] = [
        EngineKind::ConfigurableMbt,
        EngineKind::ConfigurableBst,
        EngineKind::Linear,
        EngineKind::HyperCuts,
        EngineKind::Rfc,
        EngineKind::Dcfl,
        EngineKind::Option1,
        EngineKind::Option2,
        EngineKind::Sharded,
        EngineKind::Cached,
        EngineKind::Snapshot,
        EngineKind::TupleSpace,
        EngineKind::SoftTcam,
    ];

    /// The canonical config-string spelling ([`FromStr`] inverse).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::ConfigurableMbt => "configurable-mbt",
            EngineKind::ConfigurableBst => "configurable-bst",
            EngineKind::Linear => "linear",
            EngineKind::HyperCuts => "hypercuts",
            EngineKind::Rfc => "rfc",
            EngineKind::Dcfl => "dcfl",
            EngineKind::Option1 => "option1",
            EngineKind::Option2 => "option2",
            EngineKind::Sharded => "sharded",
            EngineKind::Cached => "cached",
            EngineKind::Snapshot => "snapshot",
            EngineKind::TupleSpace => "tss",
            EngineKind::SoftTcam => "tcam",
        }
    }

    /// Accepted alternative spellings, beyond the canonical
    /// [`EngineKind::as_str`] name. [`FromStr`] is derived from this
    /// table plus the canonical names — extend it here, never in the
    /// parser.
    pub fn aliases(self) -> &'static [&'static str] {
        match self {
            EngineKind::ConfigurableMbt => &["configurable_mbt", "mbt"],
            EngineKind::ConfigurableBst => &["configurable_bst", "bst"],
            EngineKind::Linear => &["linear-search"],
            EngineKind::HyperCuts => &[],
            EngineKind::Rfc => &[],
            EngineKind::Dcfl => &[],
            EngineKind::Option1 => &["option-1"],
            EngineKind::Option2 => &["option-2"],
            EngineKind::Sharded => &[],
            EngineKind::Cached => &[],
            EngineKind::Snapshot => &[],
            EngineKind::TupleSpace => &["tuple-space", "tuplespace"],
            EngineKind::SoftTcam => &["soft-tcam"],
        }
    }

    /// Whether this is the paper's configurable architecture (and hence
    /// supports fast incremental updates).
    pub fn is_configurable(self) -> bool {
        matches!(
            self,
            EngineKind::ConfigurableMbt | EngineKind::ConfigurableBst
        )
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing an [`EngineKind`] or an engine spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    /// The unrecognised input.
    pub input: String,
}

impl fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine kind {:?}; expected one of: {}",
            self.input,
            EngineKind::ALL.map(EngineKind::as_str).join(", ")
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl FromStr for EngineKind {
    type Err = ParseEngineKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        EngineKind::ALL
            .into_iter()
            .find(|k| k.as_str() == lower || k.aliases().contains(&lower.as_str()))
            .ok_or_else(|| ParseEngineKindError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.as_str().parse::<EngineKind>().unwrap(), kind);
        }
    }

    #[test]
    fn aliases_and_case() {
        assert_eq!(
            "MBT".parse::<EngineKind>().unwrap(),
            EngineKind::ConfigurableMbt
        );
        assert_eq!(
            "HyperCuts".parse::<EngineKind>().unwrap(),
            EngineKind::HyperCuts
        );
        assert_eq!(
            "option-2".parse::<EngineKind>().unwrap(),
            EngineKind::Option2
        );
    }

    #[test]
    fn unknown_kind_lists_options() {
        let e = "quantum".parse::<EngineKind>().unwrap_err();
        assert!(e.to_string().contains("configurable-mbt"), "{e}");
    }

    #[test]
    fn registry_is_exhaustive_and_distinct() {
        let mut names: Vec<&str> = EngineKind::ALL.map(EngineKind::as_str).to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EngineKind::ALL.len());
    }

    #[test]
    fn all_lists_every_variant_exactly_once() {
        // The exhaustive match makes the compiler flag any variant a
        // future edit adds; the `seen` check flags one missing from (or
        // duplicated in) `ALL`. Together they keep `ALL` in lock-step
        // with the enum.
        fn ordinal(k: EngineKind) -> usize {
            match k {
                EngineKind::ConfigurableMbt => 0,
                EngineKind::ConfigurableBst => 1,
                EngineKind::Linear => 2,
                EngineKind::HyperCuts => 3,
                EngineKind::Rfc => 4,
                EngineKind::Dcfl => 5,
                EngineKind::Option1 => 6,
                EngineKind::Option2 => 7,
                EngineKind::Sharded => 8,
                EngineKind::Cached => 9,
                EngineKind::Snapshot => 10,
                EngineKind::TupleSpace => 11,
                EngineKind::SoftTcam => 12,
            }
        }
        let mut seen = [false; EngineKind::ALL.len()];
        for k in EngineKind::ALL {
            assert!(!seen[ordinal(k)], "{k} listed twice in ALL");
            seen[ordinal(k)] = true;
        }
        assert!(seen.iter().all(|&s| s), "a variant is missing from ALL");
    }

    #[test]
    fn aliases_parse_and_never_shadow_canonical_names() {
        let mut spellings: Vec<&str> = Vec::new();
        for kind in EngineKind::ALL {
            spellings.push(kind.as_str());
            for a in kind.aliases() {
                assert_eq!(a.parse::<EngineKind>().unwrap(), kind, "alias {a}");
                spellings.push(a);
            }
        }
        let n = spellings.len();
        spellings.sort_unstable();
        spellings.dedup();
        assert_eq!(spellings.len(), n, "a spelling maps to two kinds");
    }

    #[test]
    fn new_backends_parse() {
        for (s, k) in [
            ("tss", EngineKind::TupleSpace),
            ("tuple-space", EngineKind::TupleSpace),
            ("tcam", EngineKind::SoftTcam),
            ("soft-tcam", EngineKind::SoftTcam),
        ] {
            assert_eq!(s.parse::<EngineKind>().unwrap(), k);
        }
    }
}
