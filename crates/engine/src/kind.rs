//! The backend registry.

use std::fmt;
use std::str::FromStr;

/// Every classifier backend the workspace can construct.
///
/// The two `Configurable*` entries are the paper's architecture under each
/// `IPalg_s` setting; the rest are the Table I comparison algorithms.
/// Parse one from a string (`"hypercuts"`, `"configurable-bst"`, ...) or
/// iterate [`EngineKind::ALL`] for a full sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The configurable architecture, multi-bit-trie IP mode (speed).
    ConfigurableMbt,
    /// The configurable architecture, BST IP mode (density).
    ConfigurableBst,
    /// Priority-ordered linear search — the semantic oracle.
    Linear,
    /// HyperCuts decision-tree cutting.
    HyperCuts,
    /// Recursive Flow Classification.
    Rfc,
    /// Distributed Crossproducting of Field Labels.
    Dcfl,
    /// Table I "Option 1": 5-level IP tries + 4-level port tries.
    Option1,
    /// Table I "Option 2": 4-level IP tries + 5-level port tries.
    Option2,
    /// Partitioned multi-classifier: N inner engines over rule-set
    /// shards, verdicts merged by priority (see `ShardedEngine`).
    Sharded,
    /// Flow verdict cache in front of any inner backend: exact-match
    /// microflow table plus an optional masked megaflow layer (see
    /// `CachedEngine`).
    Cached,
    /// Snapshot-swap concurrent-serving wrapper: readers classify
    /// against an immutable published snapshot while updates rebuild
    /// and atomically publish the next one (see `SnapshotEngine`).
    Snapshot,
}

impl EngineKind {
    /// Every backend, in the order the paper's tables list them
    /// (workspace-grown backends follow the paper's rows).
    pub const ALL: [EngineKind; 11] = [
        EngineKind::ConfigurableMbt,
        EngineKind::ConfigurableBst,
        EngineKind::Linear,
        EngineKind::HyperCuts,
        EngineKind::Rfc,
        EngineKind::Dcfl,
        EngineKind::Option1,
        EngineKind::Option2,
        EngineKind::Sharded,
        EngineKind::Cached,
        EngineKind::Snapshot,
    ];

    /// The canonical config-string spelling ([`FromStr`] inverse).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::ConfigurableMbt => "configurable-mbt",
            EngineKind::ConfigurableBst => "configurable-bst",
            EngineKind::Linear => "linear",
            EngineKind::HyperCuts => "hypercuts",
            EngineKind::Rfc => "rfc",
            EngineKind::Dcfl => "dcfl",
            EngineKind::Option1 => "option1",
            EngineKind::Option2 => "option2",
            EngineKind::Sharded => "sharded",
            EngineKind::Cached => "cached",
            EngineKind::Snapshot => "snapshot",
        }
    }

    /// Whether this is the paper's configurable architecture (and hence
    /// supports fast incremental updates).
    pub fn is_configurable(self) -> bool {
        matches!(
            self,
            EngineKind::ConfigurableMbt | EngineKind::ConfigurableBst
        )
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing an [`EngineKind`] or an engine spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineKindError {
    /// The unrecognised input.
    pub input: String,
}

impl fmt::Display for ParseEngineKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine kind {:?}; expected one of: {}",
            self.input,
            EngineKind::ALL.map(EngineKind::as_str).join(", ")
        )
    }
}

impl std::error::Error for ParseEngineKindError {}

impl FromStr for EngineKind {
    type Err = ParseEngineKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let k = match s.to_ascii_lowercase().as_str() {
            "configurable-mbt" | "configurable_mbt" | "mbt" => EngineKind::ConfigurableMbt,
            "configurable-bst" | "configurable_bst" | "bst" => EngineKind::ConfigurableBst,
            "linear" | "linear-search" => EngineKind::Linear,
            "hypercuts" => EngineKind::HyperCuts,
            "rfc" => EngineKind::Rfc,
            "dcfl" => EngineKind::Dcfl,
            "option1" | "option-1" => EngineKind::Option1,
            "option2" | "option-2" => EngineKind::Option2,
            "sharded" => EngineKind::Sharded,
            "cached" => EngineKind::Cached,
            "snapshot" => EngineKind::Snapshot,
            _ => {
                return Err(ParseEngineKindError {
                    input: s.to_string(),
                })
            }
        };
        Ok(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all() {
        for kind in EngineKind::ALL {
            assert_eq!(kind.as_str().parse::<EngineKind>().unwrap(), kind);
        }
    }

    #[test]
    fn aliases_and_case() {
        assert_eq!(
            "MBT".parse::<EngineKind>().unwrap(),
            EngineKind::ConfigurableMbt
        );
        assert_eq!(
            "HyperCuts".parse::<EngineKind>().unwrap(),
            EngineKind::HyperCuts
        );
        assert_eq!(
            "option-2".parse::<EngineKind>().unwrap(),
            EngineKind::Option2
        );
    }

    #[test]
    fn unknown_kind_lists_options() {
        let e = "quantum".parse::<EngineKind>().unwrap_err();
        assert!(e.to_string().contains("configurable-mbt"), "{e}");
    }

    #[test]
    fn registry_is_exhaustive_and_distinct() {
        let mut names: Vec<&str> = EngineKind::ALL.map(EngineKind::as_str).to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EngineKind::ALL.len());
    }
}
