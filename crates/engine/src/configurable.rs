//! [`PacketClassifier`] for the paper's configurable architecture.

use crate::{
    EngineKind, LookupStats, MatchHandle, PacketClassifier, UpdateError, UpdateReport, Verdict,
};
use spc_core::{Classification, Classifier, ClassifierError, ClassifyScratch, IpAlg};
use spc_hwsim::AccessCounts;
use spc_types::{Header, MaskSummary, Rule, RuleId};

/// The configurable label-based classifier behind the unified API.
///
/// Wraps [`spc_core::Classifier`] in whichever `IPalg_s` mode the
/// [`crate::EngineBuilder`] selected. This is the only registry backend
/// with a live incremental-update path
/// ([`PacketClassifier::supports_updates`] is `true`), and its
/// [`PacketClassifier::classify_batch`] reuses one [`ClassifyScratch`]
/// across the whole batch, collapsing the per-lookup working-memory
/// allocations of the single-shot path.
#[derive(Debug)]
pub struct ConfigurableEngine {
    cls: Classifier,
    scratch: ClassifyScratch,
    last_report: Option<UpdateReport>,
    epoch: u64,
}

impl ConfigurableEngine {
    /// Wraps an already-configured classifier.
    pub fn new(cls: Classifier) -> Self {
        ConfigurableEngine {
            cls,
            scratch: ClassifyScratch::new(),
            last_report: None,
            epoch: 0,
        }
    }

    /// The wrapped classifier, for architecture-specific instrumentation
    /// (pipeline timing, memory reports, `IPalg_s` switching) that the
    /// backend-agnostic trait deliberately does not expose.
    pub fn classifier(&self) -> &Classifier {
        &self.cls
    }

    /// Mutable access to the wrapped classifier.
    pub fn classifier_mut(&mut self) -> &mut Classifier {
        &mut self.cls
    }

    fn verdict(c: &Classification) -> Verdict {
        match &c.hit {
            Some(hit) => Verdict::hit(
                MatchHandle {
                    id: hit.rule_id,
                    priority: hit.rule.priority,
                    mask_summary: MaskSummary::of_rule(&hit.rule),
                },
                hit.rule.action,
                c.total_reads(),
            ),
            None => Verdict::miss(c.total_reads()),
        }
    }
}

impl From<ClassifierError> for UpdateError {
    fn from(e: ClassifierError) -> Self {
        match e {
            ClassifierError::UnknownRule { id } => UpdateError::UnknownRule { id: RuleId(id) },
            // Keep duplicates distinguishable from capacity failures:
            // churn loops skip the former but must surface the latter.
            ClassifierError::DuplicateKey { existing } => UpdateError::Duplicate {
                existing: RuleId(existing),
            },
            other => UpdateError::Rejected {
                reason: other.to_string(),
            },
        }
    }
}

impl PacketClassifier for ConfigurableEngine {
    fn kind(&self) -> EngineKind {
        match self.cls.config().ip_alg {
            IpAlg::Mbt => EngineKind::ConfigurableMbt,
            IpAlg::Bst => EngineKind::ConfigurableBst,
        }
    }

    fn name(&self) -> &'static str {
        match self.cls.config().ip_alg {
            IpAlg::Mbt => "Configurable (MBT)",
            IpAlg::Bst => "Configurable (BST)",
        }
    }

    fn rules(&self) -> usize {
        self.cls.len()
    }

    fn classify(&self, header: &Header) -> Verdict {
        Self::verdict(&self.cls.classify(header))
    }

    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        out.reserve(headers.len());
        let mut stats = LookupStats::default();
        for h in headers {
            let c = self.cls.classify_with(h, &mut self.scratch);
            let v = Self::verdict(&c);
            stats.absorb(&v);
            stats.combos_probed += u64::from(c.combos_probed);
            out.push(v);
        }
        stats
    }

    fn memory_bits(&self) -> u64 {
        self.cls.memory_report().total_used()
    }

    fn access_counts(&self) -> AccessCounts {
        self.cls.access_counts()
    }

    fn reset_access_counts(&self) {
        self.cls.reset_access_counts();
    }

    fn supports_updates(&self) -> bool {
        true
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        // A failed update must leave both the report and the epoch
        // untouched: the epoch bumps iff the report is replaced.
        let report = self.cls.insert(rule)?;
        self.last_report = Some(report);
        self.epoch += 1;
        Ok(report.rule_id)
    }

    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let (_, report) = self.cls.remove(id)?;
        self.last_report = Some(report);
        self.epoch += 1;
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.last_report
    }

    fn update_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_core::ArchConfig;
    use spc_types::{Action, PortRange, Priority, ProtoSpec};

    fn web_rule(p: u32, port: u16) -> Rule {
        Rule::builder(Priority(p))
            .dst_port(PortRange::exact(port))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(1))
            .build()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 999, port, 6)
    }

    #[test]
    fn update_roundtrip_through_trait() {
        let mut e = ConfigurableEngine::new(Classifier::new(ArchConfig::default()));
        assert!(e.supports_updates());
        let id = e.insert(web_rule(0, 80)).unwrap();
        assert_eq!(e.rules(), 1);
        let v = e.classify(&hdr(80));
        assert_eq!(v.rule, Some(id));
        assert_eq!(v.action, Some(Action::Forward(1)));
        assert!(v.mem_reads > 0);
        e.remove(id).unwrap();
        assert!(!e.classify(&hdr(80)).is_hit());
        assert!(matches!(e.remove(id), Err(UpdateError::UnknownRule { .. })));
    }

    #[test]
    fn update_reports_surface_cycle_costs() {
        let mut e = ConfigurableEngine::new(Classifier::new(ArchConfig::default()));
        assert!(e.last_update_report().is_none(), "no update yet");
        let id = e.insert(web_rule(0, 80)).unwrap();
        let ins = e.last_update_report().expect("insert must report");
        assert_eq!(ins.rule_id, id);
        assert_eq!(ins.created_labels, 7);
        assert!(ins.hw_write_cycles >= 3, "§V.A floor: 2 data + 1 hash");
        // A failed update leaves the previous report and epoch intact:
        // the epoch/report pair must move together.
        let epoch_before = e.update_epoch();
        assert_eq!(epoch_before, 1, "one successful insert so far");
        assert!(e.insert(web_rule(1, 80)).is_err());
        assert_eq!(e.last_update_report(), Some(ins));
        assert_eq!(e.update_epoch(), epoch_before);
        e.remove(id).unwrap();
        assert_eq!(e.update_epoch(), epoch_before + 1);
        let del = e.last_update_report().expect("remove must report");
        assert_eq!(del.rule_id, id);
        assert_eq!(del.freed_labels, 7);
        assert!(del.hw_write_cycles >= 3);
    }

    #[test]
    fn duplicate_insert_maps_to_duplicate() {
        let mut e = ConfigurableEngine::new(Classifier::new(ArchConfig::default()));
        let first = e.insert(web_rule(0, 80)).unwrap();
        assert_eq!(
            e.insert(web_rule(1, 80)),
            Err(UpdateError::Duplicate { existing: first }),
            "duplicates must stay distinguishable from capacity rejections"
        );
    }

    #[test]
    fn batch_agrees_with_single_and_accounts() {
        let mut e = ConfigurableEngine::new(Classifier::new(ArchConfig::default()));
        for (p, port) in [(0u32, 80u16), (1, 443), (2, 22)] {
            e.insert(web_rule(p, port)).unwrap();
        }
        let batch: Vec<Header> = [80u16, 443, 22, 8080, 80].iter().map(|&p| hdr(p)).collect();
        let mut out = Vec::new();
        let stats = e.classify_batch(&batch, &mut out);
        assert_eq!(out.len(), batch.len());
        assert_eq!(stats.packets, 5);
        assert_eq!(stats.hits, 4);
        assert!(stats.combos_probed >= stats.hits);
        for (h, v) in batch.iter().zip(&out) {
            assert_eq!(
                *v,
                e.classify(h),
                "batch and single verdicts must agree at {h}"
            );
        }
        assert_eq!(
            stats.mem_reads,
            out.iter().map(|v| u64::from(v.mem_reads)).sum::<u64>()
        );
    }
}
