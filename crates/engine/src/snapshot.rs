//! Snapshot-swap concurrent serving: readers classify against an
//! immutable published snapshot while the writer rebuilds and
//! atomically publishes the next one.
//!
//! Every other backend in the registry serialises classification and
//! updates on one engine value (`&mut self` for updates, `&self` for
//! lookups, one owner). A production data plane cannot: packets must
//! keep classifying at line rate *while* the controller churns rules.
//! [`SnapshotEngine`] is the RCU-style answer, built entirely on
//! `std::sync` (the workspace forbids `unsafe`, so the "atomic pointer"
//! is a [`Mutex`]`<Arc<Snapshot>>` paired with an [`AtomicU64`]
//! version counter — see below):
//!
//! * **Readers** ([`SnapshotReader`]) hold a cached `Arc` to the
//!   current snapshot. On the steady-state path a classify is one
//!   relaxed-free atomic version load plus a lookup in an immutable
//!   structure — no lock is taken and the writer cannot block it. Only
//!   when the version counter has moved does the reader briefly take
//!   the publication lock to clone the new `Arc`.
//! * **The writer** (`insert`/`remove` through [`PacketClassifier`])
//!   never mutates a published snapshot. It rebuilds the next engine
//!   off to the side, then publishes it with a single pointer swap
//!   under the publication lock. Readers still classifying against the
//!   old snapshot keep their `Arc`; the old snapshot is retired
//!   (dropped) when the last reader releases it.
//! * **Sharded inners** (`snapshot:inner=(sharded:...)`) keep the
//!   plan's partitioning on the writer side: an update rebuilds *only
//!   the touched shard's* inner engine and the next snapshot reuses
//!   every untouched shard's `Arc` — publication cost scales with the
//!   shard, not the rule set.
//!
//! Consistency contract (what `tests/snapshot_consistency.rs`
//! verifies): every verdict a reader observes equals the oracle verdict
//! of *some* snapshot published between that reader's start and end —
//! never a torn mix of two versions — and the epoch a reader reports
//! ([`SnapshotReader::update_epoch`]) is exactly the version its last
//! verdict came from, non-decreasing over the reader's lifetime.
//! `docs/concurrency.md` walks through the publish/retire protocol and
//! the trade-offs against the shared-`Mutex` stop-the-world model.
//!
//! Update reports keep the paper's §V.A semantics where the inner
//! engine supports incremental updates: the writer rebuilds the
//! pre-update engine and replays the op through the inner's own
//! `insert`/`remove`, so `last_update_report()` carries the inner's
//! real label/hw-cycle accounting. Build-once inners (e.g. `linear`,
//! `rfc`) are rebuilt wholesale and report zero hardware write cycles —
//! the rebuild happens in software, off the fast path. Either way the
//! snapshot wrapper itself is *always* updatable: that is the point of
//! paying for rebuilds.

use crate::pipeline::BatchWorker;
use crate::{
    BuildError, EngineBuilder, EngineKind, LookupStats, MatchHandle, PacketClassifier,
    ShardedEngine, UpdateError, UpdateReport, Verdict,
};
use spc_core::shard::{RouteTarget, ShardPlan, ShardRouter, ShardStrategy};
use spc_hwsim::AccessCounts;
use spc_types::{Header, Rule, RuleId, RuleSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One immutable shard of a snapshot: an inner engine plus the
/// local→global rule-id map, mirroring `sharded::Shard` but frozen.
#[derive(Debug)]
struct ShardSnap {
    engine: Box<dyn PacketClassifier>,
    global_ids: Vec<RuleId>,
}

impl ShardSnap {
    /// Rewrites a shard-local verdict into global rule ids.
    fn remap(&self, v: Verdict) -> Verdict {
        Verdict {
            rule: v.rule.map(|id| self.global_ids[id.0 as usize]),
            matched: v.matched.map(|m| MatchHandle {
                id: self.global_ids[m.id.0 as usize],
                ..m
            }),
            ..v
        }
    }
}

/// One published, immutable rule-set version.
#[derive(Debug)]
struct Snapshot {
    /// The shard engines (a single-inner snapshot is one shard).
    shards: Vec<Arc<ShardSnap>>,
    /// `None` for a single inner; the merge discipline otherwise.
    strategy: Option<ShardStrategy>,
    /// The writer epoch this snapshot was published at (0 = initial).
    epoch: u64,
    /// The report of the update that produced this snapshot.
    report: Option<UpdateReport>,
    /// Live rule count at publication.
    rules: usize,
}

impl Snapshot {
    /// Classifies against this version. Immutable and lock-free: safe
    /// from any number of threads concurrently.
    fn classify(&self, header: &Header) -> Verdict {
        match self.strategy {
            None => match self.shards.first() {
                Some(s) => s.remap(s.engine.classify(header)),
                None => Verdict::miss(0),
            },
            // Same merge disciplines as `ShardedEngine::classify`. The
            // priority-band cascade stays valid because the snapshot
            // writer never splits bands, so band order is preserved.
            Some(ShardStrategy::PriorityBands) => {
                let mut reads = 0u32;
                for shard in &self.shards {
                    let mut v = shard.remap(shard.engine.classify(header));
                    v.add_reads(reads);
                    if v.is_hit() {
                        return v;
                    }
                    reads = v.mem_reads;
                }
                Verdict::miss(reads)
            }
            Some(ShardStrategy::FieldHash(_)) => {
                let mut merged = Verdict::miss(0);
                for shard in &self.shards {
                    let v = shard.remap(shard.engine.classify(header));
                    ShardedEngine::merge(&mut merged, &v);
                }
                merged
            }
        }
    }
}

/// The publication point: the current snapshot plus a version counter.
///
/// `unsafe` is forbidden workspace-wide, so instead of an `AtomicPtr`
/// swap this pairs a [`Mutex`]-guarded `Arc` with an [`AtomicU64`]
/// version. Readers poll the version with one `Acquire` load and only
/// touch the lock when it moved, so the steady state (no churn since
/// the reader's last refresh) takes no lock at all; the lock is held
/// only for an `Arc` clone or swap — never for classification or a
/// rebuild — so even a refresh cannot block behind real work.
#[derive(Debug)]
struct SnapshotHandle {
    current: Mutex<Arc<Snapshot>>,
    version: AtomicU64,
}

impl SnapshotHandle {
    fn new(initial: Arc<Snapshot>) -> Self {
        SnapshotHandle {
            current: Mutex::new(initial),
            version: AtomicU64::new(0),
        }
    }

    /// Clones the current snapshot `Arc` (brief lock).
    fn load(&self) -> Arc<Snapshot> {
        Arc::clone(
            &self
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Publishes the next snapshot: swap the pointer, then bump the
    /// version while still holding the lock, so a reader that sees the
    /// new version is guaranteed to load a snapshot at least that new.
    fn publish(&self, next: Arc<Snapshot>) {
        // The guarded value is a plain `Arc` pointer, never left half-updated,
        // so a poisoned lock is safe to recover.
        let mut cur = self
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *cur = next;
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// Writer-side state: the mutable mirror the next snapshot is rebuilt
/// from. Readers never see any of this.
#[derive(Debug)]
enum WriterMode {
    /// One inner engine rebuilt wholesale per update.
    Single {
        /// Live rules in inner-engine load order, with their global ids.
        live: Vec<(RuleId, Rule)>,
        /// Next global id to allocate (monotonic, never reused).
        next_global: u32,
    },
    /// Per-shard rebuild: only the touched shard's engine is replaced.
    Sharded {
        /// Routes updates to their owning shard and allocates global ids.
        router: ShardRouter,
        /// Per-shard live rules in inner-engine load order.
        shards: Vec<Vec<(RuleId, Rule)>>,
        /// The merge discipline, fixed at build time.
        strategy: ShardStrategy,
    },
}

/// Maps a zero-cost synthesized report for build-once inners.
fn zero_report(rule_id: RuleId) -> UpdateReport {
    UpdateReport {
        rule_id,
        created_labels: 0,
        freed_labels: 0,
        hw_write_cycles: 0,
    }
}

/// Maps a rebuild failure into an update error.
fn rejected(e: &BuildError) -> UpdateError {
    UpdateError::Rejected {
        reason: format!("snapshot rebuild failed: {e}"),
    }
}

/// Rewrites shard-local ids inside an inner engine's error into global
/// ids, so callers never see writer-internal numbering.
fn remap_local_error(e: UpdateError, live: &[(RuleId, Rule)]) -> UpdateError {
    let global = |local: RuleId| live.get(local.0 as usize).map_or(local, |&(g, _)| g);
    match e {
        UpdateError::Duplicate { existing } => UpdateError::Duplicate {
            existing: global(existing),
        },
        UpdateError::UnknownRule { id } => UpdateError::UnknownRule { id: global(id) },
        other => other,
    }
}

/// Builds the next engine for one shard (or the single inner) with
/// `rule` appended after `live`. When the inner supports the paper's
/// §V.A incremental update, the pre-update engine is rebuilt and the
/// insert replayed through it so the returned report carries the
/// inner's real accounting; otherwise the post-update set is built
/// wholesale and the caller synthesizes a zero-cost report.
fn next_with_insert(
    builder: &EngineBuilder,
    live: &[(RuleId, Rule)],
    rule: Rule,
) -> Result<(Box<dyn PacketClassifier>, Option<UpdateReport>), UpdateError> {
    let base: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let mut engine = builder.build(&base).map_err(|e| rejected(&e))?;
    if engine.supports_updates() {
        let local = engine
            .insert(rule)
            .map_err(|e| remap_local_error(e, live))?;
        debug_assert_eq!(local, RuleId(live.len() as u32));
        let raw = engine.last_update_report();
        Ok((engine, raw))
    } else {
        let mut full = base;
        full.push(rule);
        let engine = builder.build(&full).map_err(|e| rejected(&e))?;
        Ok((engine, None))
    }
}

/// Builds the next engine for one shard (or the single inner) with the
/// rule at `idx` removed from `live`. Returns the engine, its
/// local→global id map, and the inner's real report when available
/// (same replay recipe as [`next_with_insert`]).
#[allow(clippy::type_complexity)]
fn next_with_remove(
    builder: &EngineBuilder,
    live: &[(RuleId, Rule)],
    idx: usize,
) -> Result<(Box<dyn PacketClassifier>, Vec<RuleId>, Option<UpdateReport>), UpdateError> {
    let full: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let mut engine = builder.build(&full).map_err(|e| rejected(&e))?;
    if engine.supports_updates() {
        engine
            .remove(RuleId(idx as u32))
            .map_err(|e| remap_local_error(e, live))?;
        // Survivors keep their local ids; the removed slot goes stale
        // harmlessly (the inner never re-allocates it).
        let ids = live.iter().map(|&(g, _)| g).collect();
        let raw = engine.last_update_report();
        Ok((engine, ids, raw))
    } else {
        let remaining: RuleSet = live
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, &(_, r))| r)
            .collect();
        let engine = builder.build(&remaining).map_err(|e| rejected(&e))?;
        let ids = live
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, &(g, _))| g)
            .collect();
        Ok((engine, ids, None))
    }
}

/// Snapshot-swap concurrent-serving wrapper ([`EngineKind::Snapshot`],
/// spec `snapshot:inner=<spec>`).
///
/// The engine value itself is the *writer*: `insert`/`remove` rebuild
/// the next snapshot and publish it atomically. Classification through
/// [`PacketClassifier::classify`] works (it reads the current
/// snapshot), but the concurrent-serving payoff comes from handing
/// [`SnapshotReader`]s (see [`SnapshotEngine::reader`]) to other
/// threads: readers classify against immutable snapshots and are never
/// blocked by churn. See the [module docs](self) for the protocol.
#[derive(Debug)]
pub struct SnapshotEngine {
    handle: Arc<SnapshotHandle>,
    /// Builder for the single inner, or for each shard's inner.
    inner_builder: EngineBuilder,
    /// The spec-level inner kind (`Sharded` for per-shard mode).
    inner_kind: EngineKind,
    mode: WriterMode,
    /// Writer's working copy of the shard snaps; published snapshots
    /// share these `Arc`s, so an update allocates only the shard it
    /// touched.
    snaps: Vec<Arc<ShardSnap>>,
    rules: usize,
    epoch: u64,
    report: Option<UpdateReport>,
}

impl SnapshotEngine {
    /// Wraps a single inner engine (any non-sharded backend).
    pub(crate) fn from_single(rules: &RuleSet, inner: EngineBuilder) -> Result<Self, BuildError> {
        let engine = inner.build(rules)?;
        let global_ids: Vec<RuleId> = rules.iter().map(|(id, _)| id).collect();
        let live: Vec<(RuleId, Rule)> = rules.iter().map(|(id, r)| (id, *r)).collect();
        let next_global = live.iter().map(|&(id, _)| id.0 + 1).max().unwrap_or(0);
        let inner_kind = inner.kind();
        let snaps = vec![Arc::new(ShardSnap { engine, global_ids })];
        Ok(Self::assemble(
            inner,
            inner_kind,
            WriterMode::Single { live, next_global },
            snaps,
            rules.len(),
        ))
    }

    /// Wraps a sharded inner: one engine per plan slice, rebuilt
    /// per-shard on update. `per` is the builder for each shard's inner
    /// engine (already provisioned like `build_sharded` does).
    pub(crate) fn from_sharded(
        plan: ShardPlan,
        router: ShardRouter,
        per: EngineBuilder,
        strategy: ShardStrategy,
    ) -> Result<Self, BuildError> {
        let mut snaps = Vec::with_capacity(plan.shards.len());
        let mut shards = Vec::with_capacity(plan.shards.len());
        let total = plan.total_rules();
        for slice in plan.shards {
            let engine = per.build(&slice.rules)?;
            let live: Vec<(RuleId, Rule)> = slice
                .rules
                .iter()
                .map(|(local, rule)| (slice.global_id(local), *rule))
                .collect();
            snaps.push(Arc::new(ShardSnap {
                engine,
                global_ids: slice.global_ids,
            }));
            shards.push(live);
        }
        Ok(Self::assemble(
            per,
            EngineKind::Sharded,
            WriterMode::Sharded {
                router,
                shards,
                strategy,
            },
            snaps,
            total,
        ))
    }

    fn assemble(
        inner_builder: EngineBuilder,
        inner_kind: EngineKind,
        mode: WriterMode,
        snaps: Vec<Arc<ShardSnap>>,
        rules: usize,
    ) -> Self {
        let strategy = match &mode {
            WriterMode::Single { .. } => None,
            WriterMode::Sharded { strategy, .. } => Some(*strategy),
        };
        let initial = Arc::new(Snapshot {
            shards: snaps.clone(),
            strategy,
            epoch: 0,
            report: None,
            rules,
        });
        SnapshotEngine {
            handle: Arc::new(SnapshotHandle::new(initial)),
            inner_builder,
            inner_kind,
            mode,
            snaps,
            rules,
            epoch: 0,
            report: None,
        }
    }

    /// Publishes the writer's current shard snaps as the next snapshot.
    fn publish(&mut self, report: UpdateReport) {
        self.epoch += 1;
        self.report = Some(report);
        let strategy = match &self.mode {
            WriterMode::Single { .. } => None,
            WriterMode::Sharded { strategy, .. } => Some(*strategy),
        };
        self.handle.publish(Arc::new(Snapshot {
            shards: self.snaps.clone(),
            strategy,
            epoch: self.epoch,
            report: self.report,
            rules: self.rules,
        }));
    }

    /// A new concurrent reader over this engine's published snapshots.
    ///
    /// Readers are cheap (two `Arc` clones) and independent: hand one
    /// to each thread. Each reader observes publications in order and
    /// its [`SnapshotReader::update_epoch`] is monotonic.
    pub fn reader(&self) -> SnapshotReader {
        let cached = self.handle.load();
        let seen = self.handle.version();
        SnapshotReader {
            handle: Arc::clone(&self.handle),
            cached,
            seen,
        }
    }

    /// `n` boxed [`BatchWorker`]s for [`crate::IngestPipeline::from_workers`]:
    /// each worker is an independent [`SnapshotReader`] that re-resolves
    /// the published snapshot once per batch chunk.
    pub fn workers(&self, n: usize) -> Vec<Box<dyn BatchWorker>> {
        (0..n)
            .map(|_| Box::new(self.reader()) as Box<dyn BatchWorker>)
            .collect()
    }

    /// The spec-level inner kind (`sharded` when updates rebuild
    /// per-shard).
    pub fn inner_kind(&self) -> EngineKind {
        self.inner_kind
    }

    /// How many shard engines the current snapshot holds (1 for a
    /// single inner).
    pub fn shard_count(&self) -> usize {
        self.snaps.len()
    }
}

impl PacketClassifier for SnapshotEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Snapshot
    }

    fn name(&self) -> &'static str {
        "Snapshot"
    }

    fn rules(&self) -> usize {
        self.rules
    }

    fn classify(&self, header: &Header) -> Verdict {
        self.handle.load().classify(header)
    }

    fn classify_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        // Resolve the snapshot once: the whole batch is classified
        // against one consistent rule-set version.
        let snap = self.handle.load();
        out.clear();
        out.reserve(headers.len());
        let mut stats = LookupStats::default();
        for h in headers {
            let v = snap.classify(h);
            stats.absorb(&v);
            out.push(v);
        }
        stats
    }

    fn memory_bits(&self) -> u64 {
        self.snaps.iter().map(|s| s.engine.memory_bits()).sum()
    }

    fn access_counts(&self) -> AccessCounts {
        self.snaps
            .iter()
            .map(|s| s.engine.access_counts())
            .fold(AccessCounts::default(), |a, b| a + b)
    }

    fn reset_access_counts(&self) {
        for s in &self.snaps {
            s.engine.reset_access_counts();
        }
    }

    fn supports_updates(&self) -> bool {
        // Always: build-once inners are rebuilt wholesale (see the
        // module docs) — paying for rebuilds off the fast path is the
        // point of the wrapper.
        true
    }

    fn insert(&mut self, rule: Rule) -> Result<RuleId, UpdateError> {
        let (global, raw) = match &mut self.mode {
            WriterMode::Single { live, next_global } => {
                if let Some(&(existing, _)) = live
                    .iter()
                    .find(|(_, r)| r.dim_values() == rule.dim_values())
                {
                    return Err(UpdateError::Duplicate { existing });
                }
                let (engine, raw) = next_with_insert(&self.inner_builder, live, rule)?;
                let global = RuleId(*next_global);
                *next_global += 1;
                let mut ids: Vec<RuleId> = live.iter().map(|&(g, _)| g).collect();
                ids.push(global);
                live.push((global, rule));
                self.snaps[0] = Arc::new(ShardSnap {
                    engine,
                    global_ids: ids,
                });
                (global, raw)
            }
            WriterMode::Sharded { router, shards, .. } => {
                if let Some(existing) = router.duplicate_of(&rule) {
                    return Err(UpdateError::Duplicate { existing });
                }
                let k = match router.route(&rule) {
                    RouteTarget::Existing(k) => k,
                    RouteTarget::NewShard { slot } => {
                        // Open the empty shard first so `shards` and
                        // `snaps` stay parallel even if the rebuild
                        // below fails (an empty shard is harmless).
                        let engine = self
                            .inner_builder
                            .build(&RuleSet::new())
                            .map_err(|e| rejected(&e))?;
                        shards.push(Vec::new());
                        self.snaps.push(Arc::new(ShardSnap {
                            engine,
                            global_ids: Vec::new(),
                        }));
                        router.register_shard(slot)
                    }
                };
                let (engine, raw) = next_with_insert(&self.inner_builder, &shards[k], rule)?;
                let local = RuleId(shards[k].len() as u32);
                let global = router.record_insert(rule, k, local);
                let mut ids: Vec<RuleId> = shards[k].iter().map(|&(g, _)| g).collect();
                ids.push(global);
                shards[k].push((global, rule));
                // The untouched shards' `Arc`s carry over unchanged —
                // this swap is the only allocation the update publishes.
                self.snaps[k] = Arc::new(ShardSnap {
                    engine,
                    global_ids: ids,
                });
                (global, raw)
            }
        };
        self.rules += 1;
        let report = raw_to_report(raw, global);
        self.publish(report);
        Ok(global)
    }

    // The writer's shard mirrors and the router are updated in lock-step
    // by every update path, so a rule the router locates is always
    // present in the mirrored shard.
    #[allow(clippy::expect_used)]
    fn remove(&mut self, id: RuleId) -> Result<(), UpdateError> {
        let report = match &mut self.mode {
            WriterMode::Single { live, .. } => {
                let idx = live
                    .iter()
                    .position(|&(g, _)| g == id)
                    .ok_or(UpdateError::UnknownRule { id })?;
                let (engine, ids, raw) = next_with_remove(&self.inner_builder, live, idx)?;
                live.remove(idx);
                self.snaps[0] = Arc::new(ShardSnap {
                    engine,
                    global_ids: ids,
                });
                raw_to_report(raw, id)
            }
            WriterMode::Sharded { router, shards, .. } => {
                let k = router
                    .location(id)
                    .ok_or(UpdateError::UnknownRule { id })?
                    .shard;
                let idx = shards[k]
                    .iter()
                    .position(|&(g, _)| g == id)
                    .expect("router and writer shard mirrors agree");
                let (engine, ids, raw) = next_with_remove(&self.inner_builder, &shards[k], idx)?;
                router.record_remove(id);
                shards[k].remove(idx);
                self.snaps[k] = Arc::new(ShardSnap {
                    engine,
                    global_ids: ids,
                });
                raw_to_report(raw, id)
            }
        };
        self.rules -= 1;
        self.publish(report);
        Ok(())
    }

    fn last_update_report(&self) -> Option<UpdateReport> {
        self.report
    }

    fn update_epoch(&self) -> u64 {
        self.epoch
    }
}

/// Restates an inner engine's report (or synthesizes a zero-cost one
/// for build-once inners) under the global rule id.
fn raw_to_report(raw: Option<UpdateReport>, global: RuleId) -> UpdateReport {
    raw.map_or_else(
        || zero_report(global),
        |r| UpdateReport {
            rule_id: global,
            ..r
        },
    )
}

/// A concurrent reader over a [`SnapshotEngine`]'s published snapshots.
///
/// Clone-cheap and independent: each thread gets its own reader. The
/// reader caches an `Arc` to the snapshot it last refreshed to;
/// [`classify`](Self::classify) polls the version counter (one atomic
/// load) and re-clones the `Arc` only when the writer has published —
/// the steady state under no churn takes no lock at all.
///
/// A refresh may land on a snapshot *newer* than the version counter
/// value it observed (the writer can publish between the counter load
/// and the `Arc` clone); publications are totally ordered under the
/// writer lock, so the cached snapshot — and therefore
/// [`update_epoch`](Self::update_epoch) — still only ever moves
/// forward.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    handle: Arc<SnapshotHandle>,
    cached: Arc<Snapshot>,
    seen: u64,
}

impl SnapshotReader {
    /// Re-resolves the published snapshot if the writer has published
    /// since the last refresh. Returns whether the cached snapshot
    /// changed.
    pub fn refresh(&mut self) -> bool {
        let v = self.handle.version();
        if v == self.seen {
            return false;
        }
        let next = self.handle.load();
        self.seen = v;
        if Arc::ptr_eq(&next, &self.cached) {
            return false;
        }
        self.cached = next;
        true
    }

    /// Refreshes, then classifies against the (now-)current snapshot.
    pub fn classify(&mut self, header: &Header) -> Verdict {
        self.refresh();
        self.cached.classify(header)
    }

    /// Classifies against the cached snapshot *without* refreshing —
    /// the batch path: refresh once per chunk, then classify the whole
    /// chunk against one consistent version.
    pub fn classify_current(&self, header: &Header) -> Verdict {
        self.cached.classify(header)
    }

    /// The epoch of the snapshot the last classify used (0 until the
    /// first publication reaches this reader). Non-decreasing.
    pub fn update_epoch(&self) -> u64 {
        self.cached.epoch
    }

    /// The report of the update that produced the cached snapshot.
    pub fn last_update_report(&self) -> Option<UpdateReport> {
        self.cached.report
    }

    /// Live rule count in the cached snapshot.
    pub fn rules(&self) -> usize {
        self.cached.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineBuilder;
    use spc_types::{Action, PortRange, Priority, ProtoSpec, Rule};

    fn rule(priority: u32, port: u16) -> Rule {
        Rule::builder(Priority(priority))
            .dst_port(PortRange::exact(port))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(port))
            .build()
    }

    fn probe(port: u16) -> Header {
        Header::new([10, 0, 0, 1].into(), [192, 168, 0, 1].into(), 1234, port, 6)
    }

    fn base_rules(n: u16) -> RuleSet {
        (0..n).map(|i| rule(u32::from(i), 1000 + i)).collect()
    }

    fn snap(spec: &str, rules: &RuleSet) -> SnapshotEngine {
        EngineBuilder::from_spec(spec)
            .unwrap()
            .build_snapshot(rules)
            .unwrap()
    }

    #[test]
    fn single_mode_updates_publish_to_readers() {
        let rules = base_rules(8);
        let mut eng = snap("snapshot:inner=configurable-bst", &rules);
        let mut reader = eng.reader();
        assert_eq!(reader.update_epoch(), 0);
        assert!(!reader.classify(&probe(4000)).is_hit());

        let id = eng.insert(rule(100, 4000)).unwrap();
        assert_eq!(eng.update_epoch(), 1);
        assert_eq!(eng.last_update_report().unwrap().rule_id, id);
        let v = reader.classify(&probe(4000));
        assert_eq!(v.rule, Some(id));
        assert_eq!(reader.update_epoch(), 1);

        eng.remove(id).unwrap();
        assert_eq!(eng.update_epoch(), 2);
        assert!(!reader.classify(&probe(4000)).is_hit());
        assert_eq!(reader.update_epoch(), 2);
    }

    #[test]
    fn stale_readers_keep_their_snapshot_until_refresh() {
        let rules = base_rules(4);
        let mut eng = snap("snapshot:inner=linear", &rules);
        let stale = eng.reader();
        let id = eng.insert(rule(50, 4000)).unwrap();
        // No refresh: the old snapshot still answers, consistently.
        assert!(!stale.classify_current(&probe(4000)).is_hit());
        assert_eq!(stale.update_epoch(), 0);
        let mut fresh = stale.clone();
        assert_eq!(fresh.classify(&probe(4000)).rule, Some(id));
        assert_eq!(fresh.update_epoch(), 1);
    }

    #[test]
    fn failed_updates_do_not_publish() {
        let rules = base_rules(6);
        let mut eng = snap("snapshot:inner=configurable-bst", &rules);
        let before_epoch = eng.update_epoch();
        let before = eng.last_update_report();

        let dup = eng.insert(rule(999, 1002)).unwrap_err();
        assert!(matches!(dup, UpdateError::Duplicate { existing } if existing == RuleId(2)));
        let unknown = eng.remove(RuleId(404)).unwrap_err();
        assert!(matches!(unknown, UpdateError::UnknownRule { id } if id == RuleId(404)));

        assert_eq!(eng.update_epoch(), before_epoch);
        assert_eq!(eng.last_update_report(), before);
        let reader = eng.reader();
        assert_eq!(reader.update_epoch(), 0);
    }

    #[test]
    fn sharded_inner_reuses_untouched_shard_arcs() {
        let rules = base_rules(32);
        let mut eng = snap(
            "snapshot:inner=(sharded:inner=configurable-bst,shards=4)",
            &rules,
        );
        assert_eq!(eng.shard_count(), 4);
        let before: Vec<Arc<ShardSnap>> = eng.snaps.clone();

        let id = eng.insert(rule(1_000_000, 4000)).unwrap();
        let changed: Vec<usize> = (0..4)
            .filter(|&i| !Arc::ptr_eq(&before[i], &eng.snaps[i]))
            .collect();
        assert_eq!(changed.len(), 1, "exactly one shard rebuilt: {changed:?}");

        let v = eng.classify(&probe(4000));
        assert_eq!(v.rule, Some(id));

        let before: Vec<Arc<ShardSnap>> = eng.snaps.clone();
        eng.remove(id).unwrap();
        let changed: Vec<usize> = (0..4)
            .filter(|&i| !Arc::ptr_eq(&before[i], &eng.snaps[i]))
            .collect();
        assert_eq!(changed.len(), 1, "exactly one shard rebuilt: {changed:?}");
        assert!(!eng.classify(&probe(4000)).is_hit());
    }

    #[test]
    fn hash_sharded_and_cached_inners_agree_with_linear() {
        let rules = base_rules(24);
        let oracle = EngineBuilder::new(EngineKind::Linear)
            .build(&rules)
            .unwrap();
        for spec in [
            "snapshot:inner=(sharded:inner=configurable-bst,shards=3,strategy=hash)",
            "snapshot:inner=(cached:inner=configurable-bst,flows=64)",
            "snapshot:inner=linear",
        ] {
            let mut eng = snap(spec, &rules);
            let extra = eng.insert(rule(500, 4000)).unwrap();
            for port in (995..1030).chain([4000]) {
                let h = probe(port);
                let got = eng.classify(&h);
                let want = if port == 4000 {
                    // The oracle never saw the churned rule.
                    (Some(extra), Some(Action::Forward(4000)))
                } else {
                    let w = oracle.classify(&h);
                    (w.rule, w.action)
                };
                let got_pair = (got.rule, got.action);
                assert_eq!(got_pair, want, "{spec} port {port}");
            }
        }
    }

    #[test]
    fn build_once_inner_synthesizes_zero_cost_reports() {
        let rules = base_rules(4);
        let mut eng = snap("snapshot:inner=linear", &rules);
        assert!(eng.supports_updates());
        let id = eng.insert(rule(9, 4000)).unwrap();
        let report = eng.last_update_report().unwrap();
        assert_eq!(report.rule_id, id);
        assert_eq!(report.hw_write_cycles, 0);
    }

    #[test]
    fn updatable_inner_reports_real_hw_cycles() {
        let rules = base_rules(8);
        let mut eng = snap("snapshot:inner=configurable-bst", &rules);
        let id = eng.insert(rule(77, 4000)).unwrap();
        let report = eng.last_update_report().unwrap();
        assert_eq!(report.rule_id, id);
        // The §V.A floor the configurable engines assert themselves.
        assert!(report.hw_write_cycles >= 3, "{report:?}");
    }
}
