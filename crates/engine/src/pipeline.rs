//! The generalised batch-ingest worker pool.
//!
//! The paper motivates a *configurable* classifier because SDN workloads
//! stress different parameters — lookup speed, rule capacity, update
//! rate. The workspace's only high-throughput driver used to be the
//! worker pool buried inside `ShardedEngine::classify_batch`; this
//! module lifts that machinery out so **any** [`PacketClassifier`] can
//! be fed from a header stream:
//!
//! * [`BatchWorker`] — the unit of parallel work: something that turns a
//!   header chunk into verdicts plus [`LookupStats`]. Every boxed engine
//!   is one; `ShardedEngine`'s shards are too.
//! * [`IngestPipeline`] — a long-running pool: N worker threads pull
//!   header chunks from one **bounded** queue (a full queue blocks the
//!   feeder — backpressure, never drops), classify them, and stream
//!   verdicts back. Spawned once, fed many times: no per-batch thread
//!   spawn. Use [`IngestPipeline::run_batch`] for one-shot batches or
//!   the [`IngestPipeline::feed`] / [`IngestPipeline::drain`] pair for
//!   streaming.
//! * [`EngineSource`] — how workers get an engine: one read-only engine
//!   shared behind `Arc` (cheap in memory, but workers go through the
//!   single-shot `classify` path), or one replica per worker (N× the
//!   memory, but each worker runs the amortised `classify_batch` with
//!   its own scratch). See `docs/ingest_pipeline.md` for the trade-off
//!   in numbers. A third shape rides on [`IngestPipeline::from_workers`]:
//!   [`crate::SnapshotReader`] workers over a live
//!   [`crate::SnapshotEngine`], which re-resolve the published rule-set
//!   snapshot once per chunk so the pool keeps serving lock-free while a
//!   writer churns rules (see `docs/concurrency.md`).
//! * [`broadcast_batch`] / [`cascade_batch`] — the one-shot scoped
//!   topologies `ShardedEngine` is built on: *broadcast* hands every
//!   chunk to every worker and merges, *cascade* chains workers in order
//!   with early-exit forwarding. They live here so the sharded backend
//!   shares the pool machinery instead of duplicating it.
//!
//! Per-worker [`LookupStats`] always fold with the `Copy + Add` impl;
//! that contract is what lets every topology report one aggregate.
//!
//! # Example
//!
//! ```
//! use spc_engine::pipeline::{EngineSource, IngestConfig, IngestPipeline};
//! use spc_engine::EngineBuilder;
//! use spc_types::{Header, Priority, Rule, RuleSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rules = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
//! // One replica of the backend per worker thread.
//! let workers = IngestConfig::default().workers;
//! let source = EngineSource::replicated(&EngineBuilder::from_spec("linear")?, &rules, workers)?;
//! let mut pipe = IngestPipeline::spawn(source, IngestConfig::default())?;
//! let batch = vec![Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 9, 80, 6); 100];
//! let mut verdicts = Vec::new();
//! let stats = pipe.run_batch(&batch, &mut verdicts);
//! assert_eq!(stats.packets, 100);
//! assert!(verdicts.iter().all(|v| v.is_hit()));
//! # Ok(())
//! # }
//! ```

use crate::{BuildError, EngineBuilder, LookupStats, PacketClassifier, Verdict};
use spc_types::{Header, RuleSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Headers per work unit wherever the pool machinery chunks a batch.
/// Small enough that merging overlaps worker progress, large enough that
/// channel traffic is noise.
pub const DEFAULT_CHUNK: usize = 1024;

/// One parallel worker of the pool: turns a header chunk into verdicts.
///
/// `out` is cleared first and receives exactly one [`Verdict`] per
/// header; the returned [`LookupStats`] must account for exactly this
/// chunk, so that per-worker stats fold correctly with `+`.
///
/// Every `Box<dyn PacketClassifier>` is a `BatchWorker` (via its
/// amortised `classify_batch`); so is a [`SharedWorker`] over an `Arc`'d
/// engine, and so are `ShardedEngine`'s shards (which remap verdicts to
/// global rule-id space on the way out).
pub trait BatchWorker: Send {
    /// Classifies `headers` into `out` (cleared first).
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats;
}

impl BatchWorker for Box<dyn PacketClassifier> {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        self.classify_batch(headers, out)
    }
}

/// A worker that classifies through a shared read-only engine.
///
/// The engine is behind `Arc`, so lookups go through the `&self`
/// single-shot [`PacketClassifier::classify`] path — no scratch
/// amortisation and no `combos_probed` accounting, in exchange for not
/// replicating the structure per worker.
#[derive(Debug, Clone)]
pub struct SharedWorker(Arc<dyn PacketClassifier>);

impl SharedWorker {
    /// Wraps a shared engine.
    pub fn new(engine: Arc<dyn PacketClassifier>) -> Self {
        SharedWorker(engine)
    }
}

impl BatchWorker for SharedWorker {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        out.clear();
        out.reserve(headers.len());
        let mut stats = LookupStats::default();
        for h in headers {
            let v = self.0.classify(h);
            stats.absorb(&v);
            out.push(v);
        }
        stats
    }
}

/// A [`crate::SnapshotReader`] is a pool worker: it re-resolves the
/// published snapshot **once per chunk**, then classifies the whole
/// chunk against that one immutable version — so a chunk is never a
/// torn mix of two rule-set versions, and writer churn becomes visible
/// to the pool at chunk boundaries. Build a pool over readers with
/// [`crate::SnapshotEngine::workers`] and
/// [`IngestPipeline::from_workers`].
impl BatchWorker for crate::SnapshotReader {
    fn process(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        self.refresh();
        out.clear();
        out.reserve(headers.len());
        let mut stats = LookupStats::default();
        for h in headers {
            let v = self.classify_current(h);
            stats.absorb(&v);
            out.push(v);
        }
        stats
    }
}

/// Where an [`IngestPipeline`]'s workers get their engine.
#[derive(Debug)]
pub enum EngineSource {
    /// One read-only engine shared by every worker ([`IngestConfig::workers`]
    /// of them). Lowest memory; workers use the single-shot lookup path.
    Shared(Arc<dyn PacketClassifier>),
    /// One engine replica per worker (the vector length must equal
    /// [`IngestConfig::workers`]). N× the structure memory; each worker
    /// runs the amortised batch path with private scratch.
    Cloned(Vec<Box<dyn PacketClassifier>>),
}

impl EngineSource {
    /// Builds `workers` independent replicas of a backend — the
    /// [`EngineSource::Cloned`] convenience constructor.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`] from the builder.
    pub fn replicated(
        builder: &EngineBuilder,
        rules: &RuleSet,
        workers: usize,
    ) -> Result<Self, BuildError> {
        (0..workers)
            .map(|_| builder.build(rules))
            .collect::<Result<Vec<_>, _>>()
            .map(EngineSource::Cloned)
    }

    /// Type-erases the source into one boxed worker per thread.
    fn into_workers(self, shared_workers: usize) -> Vec<Box<dyn BatchWorker>> {
        match self {
            EngineSource::Shared(engine) => (0..shared_workers)
                .map(|_| Box::new(SharedWorker(Arc::clone(&engine))) as Box<dyn BatchWorker>)
                .collect(),
            EngineSource::Cloned(engines) => engines
                .into_iter()
                .map(|e| Box::new(e) as Box<dyn BatchWorker>)
                .collect(),
        }
    }
}

/// Sizing knobs of an [`IngestPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Worker threads. For an [`EngineSource::Cloned`] source this must
    /// equal the replica count — [`IngestPipeline::spawn`] rejects a
    /// mismatch rather than silently running a different parallelism
    /// than the sweep labelled.
    pub workers: usize,
    /// Bounded ingest-queue depth, in chunks. When the queue is full,
    /// [`IngestPipeline::feed`] blocks — backpressure, never drops.
    pub queue_chunks: usize,
    /// Headers per queued chunk.
    pub chunk: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            workers: 4,
            queue_chunks: 8,
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// Error from [`IngestPipeline::spawn`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The configuration cannot produce a working pool (zero workers,
    /// zero queue depth, zero chunk size, an empty replica vector).
    Config {
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Config { reason } => write!(f, "bad ingest configuration: {reason}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A queued work unit: the chunk's stream sequence number + its headers.
type Job = (u64, Vec<Header>);
/// A finished work unit: sequence number, then verdicts + chunk stats —
/// or `None` when the worker panicked on that chunk, so the drain side
/// can fail loudly instead of waiting forever for a dead sequence
/// number.
type JobResult = (u64, Option<(Vec<Verdict>, LookupStats)>);

/// A long-running, backpressure-aware ingest pool over N workers.
///
/// Spawned once ([`IngestPipeline::spawn`]), then driven for its whole
/// life — worker threads are *not* respawned per batch. Headers enter
/// through a bounded queue ([`IngestPipeline::feed`] blocks when it is
/// full), workers race to pull chunks, and [`IngestPipeline::drain`]
/// reassembles verdicts in stream order, folding the per-worker
/// [`LookupStats`] with `+`.
///
/// Dropping the pipeline (or calling [`IngestPipeline::shutdown`])
/// closes the queue and joins the workers; verdicts of fed-but-undrained
/// chunks are discarded at that point.
///
/// # Examples
///
/// The streaming lifecycle — feed bursts as they arrive, drain at
/// result-window boundaries, reuse the same pool threads throughout:
///
/// ```
/// use spc_engine::{EngineBuilder, EngineSource, IngestConfig, IngestPipeline};
/// use spc_types::{Header, Priority, Rule, RuleSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rules = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// let source = EngineSource::replicated(&EngineBuilder::from_spec("linear")?, &rules, 2)?;
/// let mut pipe = IngestPipeline::spawn(
///     source,
///     IngestConfig { workers: 2, queue_chunks: 4, chunk: 16 },
/// )?;
/// let burst = vec![Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1, 2, 6); 50];
/// let mut verdicts = Vec::new();
/// for _window in 0..3 {
///     pipe.feed(&burst); // blocks only if the bounded queue is full
///     let stats = pipe.drain(&mut verdicts); // verdicts appended in feed order
///     assert_eq!(stats.packets, 50);
/// }
/// assert_eq!(verdicts.len(), 150);
/// # Ok(())
/// # }
/// ```
pub struct IngestPipeline {
    feed_tx: Option<SyncSender<Job>>,
    res_rx: Receiver<JobResult>,
    handles: Vec<JoinHandle<()>>,
    chunk: usize,
    /// Sequence number the next fed chunk gets.
    next_seq: u64,
    /// Sequence number the next drained chunk must have.
    drained_seq: u64,
    /// Results that arrived ahead of stream order.
    pending: HashMap<u64, (Vec<Verdict>, LookupStats)>,
}

impl fmt::Debug for IngestPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("workers", &self.handles.len())
            .field("chunk", &self.chunk)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl IngestPipeline {
    /// Spawns the pool over an [`EngineSource`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for a zero worker count, an empty
    /// replica vector, zero queue/chunk sizes, or a
    /// [`EngineSource::Cloned`] replica count that disagrees with
    /// [`IngestConfig::workers`] — a sweep must never silently run a
    /// worker count it didn't ask for.
    pub fn spawn(source: EngineSource, config: IngestConfig) -> Result<Self, PipelineError> {
        match &source {
            EngineSource::Shared(_) if config.workers == 0 => {
                return Err(PipelineError::Config {
                    reason: "a shared-engine pool needs workers >= 1".to_string(),
                });
            }
            EngineSource::Cloned(replicas) if replicas.len() != config.workers => {
                return Err(PipelineError::Config {
                    reason: format!(
                        "{} engine replicas but workers={} — a pool must run \
                         exactly the worker count it was configured for",
                        replicas.len(),
                        config.workers
                    ),
                });
            }
            _ => {}
        }
        Self::from_workers(source.into_workers(config.workers), config)
    }

    /// Spawns the pool over explicit [`BatchWorker`]s — the escape hatch
    /// for heterogeneous or instrumented workers (tests use it to gate
    /// worker progress and observe backpressure). The worker count is
    /// the vector's length; [`IngestConfig::workers`] is not consulted
    /// on this path.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for an empty worker vector or zero
    /// queue/chunk sizes.
    pub fn from_workers(
        workers: Vec<Box<dyn BatchWorker>>,
        config: IngestConfig,
    ) -> Result<Self, PipelineError> {
        if workers.is_empty() {
            return Err(PipelineError::Config {
                reason: "the pool needs >= 1 worker".to_string(),
            });
        }
        if config.queue_chunks == 0 || config.chunk == 0 {
            return Err(PipelineError::Config {
                reason: "queue_chunks and chunk must be >= 1".to_string(),
            });
        }
        let (feed_tx, feed_rx) = mpsc::sync_channel::<Job>(config.queue_chunks);
        let feed_rx = Arc::new(Mutex::new(feed_rx));
        let (res_tx, res_rx) = mpsc::channel::<JobResult>();
        let handles = workers
            .into_iter()
            .map(|mut worker| {
                let rx = Arc::clone(&feed_rx);
                let tx = res_tx.clone();
                std::thread::spawn(move || {
                    let mut buf: Vec<Verdict> = Vec::new();
                    loop {
                        // Hold the lock only to pull one job; a closed
                        // queue (or a poisoned lock from a worker panic)
                        // ends the thread.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => return,
                        };
                        let Ok((seq, headers)) = job else { return };
                        // A panicking worker must not strand its sequence
                        // number — drain() would wait forever for it while
                        // the surviving workers keep the result channel
                        // open. Catch the panic, deliver a death marker
                        // for this chunk, and let the thread die.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                worker.process(&headers, &mut buf)
                            }));
                        let Ok(stats) = outcome else {
                            let _ = tx.send((seq, None));
                            return;
                        };
                        debug_assert_eq!(buf.len(), headers.len(), "one verdict per header");
                        if tx
                            .send((seq, Some((std::mem::take(&mut buf), stats))))
                            .is_err()
                        {
                            return; // pipeline dropped mid-flight
                        }
                    }
                })
            })
            .collect();
        Ok(IngestPipeline {
            feed_tx: Some(feed_tx),
            res_rx,
            handles,
            chunk: config.chunk,
            next_seq: 0,
            drained_seq: 0,
            pending: HashMap::new(),
        })
    }

    /// Live worker threads.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Chunks fed but not yet drained.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.drained_seq
    }

    /// Queues `headers` for classification, blocking while the bounded
    /// queue is full (backpressure: a slow pool slows the feeder down,
    /// it never drops headers). Returns the number of chunks queued.
    ///
    /// # Panics
    ///
    /// Panics if every worker died (a worker panic poisons the pool).
    #[allow(clippy::expect_used)] // panic contract documented above
    pub fn feed(&mut self, headers: &[Header]) -> usize {
        let tx = self.feed_tx.as_ref().expect("pipeline is not shut down");
        let mut queued = 0;
        for chunk in headers.chunks(self.chunk) {
            tx.send((self.next_seq, chunk.to_vec()))
                .expect("ingest workers are alive");
            self.next_seq += 1;
            queued += 1;
        }
        queued
    }

    /// Blocks until every fed chunk has been classified, appending the
    /// verdicts to `out` in stream (feed) order and returning the folded
    /// stats of the drained span. After a drain the pipeline is idle and
    /// can be fed again — feed/drain cycles are the streaming lifecycle.
    ///
    /// # Panics
    ///
    /// Panics if a worker died (panicked) before completing the stream —
    /// a dead worker delivers a death marker for the chunk it was
    /// holding, so this fails loudly instead of waiting forever.
    #[allow(clippy::expect_used)] // panic contract documented above
    pub fn drain(&mut self, out: &mut Vec<Verdict>) -> LookupStats {
        let mut folded = LookupStats::default();
        while self.drained_seq < self.next_seq {
            if let Some((verdicts, stats)) = self.pending.remove(&self.drained_seq) {
                folded = folded + stats;
                out.extend_from_slice(&verdicts);
                self.drained_seq += 1;
                continue;
            }
            let (seq, result) = self
                .res_rx
                .recv()
                .expect("every ingest worker died before completing the stream");
            let Some(chunk) = result else {
                panic!("an ingest worker panicked while classifying chunk {seq}");
            };
            self.pending.insert(seq, chunk);
        }
        folded
    }

    /// One-shot convenience: feeds the whole batch and drains it, with
    /// `out` cleared first — a drop-in parallel analogue of
    /// [`PacketClassifier::classify_batch`]. The bounded queue never
    /// deadlocks here: workers drain it concurrently into the unbounded
    /// result channel while this thread is still feeding.
    ///
    /// # Panics
    ///
    /// Panics if chunks from an earlier [`IngestPipeline::feed`] are
    /// still in flight (drain the stream first), or if a worker died.
    pub fn run_batch(&mut self, headers: &[Header], out: &mut Vec<Verdict>) -> LookupStats {
        assert_eq!(
            self.in_flight(),
            0,
            "drain() the fed stream before run_batch()"
        );
        out.clear();
        if headers.is_empty() {
            return LookupStats::default();
        }
        self.feed(headers);
        self.drain(out)
    }

    /// Closes the queue and joins every worker. Equivalent to dropping
    /// the pipeline, but explicit at call sites that care.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.feed_tx.take(); // closing the queue ends the worker loops
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One-shot *broadcast* fan-out over borrowed workers: every worker
/// classifies every chunk of `headers`, and verdict chunks are folded
/// into `out` through `merge` in arrival order (so `merge` must be
/// commutative and associative — e.g. a best-`(priority, id)` fold).
/// Returns the per-worker stats folded with `+`.
///
/// This is `ShardedEngine`'s hash-strategy batch path, exposed so any
/// set of heterogeneous engines can be queried-and-merged in parallel.
/// `out` must hold one pre-initialised merge seed per header (typically
/// `Verdict::miss(0)`).
///
/// # Panics
///
/// Panics if `workers` is empty (the merge seeds in `out` would pass
/// through untouched, silently classifying every header as a miss) or
/// if `out` is shorter than `headers`.
pub fn broadcast_batch<W, M>(
    workers: &mut [W],
    headers: &[Header],
    out: &mut [Verdict],
    merge: M,
    chunk: usize,
) -> LookupStats
where
    W: BatchWorker,
    M: Fn(&mut Verdict, &Verdict),
{
    assert!(!workers.is_empty(), "a broadcast needs >= 1 worker");
    assert!(out.len() >= headers.len(), "one merge slot per header");
    let chunk = chunk.max(1);
    let (tx, rx) = mpsc::channel::<(usize, Vec<Verdict>, LookupStats)>();
    let mut folded = LookupStats::default();
    std::thread::scope(|scope| {
        for worker in workers.iter_mut() {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut buf = Vec::new();
                for (ci, hunk) in headers.chunks(chunk).enumerate() {
                    let stats = worker.process(hunk, &mut buf);
                    // A send only fails if the receiver is gone, and the
                    // merge loop below outlives every worker.
                    let _ = tx.send((ci * chunk, std::mem::take(&mut buf), stats));
                }
            });
        }
        drop(tx);
        while let Ok((offset, verdicts, stats)) = rx.recv() {
            folded = folded + stats;
            for (slot, v) in out[offset..].iter_mut().zip(&verdicts) {
                merge(slot, v);
            }
        }
    });
    folded
}

/// One-shot *cascade* over borrowed workers in slice order: worker `k`
/// classifies its chunks, writes every hit straight to `out` (so the
/// workers must be ordered such that a hit at stage `k` cannot be beaten
/// by any later stage — priority bands are), and forwards only
/// unresolved headers to worker `k + 1`, carrying their accumulated
/// `mem_reads`. The last worker resolves misses too. Chunks ripple
/// through the stages concurrently. Returns per-worker stats folded
/// with `+`.
///
/// # Panics
///
/// Panics if `workers` is empty or `out` is shorter than `headers`.
pub fn cascade_batch<W: BatchWorker>(
    workers: &mut [W],
    headers: &[Header],
    out: &mut [Verdict],
    chunk: usize,
) -> LookupStats {
    assert!(!workers.is_empty(), "a cascade needs >= 1 stage");
    assert!(out.len() >= headers.len(), "one slot per header");
    let chunk = chunk.max(1);
    type Work = Vec<(usize, u32)>; // (header index, reads carried so far)
    let n = workers.len();
    let (res_tx, res_rx) = mpsc::channel::<Vec<(usize, Verdict)>>();
    let (stat_tx, stat_rx) = mpsc::channel::<LookupStats>();
    std::thread::scope(|scope| {
        // Seed stage 0 with the whole batch, nothing read yet.
        let (seed_tx, seed_rx) = mpsc::channel::<Work>();
        for chunk_start in (0..headers.len()).step_by(chunk) {
            let chunk_end = (chunk_start + chunk).min(headers.len());
            let _ = seed_tx.send((chunk_start..chunk_end).map(|i| (i, 0u32)).collect());
        }
        drop(seed_tx);

        let mut rx = seed_rx;
        for (k, worker) in workers.iter_mut().enumerate() {
            let is_last = k + 1 == n;
            let (fwd_tx, fwd_rx) = mpsc::channel::<Work>();
            let my_rx = std::mem::replace(&mut rx, fwd_rx);
            let res_tx = res_tx.clone();
            let stat_tx = stat_tx.clone();
            scope.spawn(move || {
                let mut gathered: Vec<Header> = Vec::new();
                let mut buf: Vec<Verdict> = Vec::new();
                let mut folded = LookupStats::default();
                while let Ok(items) = my_rx.recv() {
                    gathered.clear();
                    gathered.extend(items.iter().map(|&(i, _)| headers[i]));
                    folded = folded + worker.process(&gathered, &mut buf);
                    let mut resolved = Vec::new();
                    let mut unresolved: Work = Vec::new();
                    for (&(i, carried), v) in items.iter().zip(&buf) {
                        let mut v = *v;
                        v.add_reads(carried);
                        if v.is_hit() || is_last {
                            resolved.push((i, v));
                        } else {
                            unresolved.push((i, v.mem_reads));
                        }
                    }
                    if !resolved.is_empty() {
                        let _ = res_tx.send(resolved);
                    }
                    if !unresolved.is_empty() {
                        let _ = fwd_tx.send(unresolved);
                    }
                }
                // Dropping fwd_tx here closes the downstream stage's
                // inbox, draining the pipeline stage by stage.
                let _ = stat_tx.send(folded);
            });
        }
        drop(res_tx);
        drop(stat_tx);
        while let Ok(batch) = res_rx.recv() {
            for (i, v) in batch {
                out[i] = v;
            }
        }
    });
    let mut folded = LookupStats::default();
    while let Ok(s) = stat_rx.try_recv() {
        folded = folded + s;
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use spc_types::{Action, PortRange, Priority, ProtoSpec, Rule, RuleId, RuleSet};

    fn rules(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .action(Action::Forward(i as u16))
                    .build()
            })
            .collect()
    }

    fn hdr(port: u16) -> Header {
        Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 7, port, 6)
    }

    fn trace(n: usize, rules: u16) -> Vec<Header> {
        (0..n)
            .map(|i| hdr((i % usize::from(rules)) as u16))
            .collect()
    }

    #[test]
    fn cloned_pool_matches_sequential() {
        let rules = rules(32);
        let t = trace(500, 40);
        let seq = EngineBuilder::new(EngineKind::Linear)
            .build(&rules)
            .unwrap();
        let want: Vec<Verdict> = t.iter().map(|h| seq.classify(h)).collect();
        let source =
            EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 3).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 3,
                queue_chunks: 2,
                chunk: 64,
            },
        )
        .unwrap();
        assert_eq!(pipe.worker_count(), 3);
        let mut out = Vec::new();
        let stats = pipe.run_batch(&t, &mut out);
        assert_eq!(out, want, "pool verdicts must equal sequential, in order");
        assert_eq!(stats.packets, t.len() as u64);
        assert_eq!(
            stats.hits,
            want.iter().filter(|v| v.is_hit()).count() as u64
        );
        // The pool is reusable: a second batch through the same threads.
        let stats2 = pipe.run_batch(&t, &mut out);
        assert_eq!(stats2.packets, stats.packets);
        pipe.shutdown();
    }

    #[test]
    fn shared_pool_matches_sequential() {
        let rules = rules(16);
        let t = trace(300, 20);
        let engine: Arc<dyn PacketClassifier> = Arc::from(
            EngineBuilder::new(EngineKind::ConfigurableMbt)
                .build(&rules)
                .unwrap(),
        );
        let want: Vec<Verdict> = t.iter().map(|h| engine.classify(h)).collect();
        let mut pipe = IngestPipeline::spawn(
            EngineSource::Shared(engine),
            IngestConfig {
                workers: 4,
                queue_chunks: 4,
                chunk: 32,
            },
        )
        .unwrap();
        let mut out = Vec::new();
        pipe.run_batch(&t, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn feed_drain_streams_in_order() {
        let rules = rules(8);
        let source =
            EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 2).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 2,
                queue_chunks: 2,
                chunk: 16,
            },
        )
        .unwrap();
        let mut out = Vec::new();
        let mut folded = LookupStats::default();
        // Three feed rounds, one drain: verdicts arrive in feed order.
        for round in 0..3u16 {
            let t: Vec<Header> = (0..40).map(|i| hdr((round * 40 + i) % 10)).collect();
            pipe.feed(&t);
        }
        assert_eq!(pipe.in_flight(), 9, "3 rounds x ceil(40/16) chunks");
        folded = folded + pipe.drain(&mut out);
        assert_eq!(pipe.in_flight(), 0);
        assert_eq!(out.len(), 120);
        assert_eq!(folded.packets, 120);
        for (i, v) in out.iter().enumerate() {
            let port = i % 10; // header i carried port (i % 10)
            let want = (port < 8).then_some(RuleId(port as u32)); // rules cover 0..8
            assert_eq!(v.rule, want, "stream order at {i}");
        }
    }

    #[test]
    fn zero_length_batch() {
        let rules = rules(4);
        let source =
            EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 2).unwrap();
        let mut pipe = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 2,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        let mut out = vec![Verdict::miss(3)];
        let stats = pipe.run_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(stats, LookupStats::default());
    }

    /// A worker that panics on its first chunk.
    #[derive(Debug)]
    struct PanickingWorker;

    impl BatchWorker for PanickingWorker {
        fn process(&mut self, _headers: &[Header], _out: &mut Vec<Verdict>) -> LookupStats {
            panic!("worker exploded");
        }
    }

    #[test]
    fn dead_worker_fails_drain_loudly_instead_of_hanging() {
        // One healthy worker keeps the result channel open, so only the
        // death marker can unblock drain() — the regression this guards
        // against is drain() waiting forever on the dead worker's seq.
        let rules = rules(4);
        let healthy = EngineBuilder::new(EngineKind::Linear)
            .build(&rules)
            .unwrap();
        let workers: Vec<Box<dyn BatchWorker>> = vec![Box::new(PanickingWorker), Box::new(healthy)];
        let mut pipe = IngestPipeline::from_workers(
            workers,
            IngestConfig {
                workers: 2,
                queue_chunks: 4,
                chunk: 4,
            },
        )
        .unwrap();
        let t = trace(32, 4);
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Vec::new();
            pipe.run_batch(&t, &mut out)
        }));
        let err = got.expect_err("drain must panic, not hang");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("worker panicked while classifying"),
            "unexpected panic payload: {msg}"
        );
    }

    #[test]
    fn cloned_worker_count_mismatch_is_an_error() {
        let rules = rules(4);
        let source =
            EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 2).unwrap();
        let e = IngestPipeline::spawn(
            source,
            IngestConfig {
                workers: 8, // disagrees with the 2 replicas
                ..IngestConfig::default()
            },
        );
        assert!(matches!(e, Err(PipelineError::Config { .. })));
    }

    #[test]
    fn bad_configs_are_errors() {
        let rules = rules(4);
        let mk = || EngineSource::replicated(&EngineBuilder::new(EngineKind::Linear), &rules, 1);
        for config in [
            IngestConfig {
                workers: 1,
                queue_chunks: 0,
                ..IngestConfig::default()
            },
            IngestConfig {
                workers: 1,
                chunk: 0,
                ..IngestConfig::default()
            },
        ] {
            assert!(matches!(
                IngestPipeline::spawn(mk().unwrap(), config),
                Err(PipelineError::Config { .. })
            ));
        }
        assert!(matches!(
            IngestPipeline::spawn(EngineSource::Cloned(Vec::new()), IngestConfig::default()),
            Err(PipelineError::Config { .. })
        ));
        let engine: Arc<dyn PacketClassifier> = Arc::from(
            EngineBuilder::new(EngineKind::Linear)
                .build(&rules)
                .unwrap(),
        );
        let e = IngestPipeline::spawn(
            EngineSource::Shared(engine),
            IngestConfig {
                workers: 0,
                ..IngestConfig::default()
            },
        );
        assert!(matches!(e, Err(PipelineError::Config { .. })));
        assert!(PipelineError::Config { reason: "x".into() }
            .to_string()
            .contains('x'));
    }
}
