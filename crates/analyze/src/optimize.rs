//! The semantics-preserving rule-set optimizer: an ordered pass pipeline
//! with a machine-checked proof obligation.
//!
//! [`optimize`] rewrites a rule set into a smaller one that classifies
//! every header the same way, in compiler style: each pass is a local
//! transform with its own soundness argument, and the *pipeline output*
//! is then re-validated from scratch by the independent equivalence
//! checker ([`crate::equivalence::check`]) — translation validation, not
//! trusted passes. A bug in any pass surfaces as
//! [`OptimizeError::ValidationFailed`] with a concrete witness header;
//! it can never silently change semantics.
//!
//! Passes, in order:
//!
//! 1. **Duplicate coalescing** — rules with identical match conditions
//!    collapse to the best-ranked one. The losers never win a header
//!    (identical region, worse `(priority, id)` rank), so winners are
//!    untouched.
//! 2. **Dead-rule elimination** — drops every rule the exact
//!    reachability sweep proves `Shadowed`. Both the exhaustive sweep
//!    and the pairwise fallback only report `Shadowed` with a proof, so
//!    this pass is sound even over budget ([`Reachability::Unknown`]
//!    rules are kept).
//! 3. **Range merging** (optional) — fuses same-priority same-action
//!    neighbours that differ only in one port dimension with
//!    overlapping/adjacent ranges. This preserves the *action* every
//!    header receives but may change which rule id reports it, so it is
//!    off in [`OptimizeConfig::id_preserving`] — the config engines use.
//! 4. **Priority renumbering** — compacts surviving priorities to a
//!    dense `0..k`. The map is strictly monotone (equal stays equal), so
//!    `(priority, id)` comparisons — and therefore every winner — are
//!    unchanged.
//!
//! The result carries a [`ProvenanceMap`] (optimized id → original id)
//! so downstream consumers can translate verdicts back into the caller's
//! id space.

use crate::equivalence::{self, Equivalence, MatchOutcome};
use crate::limits::AnalyzerLimits;
use crate::probe;
use crate::report::Reachability;
use spc_types::{Dim, DimValue, Header, PortRange, Priority, ProvenanceMap, Rule, RuleId, RuleSet};
use std::collections::HashMap;
use std::fmt;

/// Which passes [`optimize`] runs, and with what probe budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeConfig {
    /// Collapse rules with identical match conditions to the best-ranked
    /// occurrence.
    pub coalesce_duplicates: bool,
    /// Drop rules the reachability sweep proves can never win.
    pub eliminate_dead: bool,
    /// Fuse same-priority same-action port-range neighbours. Preserves
    /// actions, not winner ids — engines that must report original rule
    /// ids need this off (see [`OptimizeConfig::id_preserving`]).
    pub merge_ranges: bool,
    /// Compact surviving priorities to dense `0..k`.
    pub renumber_priorities: bool,
    /// Probe-grid budget for the reachability sweep and the final
    /// equivalence validation.
    pub probe_budget: usize,
}

impl Default for OptimizeConfig {
    /// The full pipeline: every pass on, default probe budget.
    fn default() -> Self {
        OptimizeConfig {
            coalesce_duplicates: true,
            eliminate_dead: true,
            merge_ranges: true,
            renumber_priorities: true,
            probe_budget: AnalyzerLimits::default().probe_budget,
        }
    }
}

impl OptimizeConfig {
    /// The strongest pipeline that still preserves winner *identity*
    /// modulo provenance: range merging off, everything else on. An
    /// engine built from this output can remap every verdict to the
    /// exact rule id the original set would have reported —
    /// `spc_engine`'s `OptimizePolicy::Validated` uses this config.
    pub fn id_preserving() -> Self {
        OptimizeConfig {
            merge_ranges: false,
            ..OptimizeConfig::default()
        }
    }

    /// Returns `self` with a different probe budget.
    pub fn with_probe_budget(mut self, cells: usize) -> Self {
        self.probe_budget = cells;
        self
    }
}

/// Which pass a [`PassReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PassKind {
    /// Duplicate coalescing.
    DuplicateCoalescing,
    /// Dead-rule elimination.
    DeadRuleElimination,
    /// Port-range merging.
    RangeMerging,
    /// Priority renumbering.
    PriorityRenumbering,
}

impl PassKind {
    /// Stable machine-readable name for JSON output.
    pub fn code(self) -> &'static str {
        match self {
            PassKind::DuplicateCoalescing => "duplicate-coalescing",
            PassKind::DeadRuleElimination => "dead-rule-elimination",
            PassKind::RangeMerging => "range-merging",
            PassKind::PriorityRenumbering => "priority-renumbering",
        }
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What one pass did: the provenance of every removal, plus pass-specific
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    /// Which pass ran.
    pub pass: PassKind,
    /// Original-set ids this pass eliminated (empty for renumbering).
    pub removed: Vec<RuleId>,
    /// Range pairs fused ([`PassKind::RangeMerging`] only).
    pub merges: usize,
    /// Rules whose priority value changed
    /// ([`PassKind::PriorityRenumbering`] only).
    pub renumbered: usize,
}

/// The optimizer's output: the rewritten set, the id translation back to
/// the original, per-pass provenance, and the validation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedRuleSet {
    /// The optimized rules, re-indexed `0..len` in original-id order.
    pub rules: RuleSet,
    /// Optimized id → original id.
    pub provenance: ProvenanceMap,
    /// One report per pass that ran, in pipeline order.
    pub passes: Vec<PassReport>,
    /// The equivalence checker's verdict on (original, optimized). Never
    /// [`Equivalence::Differs`] — that is returned as
    /// [`OptimizeError::ValidationFailed`] instead. May be
    /// [`Equivalence::Unknown`] when the union grid exceeds the budget;
    /// the per-pass proofs still hold (each removal was individually
    /// proven), the global re-check just could not finish.
    pub validation: Equivalence,
    /// Whether winner identity modulo provenance is guaranteed (no range
    /// merge fired): on every header, the optimized winner's provenance
    /// is exactly the original set's winner.
    pub id_preserving: bool,
    /// Rule count before optimization.
    pub original_rules: usize,
}

impl OptimizedRuleSet {
    /// Rules eliminated across all passes.
    pub fn removed_rules(&self) -> usize {
        self.original_rules - self.rules.len()
    }

    /// Every original id eliminated, in pass order.
    pub fn removed_ids(&self) -> Vec<RuleId> {
        self.passes
            .iter()
            .flat_map(|p| p.removed.iter().copied())
            .collect()
    }

    /// The original-set id behind an optimized id.
    pub fn original_id(&self, optimized: RuleId) -> Option<RuleId> {
        self.provenance.original(optimized)
    }
}

/// Error from [`optimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptimizeError {
    /// The pipeline output failed re-validation against the original set
    /// — an optimizer bug, caught before it could ship. The witness is a
    /// concrete header the two sets disagree on.
    ValidationFailed {
        /// Header on which the sets disagree.
        witness: Header,
        /// The original set's outcome on the witness.
        original: MatchOutcome,
        /// The optimized set's outcome on the witness (its own id space).
        optimized: MatchOutcome,
    },
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::ValidationFailed {
                witness,
                original,
                optimized,
            } => {
                let show = |v: &MatchOutcome| match v {
                    Some((id, action)) => format!("{id}->{action}"),
                    None => "miss".to_string(),
                };
                write!(
                    f,
                    "optimizer output failed equivalence validation on {witness}: \
                     original={} optimized={}",
                    show(original),
                    show(optimized)
                )
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Runs the pass pipeline over `rules` and validates the output with the
/// equivalence checker before returning it.
///
/// ```
/// use spc_analyze::optimize::{optimize, OptimizeConfig};
/// use spc_types::{PortRange, Priority, Rule, RuleId, RuleSet};
///
/// let rules = RuleSet::from_rules(vec![
///     Rule::any(Priority(0)),
///     // Shadowed by the catch-all: provably dead.
///     Rule::builder(Priority(1)).dst_port(PortRange::exact(80)).build(),
/// ]);
/// let opt = optimize(&rules, &OptimizeConfig::default()).unwrap();
/// assert_eq!(opt.rules.len(), 1);
/// assert_eq!(opt.removed_ids(), vec![RuleId(1)]);
/// assert!(opt.validation.is_equivalent());
/// ```
///
/// # Errors
///
/// [`OptimizeError::ValidationFailed`] when the rewritten set is not
/// equivalent to the input — which indicates a bug in a pass, not in the
/// input.
pub fn optimize(
    rules: &RuleSet,
    config: &OptimizeConfig,
) -> Result<OptimizedRuleSet, OptimizeError> {
    // The working set: (original id, possibly-rewritten rule), kept in
    // original-id order throughout so the final re-indexing is stable.
    let mut live: Vec<(RuleId, Rule)> = rules.iter().map(|(id, r)| (id, *r)).collect();
    let mut passes = Vec::new();
    let mut merged_any = false;

    if config.coalesce_duplicates {
        passes.push(coalesce_duplicates(&mut live));
    }
    if config.eliminate_dead {
        passes.push(eliminate_dead(&mut live, config.probe_budget));
    }
    if config.merge_ranges {
        let report = merge_ranges(&mut live);
        merged_any = report.merges > 0;
        passes.push(report);
    }
    if config.renumber_priorities {
        passes.push(renumber_priorities(&mut live));
    }

    let optimized: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let provenance = ProvenanceMap::from_vec(live.iter().map(|&(id, _)| id).collect());
    let id_preserving = !merged_any;

    // Translation validation: re-check the whole pipeline's output
    // against the input with the independent decision procedure, at the
    // strongest level the pipeline claims to uphold.
    let limits = AnalyzerLimits::default().with_probe_budget(config.probe_budget);
    let validation = if id_preserving {
        equivalence::check_mapped(rules, &optimized, &provenance, &limits)
    } else {
        equivalence::check(rules, &optimized, &limits)
    };
    if let Equivalence::Differs {
        witness,
        verdict_a,
        verdict_b,
    } = validation
    {
        return Err(OptimizeError::ValidationFailed {
            witness,
            original: verdict_a,
            optimized: verdict_b,
        });
    }

    Ok(OptimizedRuleSet {
        rules: optimized,
        provenance,
        passes,
        validation,
        id_preserving,
        original_rules: rules.len(),
    })
}

/// Pass 1: collapse identical match conditions to the best-ranked rule.
fn coalesce_duplicates(live: &mut Vec<(RuleId, Rule)>) -> PassReport {
    // Best (priority, id) rank per distinct 7-dim key.
    let mut best: HashMap<[DimValue; 7], (Priority, RuleId)> = HashMap::new();
    for &(id, ref rule) in live.iter() {
        let rank = (rule.priority, id);
        best.entry(rule.dim_values())
            .and_modify(|b| {
                if rank < *b {
                    *b = rank;
                }
            })
            .or_insert(rank);
    }
    let mut removed = Vec::new();
    live.retain(|&(id, ref rule)| {
        let keep = best[&rule.dim_values()] == (rule.priority, id);
        if !keep {
            removed.push(id);
        }
        keep
    });
    PassReport {
        pass: PassKind::DuplicateCoalescing,
        removed,
        merges: 0,
        renumbered: 0,
    }
}

/// Pass 2: drop rules the reachability sweep proves `Shadowed`.
///
/// Removing never-winning rules changes no header's winner, and because
/// earlier passes only removed never-winning rules too, `Shadowed` on
/// the current working set implies shadowed in the original set.
fn eliminate_dead(live: &mut Vec<(RuleId, Rule)>, budget: usize) -> PassReport {
    let working: RuleSet = live.iter().map(|&(_, r)| r).collect();
    let sweep = probe::reachability(&working, budget);
    let mut removed = Vec::new();
    let mut pos = 0usize;
    live.retain(|&(id, _)| {
        let dead = matches!(sweep.reachability[pos], Reachability::Shadowed);
        pos += 1;
        if dead {
            removed.push(id);
        }
        !dead
    });
    PassReport {
        pass: PassKind::DeadRuleElimination,
        removed,
        merges: 0,
        renumbered: 0,
    }
}

/// Inclusive per-dimension bounds of a rule's match region.
fn region(rule: &Rule) -> [(u16, u16); 7] {
    spc_types::ALL_DIMS.map(|d| probe::bounds(rule.dim_value(d)))
}

/// Whether two rules' match regions intersect (a non-empty header set
/// matches both).
fn regions_intersect(a: &[(u16, u16); 7], b: &[(u16, u16); 7]) -> bool {
    a.iter()
        .zip(b)
        .all(|(&(alo, ahi), &(blo, bhi))| alo <= bhi && blo <= ahi)
}

/// Whether `a` and `b` differ in exactly one *port* dimension whose
/// ranges are overlapping or adjacent (union contiguous), and are
/// identical everywhere else. Returns that dimension.
fn mergeable_dim(a: &Rule, b: &Rule) -> Option<Dim> {
    if a.priority != b.priority || a.action != b.action {
        return None;
    }
    let mut diff: Option<Dim> = None;
    for dim in spc_types::ALL_DIMS {
        if a.dim_value(dim) == b.dim_value(dim) {
            continue;
        }
        if diff.is_some() || (dim != Dim::SrcPort && dim != Dim::DstPort) {
            return None;
        }
        diff = Some(dim);
    }
    let dim = diff?;
    let (ra, rb) = match dim {
        Dim::SrcPort => (a.src_port, b.src_port),
        _ => (a.dst_port, b.dst_port),
    };
    let contiguous = ra.overlaps(rb)
        || (ra.hi() < u16::MAX && ra.hi() + 1 == rb.lo())
        || (rb.hi() < u16::MAX && rb.hi() + 1 == ra.lo());
    contiguous.then_some(dim)
}

/// Pass 3: fuse same-priority same-action port-range neighbours, to a
/// fixpoint.
///
/// The fused rule's region is exactly the union of its parents' (six
/// dimensions identical, one contiguous range union), and strictly
/// higher- or lower-priority rules see that union the same way before
/// and after. The one hazard is an id tie-break *within* the same
/// priority: a third equal-priority rule overlapping the absorbed region
/// could have out-ranked the absorbed rule but not the survivor. The
/// pass refuses any merge where another equal-priority rule's region
/// intersects the union, so that interleaving cannot arise — and the
/// pipeline-level validation would catch it even if this guard were
/// wrong.
fn merge_ranges(live: &mut Vec<(RuleId, Rule)>) -> PassReport {
    let mut removed = Vec::new();
    let mut merges = 0usize;
    loop {
        let mut fused = false;
        'scan: for i in 0..live.len() {
            for j in (i + 1)..live.len() {
                let (a, b) = (live[i].1, live[j].1);
                let Some(dim) = mergeable_dim(&a, &b) else {
                    continue;
                };
                let mut union = a;
                let (ra, rb) = match dim {
                    Dim::SrcPort => (a.src_port, b.src_port),
                    _ => (a.dst_port, b.dst_port),
                };
                let merged_range = PortRange::new(ra.lo().min(rb.lo()), ra.hi().max(rb.hi()))
                    .unwrap_or(PortRange::ANY);
                match dim {
                    Dim::SrcPort => union.src_port = merged_range,
                    _ => union.dst_port = merged_range,
                }
                let union_region = region(&union);
                let clash = live.iter().enumerate().any(|(k, (_, c))| {
                    k != i
                        && k != j
                        && c.priority == a.priority
                        && regions_intersect(&region(c), &union_region)
                });
                if clash {
                    continue;
                }
                // Keep the better-ranked identity (equal priorities, so
                // the smaller original id — position i).
                live[i].1 = union;
                removed.push(live[j].0);
                live.remove(j);
                merges += 1;
                fused = true;
                break 'scan;
            }
        }
        if !fused {
            break;
        }
    }
    PassReport {
        pass: PassKind::RangeMerging,
        removed,
        merges,
        renumbered: 0,
    }
}

/// Pass 4: compact priorities to dense ranks. Strictly monotone, so
/// every `(priority, id)` comparison — and every winner — is preserved.
fn renumber_priorities(live: &mut [(RuleId, Rule)]) -> PassReport {
    let mut prios: Vec<Priority> = live.iter().map(|&(_, r)| r.priority).collect();
    prios.sort_unstable();
    prios.dedup();
    let rank: HashMap<Priority, u32> = prios
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u32))
        .collect();
    let mut renumbered = 0usize;
    for (_, rule) in live.iter_mut() {
        let dense = Priority(rank[&rule.priority]);
        if rule.priority != dense {
            rule.priority = dense;
            renumbered += 1;
        }
    }
    PassReport {
        pass: PassKind::PriorityRenumbering,
        removed: Vec::new(),
        merges: 0,
        renumbered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Action, Prefix, ProtoSpec};

    fn cfg() -> OptimizeConfig {
        OptimizeConfig::default()
    }

    #[test]
    fn empty_set_optimizes_to_empty() {
        let opt = optimize(&RuleSet::new(), &cfg()).unwrap();
        assert_eq!(opt.rules.len(), 0);
        assert!(opt.provenance.is_empty());
        assert!(opt.id_preserving);
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn clean_set_is_untouched() {
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::exact(80))
                .proto(ProtoSpec::Exact(6))
                .action(Action::Forward(1))
                .build(),
            Rule::any(Priority(1)),
        ]);
        let opt = optimize(&rules, &cfg()).unwrap();
        assert_eq!(opt.removed_rules(), 0);
        assert!(opt.provenance.is_identity());
        // Priorities were already dense; nothing renumbered.
        assert!(opt.passes.iter().all(|p| p.renumbered == 0));
    }

    #[test]
    fn duplicates_keep_the_best_rank() {
        // The *second* occurrence has the better priority: it must be
        // the survivor, not the first-by-id.
        let mut first = Rule::builder(Priority(5))
            .dst_port(PortRange::exact(80))
            .build();
        first.action = Action::Drop;
        let mut better = first;
        better.priority = Priority(1);
        let rules = RuleSet::from_rules(vec![first, better, Rule::any(Priority(9))]);
        let opt = optimize(&rules, &cfg()).unwrap();
        assert_eq!(opt.removed_ids(), vec![RuleId(0)]);
        assert_eq!(opt.provenance.original(RuleId(0)), Some(RuleId(1)));
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn dead_rules_are_eliminated_with_provenance() {
        let rules = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::builder(Priority(1))
                .dst_port(PortRange::exact(80))
                .build(),
            Rule::builder(Priority(2))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .build(),
        ]);
        let opt = optimize(&rules, &cfg()).unwrap();
        assert_eq!(opt.rules.len(), 1);
        assert_eq!(opt.removed_ids(), vec![RuleId(1), RuleId(2)]);
        let dead = opt
            .passes
            .iter()
            .find(|p| p.pass == PassKind::DeadRuleElimination)
            .unwrap();
        assert_eq!(dead.removed, vec![RuleId(1), RuleId(2)]);
        assert!(opt.id_preserving);
    }

    #[test]
    fn adjacent_ranges_merge_when_safe() {
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 99).unwrap())
                .proto(ProtoSpec::Exact(6))
                .build(),
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(100, 200).unwrap())
                .proto(ProtoSpec::Exact(6))
                .build(),
        ]);
        let opt = optimize(&rules, &cfg()).unwrap();
        assert_eq!(opt.rules.len(), 1);
        assert!(!opt.id_preserving);
        let merged = opt.rules.get(RuleId(0)).unwrap();
        assert_eq!(merged.dst_port, PortRange::new(0, 200).unwrap());
        assert_eq!(opt.provenance.original(RuleId(0)), Some(RuleId(0)));
        let merge = opt
            .passes
            .iter()
            .find(|p| p.pass == PassKind::RangeMerging)
            .unwrap();
        assert_eq!(merge.merges, 1);
        assert_eq!(merge.removed, vec![RuleId(1)]);
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn merge_refused_when_a_tie_break_could_flip() {
        // Rule 1 (same priority, different action) overlaps the union of
        // rules 0 and 2: merging 0+2 would move part of the region from
        // "loses the id tie-break to rule 1" to "wins it".
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 99).unwrap())
                .action(Action::Forward(1))
                .build(),
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(150, 160).unwrap())
                .action(Action::Drop)
                .build(),
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(100, 200).unwrap())
                .action(Action::Forward(1))
                .build(),
        ]);
        let opt = optimize(&rules, &cfg()).unwrap();
        // No merge fired; semantics were at stake.
        assert_eq!(opt.rules.len(), 3);
        assert!(opt.id_preserving);
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn priorities_renumber_densely() {
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(700))
                .dst_port(PortRange::exact(443))
                .build(),
            Rule::builder(Priority(700))
                .dst_port(PortRange::exact(80))
                .build(),
            Rule::any(Priority(9000)),
        ]);
        let opt = optimize(&rules, &cfg()).unwrap();
        let prios: Vec<u32> = opt.rules.iter().map(|(_, r)| r.priority.0).collect();
        assert_eq!(prios, vec![0, 0, 1]);
        let pass = opt
            .passes
            .iter()
            .find(|p| p.pass == PassKind::PriorityRenumbering)
            .unwrap();
        assert_eq!(pass.renumbered, 3);
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn id_preserving_config_never_merges() {
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 99).unwrap())
                .build(),
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(100, 200).unwrap())
                .build(),
        ]);
        let opt = optimize(&rules, &OptimizeConfig::id_preserving()).unwrap();
        assert_eq!(opt.rules.len(), 2);
        assert!(opt.id_preserving);
        assert!(opt.validation.is_equivalent());
    }

    #[test]
    fn over_budget_validation_is_unknown_but_removals_stay_proven() {
        // A grid too big for a 1-cell budget: dead elimination falls
        // back to pairwise proofs and validation reports Unknown.
        let rules = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::builder(Priority(1))
                .dst_port(PortRange::exact(80))
                .build(),
        ]);
        let opt = optimize(&rules, &cfg().with_probe_budget(1)).unwrap();
        // The pairwise cover proof still eliminates the dead rule.
        assert_eq!(opt.removed_ids(), vec![RuleId(1)]);
        assert!(matches!(opt.validation, Equivalence::Unknown { .. }));
        assert!(!opt.validation.is_equivalent());
    }

    #[test]
    fn optimized_set_agrees_with_original_everywhere() {
        // End-to-end: probe the union grid of (original, optimized) by
        // hand and compare oracle outcomes through the provenance map.
        let rules = RuleSet::from_rules(vec![
            Rule::builder(Priority(3))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .action(Action::Forward(1))
                .build(),
            Rule::builder(Priority(3))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .action(Action::Forward(2))
                .build(), // duplicate conditions, worse rank: dead
            Rule::any(Priority(7)),
            Rule::any(Priority(8)), // shadowed catch-all
        ]);
        let opt = optimize(&rules, &OptimizeConfig::id_preserving()).unwrap();
        assert_eq!(opt.rules.len(), 2);
        let cands = crate::candidate_values(&rules);
        for &s in &cands[0] {
            for &p in &cands[5] {
                let h = crate::header_from_dims([s, 0, 0, 0, 0, p, 0]);
                let want = rules.classify(&h).map(|(id, r)| (id, r.action));
                let got = opt
                    .rules
                    .classify(&h)
                    .and_then(|(id, r)| opt.original_id(id).map(|orig| (orig, r.action)));
                assert_eq!(want, got, "header {h}");
            }
        }
    }

    #[test]
    fn error_display_carries_the_witness() {
        let e = OptimizeError::ValidationFailed {
            witness: Header::default(),
            original: Some((RuleId(0), Action::Drop)),
            optimized: None,
        };
        let text = e.to_string();
        assert!(text.contains("miss"), "{text}");
        assert!(text.contains("drop"), "{text}");
    }
}
