//! Boundary-value probe grids and the exact reachability sweep.
//!
//! The oracle HPM verdict is piecewise-constant over the product cells of
//! per-dimension *elementary intervals*: cut each 16-bit dimension at every
//! rule bound and the verdict cannot change inside a cell, because no rule's
//! membership changes inside one. Probing one representative per cell —
//! the interval's left endpoint — therefore observes **every** verdict the
//! rule set can produce. A rule that never wins any cell is exactly
//! unreachable; one that wins some cell is reachable with that cell's
//! representative header as witness.

use crate::report::Reachability;
use spc_types::{DimValue, Header, Ipv4, ProtoSpec, Rule, RuleSet, ALL_DIMS};

/// Inclusive query-value bounds of a rule's projection on one dimension.
pub(crate) fn bounds(v: DimValue) -> (u16, u16) {
    match v {
        DimValue::Seg(s) => (s.first(), s.last()),
        DimValue::Port(r) => (r.lo(), r.hi()),
        DimValue::Proto(ProtoSpec::Any) => (0, 0xff),
        DimValue::Proto(ProtoSpec::Exact(p)) => (u16::from(p), u16::from(p)),
    }
}

/// The left endpoints of every elementary interval a rule set induces,
/// per dimension in [`ALL_DIMS`] order: `{0} ∪ {lo} ∪ {hi + 1}` over all
/// rules, clipped to the dimension's domain (protocol values stop at 255
/// — a header cannot carry more). Each list is sorted and deduplicated,
/// so the product of the list lengths is the exact number of cells the
/// verdict function can distinguish.
pub fn candidate_values(rules: &RuleSet) -> [Vec<u16>; 7] {
    ALL_DIMS.map(|dim| {
        let domain_max: u16 = if dim == spc_types::Dim::Proto {
            0xff
        } else {
            0xffff
        };
        let mut vals = vec![0u16];
        for rule in rules {
            let (lo, hi) = bounds(rule.dim_value(dim));
            vals.push(lo);
            if hi < domain_max {
                vals.push(hi + 1);
            }
        }
        vals.sort_unstable();
        vals.dedup();
        vals
    })
}

/// Builds the header whose seven dimension queries are exactly `vals`
/// (in [`ALL_DIMS`] order). Protocol values must fit a byte.
pub fn header_from_dims(vals: [u16; 7]) -> Header {
    debug_assert!(vals[6] <= 0xff, "protocol dimension is 8-bit");
    let sip = (u32::from(vals[0]) << 16) | u32::from(vals[1]);
    let dip = (u32::from(vals[2]) << 16) | u32::from(vals[3]);
    Header::new(Ipv4(sip), Ipv4(dip), vals[4], vals[5], vals[6] as u8)
}

/// Number of probe cells, or `None` on overflow (certainly over budget).
pub fn grid_size(cands: &[Vec<u16>; 7]) -> Option<usize> {
    cands
        .iter()
        .try_fold(1usize, |acc, c| acc.checked_mul(c.len()))
}

/// Outcome of the reachability pass.
pub(crate) struct Sweep {
    /// Per-rule verdicts, indexed by rule id.
    pub reachability: Vec<Reachability>,
    /// Whether the full grid was examined (no `Unknown` verdicts).
    pub exhaustive: bool,
    /// Cells the sweep accounted for, or corner probes the fallback made.
    pub probes: usize,
    /// Exact elementary-interval grid size, or `None` on overflow.
    pub grid: Option<usize>,
}

/// Whether rule `a` (id `ai`) outranks rule `b` (id `bi`) in HPM
/// resolution: strictly smaller `(priority, id)`.
fn outranks(a: &Rule, ai: u32, b: &Rule, bi: u32) -> bool {
    (a.priority, ai) < (b.priority, bi)
}

/// Whether `a`'s match region contains `b`'s on every dimension.
pub(crate) fn covers_all_dims(a: &Rule, b: &Rule) -> bool {
    ALL_DIMS
        .iter()
        .all(|&d| a.dim_value(d).covers(b.dim_value(d)))
}

/// Computes per-rule reachability. Runs the exact sweep when the grid
/// fits `budget` cells; otherwise degrades to pairwise cover proofs plus
/// corner-witness probes and reports `exhaustive = false`.
pub(crate) fn reachability(rules: &RuleSet, budget: usize) -> Sweep {
    let cands = candidate_values(rules);
    let grid = grid_size(&cands);
    match grid {
        Some(cells) if cells <= budget => exact_sweep(rules, &cands, cells),
        _ => pairwise_fallback(rules, grid),
    }
}

fn exact_sweep(rules: &RuleSet, cands: &[Vec<u16>; 7], cells: usize) -> Sweep {
    let n = rules.len();
    let words = n.div_ceil(64);
    // Per dimension, per candidate value: bitmask of rules matching it.
    let masks: [Vec<Vec<u64>>; 7] = ALL_DIMS.map(|dim| {
        cands[dim.index()]
            .iter()
            .map(|&q| {
                let mut mask = vec![0u64; words];
                for (id, rule) in rules.iter() {
                    if rule.dim_value(dim).matches(q) {
                        mask[id.0 as usize / 64] |= 1 << (id.0 as usize % 64);
                    }
                }
                mask
            })
            .collect()
    });

    // Rank keys for winner resolution inside a cell.
    let rank: Vec<(spc_types::Priority, u32)> =
        rules.iter().map(|(id, r)| (r.priority, id.0)).collect();

    let mut reach: Vec<Option<Header>> = vec![None; n];
    let mut found = 0usize;
    // Depth-first product walk with running mask intersections; a depth's
    // scratch mask lives in `partial[depth + 1]`.
    let mut partial: Vec<Vec<u64>> = vec![vec![!0u64; words]; 8];
    let mut vals = [0u16; 7];
    let mut idx = [0usize; 7];
    let mut depth = 0usize;
    'walk: loop {
        if found == n {
            break; // every rule already has a witness
        }
        if depth == 7 {
            // Leaf: the intersection is the set of matching rules.
            let mask = &partial[7];
            let mut winner: Option<usize> = None;
            for (w, &bits) in mask.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let better = match winner {
                        None => true,
                        Some(b) => rank[i] < rank[b],
                    };
                    if better {
                        winner = Some(i);
                    }
                }
            }
            if let Some(i) = winner {
                if reach[i].is_none() {
                    reach[i] = Some(header_from_dims(vals));
                    found += 1;
                }
            }
            depth -= 1;
            idx[depth] += 1;
            continue;
        }
        let d = depth;
        loop {
            if idx[d] >= cands[d].len() {
                // This dimension is exhausted: backtrack.
                idx[d] = 0;
                if d == 0 {
                    break 'walk;
                }
                depth -= 1;
                idx[depth] += 1;
                continue 'walk;
            }
            vals[d] = cands[d][idx[d]];
            let (parent, rest) = partial.split_at_mut(d + 1);
            let src = &parent[d];
            let dst = &mut rest[0];
            let dim_mask = &masks[d][idx[d]];
            let mut any = 0u64;
            for w in 0..words {
                dst[w] = src[w] & dim_mask[w];
                any |= dst[w];
            }
            if any == 0 && n != 0 {
                // No rule survives this prefix: skip the whole subtree.
                idx[d] += 1;
                continue;
            }
            depth += 1;
            continue 'walk;
        }
    }

    let reachability = reach
        .into_iter()
        .map(|w| match w {
            Some(witness) => Reachability::Reachable { witness },
            None => Reachability::Shadowed,
        })
        .collect();
    Sweep {
        reachability,
        exhaustive: true,
        probes: cells,
        grid: Some(cells),
    }
}

fn pairwise_fallback(rules: &RuleSet, grid: Option<usize>) -> Sweep {
    let mut probes = 0usize;
    let reachability = rules
        .iter()
        .map(|(id, rule)| {
            let shadowed = rules.iter().any(|(oid, other)| {
                oid != id && outranks(other, oid.0, rule, id.0) && covers_all_dims(other, rule)
            });
            if shadowed {
                return Reachability::Shadowed;
            }
            // Corner probe: the rule's own lower-left cell.
            let corner = header_from_dims(ALL_DIMS.map(|d| bounds(rule.dim_value(d)).0));
            probes += 1;
            match rules.classify(&corner) {
                Some((wid, _)) if wid == id => Reachability::Reachable { witness: corner },
                _ => Reachability::Unknown,
            }
        })
        .collect();
    Sweep {
        reachability,
        exhaustive: false,
        probes,
        grid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{PortRange, Prefix, Priority, RuleId};

    #[test]
    fn candidates_cover_rule_bounds() {
        let rs = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .dst_port(PortRange::new(100, 200).unwrap())
            .build()]);
        let c = candidate_values(&rs);
        // sip_hi: 0, 0x0a00 (prefix first), 0x0b00 (last + 1).
        assert_eq!(c[0], vec![0, 0x0a00, 0x0b00]);
        // dst_port: 0, 100, 201.
        assert_eq!(c[5], vec![0, 100, 201]);
        // proto wildcard adds nothing beyond {0}.
        assert_eq!(c[6], vec![0]);
    }

    #[test]
    fn header_round_trips_dims() {
        let vals = [0x0a00, 0x0001, 0xffff, 0, 80, 443, 6];
        let h = header_from_dims(vals);
        for d in ALL_DIMS {
            assert_eq!(d.query(&h), vals[d.index()]);
        }
    }

    #[test]
    fn sweep_finds_witness_and_shadow() {
        // Rule 0 (priority 0) covers everything; rule 1 is fully inside it.
        let all = Rule::any(Priority(0));
        let narrow = Rule::builder(Priority(1))
            .dst_port(PortRange::exact(80))
            .build();
        let rs = RuleSet::from_rules(vec![all, narrow]);
        let s = reachability(&rs, 1 << 17);
        assert!(s.exhaustive);
        assert!(matches!(s.reachability[0], Reachability::Reachable { .. }));
        assert!(matches!(s.reachability[1], Reachability::Shadowed));
    }

    #[test]
    fn sweep_witnesses_satisfy_oracle() {
        let rs = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 100).unwrap())
                .build(),
            Rule::builder(Priority(1))
                .dst_port(PortRange::new(50, 200).unwrap())
                .build(),
        ]);
        let s = reachability(&rs, 1 << 17);
        assert!(s.exhaustive);
        for (i, r) in s.reachability.iter().enumerate() {
            match r {
                Reachability::Reachable { witness } => {
                    assert_eq!(rs.classify(witness).unwrap().0, RuleId(i as u32));
                }
                other => panic!("rule {i} should be reachable, got {other:?}"),
            }
        }
    }

    #[test]
    fn fallback_is_sound() {
        let all = Rule::any(Priority(0));
        let narrow = Rule::builder(Priority(1))
            .dst_port(PortRange::exact(80))
            .build();
        let rs = RuleSet::from_rules(vec![all, narrow]);
        let s = reachability(&rs, 0); // force the pairwise path
        assert!(!s.exhaustive);
        assert!(matches!(s.reachability[0], Reachability::Reachable { .. }));
        assert!(matches!(s.reachability[1], Reachability::Shadowed));
    }
}
