//! Exact rule-set equivalence over the union elementary-interval grid.
//!
//! Two rule sets are *match-equivalent* when every header receives the
//! same outcome from both: either both miss, or both hit rules with the
//! same action. The HPM verdict of each set is piecewise-constant over
//! the product of its per-dimension elementary intervals, so the verdict
//! *pair* is piecewise-constant over the **union** grid — cut every
//! dimension at every bound of *either* set ([`crate::candidate_values`]
//! merged per dimension) and one representative probe per cell decides
//! the whole cell. Sweeping every union cell is therefore a decision
//! procedure, not a heuristic.
//!
//! The sweep is budgeted: when the walk would visit more cells than the
//! caller's probe budget it stops and reports [`Equivalence::Unknown`]
//! with how far it got — it never guesses. A difference found *before*
//! the budget runs out is still a proof ([`Equivalence::Differs`]
//! carries the witness header), so over-budget checks degrade soundly in
//! one direction only: `Equivalent` is always exact, never assumed.

use crate::limits::AnalyzerLimits;
use crate::probe::candidate_values;
use crate::probe::header_from_dims;
use spc_types::{Action, Header, ProvenanceMap, Rule, RuleId, RuleSet, ALL_DIMS};

/// One set's outcome for a header: the winning rule and its action, or
/// `None` on a miss. Ids are in the owning set's own id space.
pub type MatchOutcome = Option<(RuleId, Action)>;

/// The verdict of [`check`]: a proof of equivalence, a counterexample,
/// or a sound admission that the budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Every header produces the same outcome from both sets. Exact: the
    /// full union grid was accounted for.
    Equivalent {
        /// Union-grid cells accounted for (saturating; equals the union
        /// grid size when it fits `usize`).
        cells_swept: usize,
    },
    /// A concrete header on which the two sets disagree.
    Differs {
        /// The counterexample: classify it through both sets to see the
        /// disagreement.
        witness: Header,
        /// Set `a`'s outcome on the witness.
        verdict_a: MatchOutcome,
        /// Set `b`'s outcome on the witness.
        verdict_b: MatchOutcome,
    },
    /// The union grid exceeded the probe budget before a difference was
    /// found. The sets may or may not be equivalent — never treat this
    /// as `Equivalent`.
    Unknown {
        /// Cells accounted for before giving up.
        cells_swept: usize,
        /// The budget that was exhausted.
        budget: usize,
    },
}

impl Equivalence {
    /// Whether equivalence was *proven* (an `Unknown` is not a proof).
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent { .. })
    }

    /// Whether a concrete counterexample was found.
    pub fn differs(&self) -> bool {
        matches!(self, Equivalence::Differs { .. })
    }
}

impl std::fmt::Display for Equivalence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Equivalence::Equivalent { cells_swept } => {
                write!(f, "equivalent ({cells_swept} cells swept)")
            }
            Equivalence::Differs {
                witness,
                verdict_a,
                verdict_b,
            } => {
                let show = |v: &MatchOutcome| match v {
                    Some((id, action)) => format!("{id}->{action}"),
                    None => "miss".to_string(),
                };
                write!(
                    f,
                    "differs on {witness}: a={} b={}",
                    show(verdict_a),
                    show(verdict_b)
                )
            }
            Equivalence::Unknown {
                cells_swept,
                budget,
            } => write!(
                f,
                "unknown (probe budget {budget} exhausted; {cells_swept} grid cells accounted, \
                 pruned subtrees included)"
            ),
        }
    }
}

/// Decides whether `a` and `b` produce the same match outcome — same
/// action on a hit, or both miss — on **every** header, within
/// `limits.probe_budget` union-grid cells of work.
///
/// ```
/// use spc_analyze::{equivalence, AnalyzerLimits};
/// use spc_types::{Action, PortRange, Priority, Rule, RuleSet};
///
/// let a = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// let b = RuleSet::from_rules(vec![
///     Rule::any(Priority(0)),
///     // Dead weight: shadowed by the catch-all, same action anyway.
///     Rule::builder(Priority(1)).dst_port(PortRange::exact(80)).build(),
/// ]);
/// assert!(equivalence::check(&a, &b, &AnalyzerLimits::default()).is_equivalent());
///
/// let c = RuleSet::from_rules(vec![Rule::builder(Priority(0))
///     .dst_port(PortRange::exact(80))
///     .action(Action::Forward(1))
///     .build()]);
/// assert!(equivalence::check(&a, &c, &AnalyzerLimits::default()).differs());
/// ```
pub fn check(a: &RuleSet, b: &RuleSet, limits: &AnalyzerLimits) -> Equivalence {
    sweep(a, b, limits.probe_budget, |oa, ob| {
        outcome_action(oa) == outcome_action(ob)
    })
}

/// Decides the *stronger* property an id-preserving optimizer must
/// uphold: on every header, `original`'s winner is exactly the
/// provenance-translated winner of `optimized` (and the actions agree),
/// or both sets miss. This is what lets an engine built from the
/// optimized set remap verdicts back to original ids with no observable
/// difference.
pub fn check_mapped(
    original: &RuleSet,
    optimized: &RuleSet,
    provenance: &ProvenanceMap,
    limits: &AnalyzerLimits,
) -> Equivalence {
    sweep(original, optimized, limits.probe_budget, |oa, ob| {
        let mapped_b = ob.and_then(|(id, action)| provenance.original(id).map(|o| (o, action)));
        oa == mapped_b
    })
}

fn outcome_action(o: MatchOutcome) -> Option<Action> {
    o.map(|(_, action)| action)
}

/// Per-dimension union of the two sets' elementary-interval left
/// endpoints: the coarsest grid on which *both* verdict functions are
/// simultaneously piecewise-constant.
fn union_candidates(a: &RuleSet, b: &RuleSet) -> [Vec<u16>; 7] {
    let ca = candidate_values(a);
    let cb = candidate_values(b);
    let mut out = ca;
    for (u, extra) in out.iter_mut().zip(cb) {
        u.extend(extra);
        u.sort_unstable();
        u.dedup();
    }
    out
}

/// The budgeted union-grid sweep behind [`check`] / [`check_mapped`]:
/// walks the product grid depth-first with one bitmask universe covering
/// both sets (set `a` in bits `0..n_a`, set `b` in bits `n_a..n_a+n_b`),
/// pruning subtrees where *neither* set has a live rule (both miss
/// everywhere inside — equal by construction), and calls `same` on each
/// surviving cell's winner pair.
fn sweep(
    a: &RuleSet,
    b: &RuleSet,
    budget: usize,
    same: impl Fn(MatchOutcome, MatchOutcome) -> bool,
) -> Equivalence {
    let cands = union_candidates(a, b);
    let na = a.len();
    let n = na + b.len();
    let words = n.div_ceil(64).max(1);

    let set_bit = |mask: &mut [u64], i: usize| mask[i / 64] |= 1 << (i % 64);
    // Per dimension, per union candidate value: bitmask of rules (from
    // either set) matching it.
    let masks: [Vec<Vec<u64>>; 7] = ALL_DIMS.map(|dim| {
        cands[dim.index()]
            .iter()
            .map(|&q| {
                let mut mask = vec![0u64; words];
                for (id, rule) in a.iter() {
                    if rule.dim_value(dim).matches(q) {
                        set_bit(&mut mask, id.0 as usize);
                    }
                }
                for (id, rule) in b.iter() {
                    if rule.dim_value(dim).matches(q) {
                        set_bit(&mut mask, na + id.0 as usize);
                    }
                }
                mask
            })
            .collect()
    });

    // Rank keys for HPM resolution, one entry per universe bit.
    let rank: Vec<(spc_types::Priority, u32)> = a
        .iter()
        .map(|(id, r): (RuleId, &Rule)| (r.priority, id.0))
        .chain(b.iter().map(|(id, r)| (r.priority, id.0)))
        .collect();
    let outcome_of = |set: &RuleSet, local: Option<usize>| -> MatchOutcome {
        local.map(|i| {
            let id = RuleId(i as u32);
            (id, set.get(id).map(|r| r.action).unwrap_or_default())
        })
    };

    // Suffix products of the remaining dimensions' candidate counts
    // (saturating): the number of cells a pruned subtree accounts for.
    let mut subtree = [1usize; 8];
    for d in (0..7).rev() {
        subtree[d] = subtree[d + 1].saturating_mul(cands[d].len());
    }

    let mut cells_swept = 0usize;
    let mut visited = 0usize; // leaves actually probed (the work bound)
    let mut partial: Vec<Vec<u64>> = vec![vec![!0u64; words]; 8];
    let mut vals = [0u16; 7];
    let mut idx = [0usize; 7];
    let mut depth = 0usize;
    'walk: loop {
        if depth == 7 {
            if visited >= budget {
                return Equivalence::Unknown {
                    cells_swept,
                    budget,
                };
            }
            visited += 1;
            cells_swept = cells_swept.saturating_add(1);
            // Winner of each set inside this cell, by (priority, id) rank.
            let mask = &partial[7];
            let mut win_a: Option<usize> = None;
            let mut win_b: Option<usize> = None;
            for (w, &bits) in mask.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let slot = if i < na { &mut win_a } else { &mut win_b };
                    let better = match *slot {
                        None => true,
                        Some(prev) => rank[i] < rank[prev],
                    };
                    if better {
                        *slot = Some(i);
                    }
                }
            }
            let oa = outcome_of(a, win_a);
            let ob = outcome_of(b, win_b.map(|i| i - na));
            if !same(oa, ob) {
                return Equivalence::Differs {
                    witness: header_from_dims(vals),
                    verdict_a: oa,
                    verdict_b: ob,
                };
            }
            depth -= 1;
            idx[depth] += 1;
            continue;
        }
        let d = depth;
        loop {
            if idx[d] >= cands[d].len() {
                idx[d] = 0;
                if d == 0 {
                    break 'walk;
                }
                depth -= 1;
                idx[depth] += 1;
                continue 'walk;
            }
            vals[d] = cands[d][idx[d]];
            let (parent, rest) = partial.split_at_mut(d + 1);
            let src = &parent[d];
            let dst = &mut rest[0];
            let dim_mask = &masks[d][idx[d]];
            let mut any = 0u64;
            for w in 0..words {
                dst[w] = src[w] & dim_mask[w];
                any |= dst[w];
            }
            if any == 0 && n != 0 {
                // No rule of either set survives this prefix: every cell
                // below is miss-vs-miss, equal by construction.
                cells_swept = cells_swept.saturating_add(subtree[d + 1]);
                idx[d] += 1;
                continue;
            }
            depth += 1;
            continue 'walk;
        }
    }
    Equivalence::Equivalent { cells_swept }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{PortRange, Prefix, Priority};

    fn limits() -> AnalyzerLimits {
        AnalyzerLimits::default()
    }

    #[test]
    fn identical_sets_are_equivalent() {
        let rs = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .action(Action::Forward(1))
                .build(),
            Rule::any(Priority(1)),
        ]);
        let v = check(&rs, &rs, &limits());
        assert!(v.is_equivalent(), "{v}");
    }

    #[test]
    fn empty_sets_are_equivalent() {
        let v = check(&RuleSet::new(), &RuleSet::new(), &limits());
        assert_eq!(v, Equivalence::Equivalent { cells_swept: 1 });
    }

    #[test]
    fn empty_vs_matching_differs() {
        let b = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
        match check(&RuleSet::new(), &b, &limits()) {
            Equivalence::Differs {
                witness,
                verdict_a,
                verdict_b,
            } => {
                assert_eq!(verdict_a, None);
                assert!(verdict_b.is_some());
                assert!(b.classify(&witness).is_some());
            }
            other => panic!("expected Differs, got {other:?}"),
        }
    }

    #[test]
    fn dropping_a_dead_rule_preserves_equivalence() {
        let a = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::builder(Priority(1))
                .dst_port(PortRange::exact(80))
                .build(),
        ]);
        let b = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
        assert!(check(&a, &b, &limits()).is_equivalent());
        // The mapped check agrees: rule 1 never wins, so the winner map
        // is always 0 -> 0.
        let prov = ProvenanceMap::from_vec(vec![RuleId(0)]);
        assert!(check_mapped(&a, &b, &prov, &limits()).is_equivalent());
    }

    #[test]
    fn dropping_a_live_rule_yields_a_witness() {
        let a = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::exact(80))
                .action(Action::Forward(7))
                .build(),
            Rule::any(Priority(1)),
        ]);
        let b = RuleSet::from_rules(vec![Rule::any(Priority(1))]);
        match check(&a, &b, &limits()) {
            Equivalence::Differs {
                witness,
                verdict_a,
                verdict_b,
            } => {
                // Replay the witness through both oracles: the reported
                // verdicts must be real.
                let oa = a.classify(&witness).map(|(id, r)| (id, r.action));
                let ob = b.classify(&witness).map(|(id, r)| (id, r.action));
                assert_eq!(oa, verdict_a);
                assert_eq!(ob, verdict_b);
                assert_eq!(verdict_a, Some((RuleId(0), Action::Forward(7))));
            }
            other => panic!("expected Differs, got {other:?}"),
        }
    }

    #[test]
    fn same_action_different_rule_is_action_equivalent_but_not_mapped() {
        // b replaces the port-80 rule with a differently-shaped rule of
        // the same action covering the same headers differently: action
        // outcomes agree everywhere, but winner identity does not.
        let a = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(0, 99).unwrap())
                .build(),
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(100, 200).unwrap())
                .build(),
        ]);
        let b = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .dst_port(PortRange::new(0, 200).unwrap())
            .build()]);
        assert!(check(&a, &b, &limits()).is_equivalent());
        // Identity-level: headers in 100..=200 map b's winner to rule 0,
        // but a's winner is rule 1.
        let prov = ProvenanceMap::from_vec(vec![RuleId(0)]);
        assert!(check_mapped(&a, &b, &prov, &limits()).differs());
    }

    #[test]
    fn priority_renumbering_passes_the_mapped_check() {
        let a = RuleSet::from_rules(vec![
            Rule::builder(Priority(100))
                .dst_port(PortRange::exact(443))
                .action(Action::Forward(2))
                .build(),
            Rule::builder(Priority(700)).action(Action::Drop).build(),
        ]);
        let mut renumbered: Vec<Rule> = a.rules().to_vec();
        renumbered[0].priority = Priority(0);
        renumbered[1].priority = Priority(1);
        let b = RuleSet::from_rules(renumbered);
        let prov = ProvenanceMap::identity(2);
        assert!(check_mapped(&a, &b, &prov, &limits()).is_equivalent());
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_equivalent() {
        let a = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(PortRange::new(10, 20).unwrap())
                .build(),
            Rule::any(Priority(1)),
        ]);
        let v = sweep(&a, &a, 2, |x, y| x == y);
        match v {
            Equivalence::Unknown {
                cells_swept,
                budget,
            } => {
                assert_eq!(budget, 2);
                assert!(cells_swept >= 2);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn difference_found_within_budget_is_still_a_proof() {
        // Even a budget of 1 can prove a difference when the first cell
        // already disagrees: the all-zero corner.
        let a = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
        let b = RuleSet::new();
        let tight = AnalyzerLimits::default().with_probe_budget(1);
        assert!(check(&a, &b, &tight).differs());
    }

    #[test]
    fn display_is_readable() {
        assert!(Equivalence::Equivalent { cells_swept: 9 }
            .to_string()
            .contains("9 cells"));
        assert!(Equivalence::Unknown {
            cells_swept: 5,
            budget: 4
        }
        .to_string()
        .contains("budget"));
    }
}
