//! Capacity limits the analyzer judges a rule set against.

use spc_types::{Dim, ALL_DIMS};

/// Architecture capacities and analysis budgets.
///
/// The analyzer is engine-free, so the hardware envelope it checks against
/// is injected here. [`AnalyzerLimits::default`] mirrors the workspace's
/// `ArchConfig::large` profile (14-bit IP labels, 9-bit port labels, 4-bit
/// protocol labels, 2^15 Rule Filter slots); `spc_engine`'s audit hook
/// substitutes the capacities of whatever configuration it is about to
/// build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerLimits {
    /// Per-dimension label capacity (how many distinct labels the label
    /// table can allocate), in [`ALL_DIMS`] order.
    pub label_capacity: [usize; 7],
    /// Rule Filter hash slots available for distinct 7-label keys.
    pub rule_filter_slots: usize,
    /// Maximum probe-grid cells the reachability sweep may examine; above
    /// this the analyzer degrades to pairwise shadow proofs and marks the
    /// report non-exhaustive.
    pub probe_budget: usize,
    /// Prefix-expansion count at which a port range is flagged
    /// pathological.
    pub port_expansion_warn: u32,
}

impl AnalyzerLimits {
    /// Limits from label-table and Rule Filter capacities: `ip`, `port`
    /// and `proto` label capacities are applied to the four IP-segment
    /// dimensions, the two port dimensions, and the protocol dimension
    /// respectively.
    pub fn from_capacities(ip: usize, port: usize, proto: usize, rule_filter_slots: usize) -> Self {
        AnalyzerLimits {
            label_capacity: ALL_DIMS.map(|d| {
                if d.is_ip_segment() {
                    ip
                } else if d == Dim::Proto {
                    proto
                } else {
                    port
                }
            }),
            rule_filter_slots,
            ..AnalyzerLimits::default()
        }
    }

    /// Returns `self` with a different probe budget.
    pub fn with_probe_budget(mut self, cells: usize) -> Self {
        self.probe_budget = cells;
        self
    }
}

impl Default for AnalyzerLimits {
    fn default() -> Self {
        AnalyzerLimits {
            label_capacity: ALL_DIMS.map(|d| {
                if d.is_ip_segment() {
                    1 << 14
                } else if d == Dim::Proto {
                    1 << 4
                } else {
                    1 << 9
                }
            }),
            rule_filter_slots: 1 << 15,
            probe_budget: 1 << 17,
            port_expansion_warn: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_large_profile() {
        let l = AnalyzerLimits::default();
        assert_eq!(l.label_capacity[Dim::SipHi.index()], 1 << 14);
        assert_eq!(l.label_capacity[Dim::SrcPort.index()], 1 << 9);
        assert_eq!(l.label_capacity[Dim::Proto.index()], 1 << 4);
        assert_eq!(l.rule_filter_slots, 1 << 15);
    }

    #[test]
    fn from_capacities_places_dims() {
        let l = AnalyzerLimits::from_capacities(100, 20, 4, 64);
        assert_eq!(l.label_capacity[Dim::DipLo.index()], 100);
        assert_eq!(l.label_capacity[Dim::DstPort.index()], 20);
        assert_eq!(l.label_capacity[Dim::Proto.index()], 4);
        assert_eq!(l.rule_filter_slots, 64);
        assert_eq!(l.probe_budget, AnalyzerLimits::default().probe_budget);
    }
}
