//! The analysis passes and their orchestration.

use crate::limits::AnalyzerLimits;
use crate::probe;
use crate::report::{Finding, FindingKind, Reachability, RuleSetReport, Severity, SpecLint};
use spc_types::{DimValue, PortRange, RuleId, RuleSet, ALL_DIMS};
use std::collections::HashMap;

/// Analyses a rule set against the default (large-profile) limits.
///
/// ```
/// use spc_types::{Priority, Rule, RuleSet};
/// let rs = RuleSet::from_rules(vec![Rule::any(Priority(0)), Rule::any(Priority(1))]);
/// let report = spc_analyze::analyze(&rs);
/// assert!(!report.shadowed_rules().is_empty()); // rule 1 is dead
/// ```
pub fn analyze(rules: &RuleSet) -> RuleSetReport {
    analyze_with(rules, &AnalyzerLimits::default())
}

/// Analyses a rule set against explicit architecture limits.
///
/// The report is deterministic: the same rules and limits produce a
/// byte-identical report (all passes iterate in rule-id and dimension
/// order; hashing is used only for lookups, never for iteration order).
pub fn analyze_with(rules: &RuleSet, limits: &AnalyzerLimits) -> RuleSetReport {
    let mut findings = Vec::new();

    // Pass 1: exact duplicates — identical match conditions on all five
    // fields (= all seven projected dimension values).
    let mut first_seen: HashMap<[DimValue; 7], RuleId> = HashMap::new();
    for (id, rule) in rules.iter() {
        match first_seen.get(&rule.dim_values()) {
            Some(&first) => findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::DuplicateRule { first, dup: id },
                rules: vec![first, id],
                message: format!(
                    "rule {} repeats the exact match conditions of rule {}; \
                     their 7-label keys collide, so configurable builds reject the set",
                    id.0, first.0
                ),
            }),
            None => {
                first_seen.insert(rule.dim_values(), id);
            }
        }
    }
    let distinct_keys = first_seen.len();

    // Pass 2: label cardinality, match depth, and the blowup bounds.
    let dim_cardinality = rules.unique_counts();
    let cands = probe::candidate_values(rules);
    let max_match_depth = ALL_DIMS.map(|dim| {
        let uniques: Vec<DimValue> = {
            let mut v: Vec<DimValue> = rules.iter().map(|(_, r)| r.dim_value(dim)).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        cands[dim.index()]
            .iter()
            .map(|&q| uniques.iter().filter(|v| v.matches(q)).count())
            .max()
            .unwrap_or(0)
    });
    let combo_upper_bound = dim_cardinality
        .iter()
        .fold(1u128, |acc, &n| acc.saturating_mul(n as u128));
    let intersection_bound = max_match_depth
        .iter()
        .fold(1u128, |acc, &n| acc.saturating_mul(n as u128));

    // Pass 3: capacity pressure against the architecture limits.
    for dim in ALL_DIMS {
        let labels = dim_cardinality[dim.index()];
        let capacity = limits.label_capacity[dim.index()];
        let severity = if labels > capacity {
            Severity::Error
        } else if labels * 4 > capacity * 3 {
            Severity::Warning
        } else {
            continue;
        };
        findings.push(Finding {
            severity,
            kind: FindingKind::LabelPressure {
                dim,
                labels,
                capacity,
            },
            rules: Vec::new(),
            message: format!(
                "{dim}: {labels} distinct field values against a label capacity of {capacity}{}",
                if severity == Severity::Error {
                    " — the label allocator will exhaust"
                } else {
                    ""
                }
            ),
        });
    }
    {
        let slots = limits.rule_filter_slots;
        let severity = if distinct_keys > slots {
            Some(Severity::Error)
        } else if distinct_keys * 4 > slots * 3 {
            Some(Severity::Warning)
        } else {
            None
        };
        if let Some(severity) = severity {
            findings.push(Finding {
                severity,
                kind: FindingKind::RuleFilterPressure {
                    keys: distinct_keys,
                    slots,
                },
                rules: Vec::new(),
                message: format!(
                    "{distinct_keys} distinct label combinations against {slots} Rule Filter slots"
                ),
            });
        }
    }

    // Pass 4: pathological port ranges.
    for (id, rule) in rules.iter() {
        for (dim, range) in [
            (spc_types::Dim::SrcPort, rule.src_port),
            (spc_types::Dim::DstPort, rule.dst_port),
        ] {
            let prefixes = port_prefix_count(range);
            if prefixes >= limits.port_expansion_warn {
                findings.push(Finding {
                    severity: Severity::Warning,
                    kind: FindingKind::PathologicalPortRange {
                        rule: id,
                        dim,
                        prefixes,
                    },
                    rules: vec![id],
                    message: format!(
                        "rule {} {dim} range {range} expands into {prefixes} prefixes \
                         (decomposition backends pay per prefix)",
                        id.0
                    ),
                });
            }
        }
    }

    // Pass 5: spec lints.
    for (id, rule) in rules.iter() {
        let has_port_constraint = !rule.src_port.is_any() || !rule.dst_port.is_any();
        if has_port_constraint && rule.proto.is_any() {
            findings.push(Finding {
                severity: Severity::Info,
                kind: FindingKind::SpecLint {
                    rule: id,
                    lint: SpecLint::PortConstraintOnWildcardProto,
                },
                rules: vec![id],
                message: format!(
                    "rule {} constrains a port but leaves the protocol a wildcard; \
                     the constraint also applies to port-less protocols",
                    id.0
                ),
            });
        }
        let is_catch_all = ALL_DIMS.iter().all(|&d| rule.dim_value(d).is_any());
        if is_catch_all
            && rules
                .iter()
                .any(|(oid, o)| (rule.priority, id.0) < (o.priority, oid.0))
        {
            findings.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::SpecLint {
                    rule: id,
                    lint: SpecLint::CatchAllAboveOtherRules,
                },
                rules: vec![id],
                message: format!(
                    "rule {} matches everything but is not the lowest-priority rule; \
                     every rule ranked below it is dead",
                    id.0
                ),
            });
        }
    }

    // Pass 6: reachability (exact sweep within budget, else pairwise).
    let sweep = probe::reachability(rules, limits.probe_budget);
    for (id, rule) in rules.iter() {
        if !matches!(sweep.reachability[id.0 as usize], Reachability::Shadowed) {
            continue;
        }
        let by = rules
            .iter()
            .find(|(oid, other)| {
                *oid != id
                    && (other.priority, oid.0) < (rule.priority, id.0)
                    && probe::covers_all_dims(other, rule)
            })
            .map(|(oid, _)| oid);
        let message = match by {
            Some(b) => format!(
                "rule {} is fully covered by higher-priority rule {} and can never \
                 be the highest-priority match",
                id.0, b.0
            ),
            None => format!(
                "rule {} is unreachable: every header it matches is won by some \
                 higher-priority rule (union shadow)",
                id.0
            ),
        };
        findings.push(Finding {
            severity: Severity::Warning,
            kind: FindingKind::ShadowedRule { rule: id, by },
            rules: vec![id],
            message,
        });
    }
    if !sweep.exhaustive {
        let unknown_rules: Vec<RuleId> = sweep
            .reachability
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Reachability::Unknown))
            .map(|(i, _)| RuleId(i as u32))
            .collect();
        let grid_text = match sweep.grid {
            Some(cells) => cells.to_string(),
            None => "more than usize::MAX".to_string(),
        };
        findings.push(Finding {
            severity: Severity::Info,
            kind: FindingKind::ProbeBudgetExceeded {
                grid: sweep.grid,
                budget: limits.probe_budget,
                unknown: unknown_rules.len(),
            },
            message: format!(
                "probe grid of {grid_text} cells exceeds the budget of {} — \
                 reachability degraded to pairwise proofs and {} corner probes; \
                 {} rule(s) undecided",
                limits.probe_budget,
                sweep.probes,
                unknown_rules.len()
            ),
            rules: unknown_rules,
        });
    }

    // Deterministic order: most severe first, then finding code, then ids.
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.kind.code().cmp(b.kind.code()))
            .then_with(|| a.rules.cmp(&b.rules))
    });

    RuleSetReport {
        rules: rules.len(),
        findings,
        dim_cardinality,
        max_match_depth,
        distinct_keys,
        combo_upper_bound,
        intersection_bound,
        reachability: sweep.reachability,
        exhaustive: sweep.exhaustive,
        probes: sweep.probes,
        probe_budget: limits.probe_budget,
    }
}

/// Number of maximal prefix blocks covering a port range — the cost of
/// expanding it for prefix-only backends. A 16-bit range needs at most 30.
pub fn port_prefix_count(range: PortRange) -> u32 {
    let mut lo = u32::from(range.lo());
    let hi = u32::from(range.hi());
    let mut count = 0;
    while lo <= hi {
        let mut size: u32 = if lo == 0 {
            1 << 16
        } else {
            1 << lo.trailing_zeros()
        };
        while lo + size - 1 > hi {
            size >>= 1;
        }
        count += 1;
        lo += size;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Dim, Header, Prefix, Priority, ProtoSpec, Rule};

    #[test]
    fn empty_set_is_clean() {
        let report = analyze(&RuleSet::new());
        assert!(report.findings.is_empty());
        assert_eq!(report.rules, 0);
        assert_eq!(report.dim_cardinality, [0; 7]);
        assert_eq!(report.max_match_depth, [0; 7]);
        assert_eq!(report.distinct_keys, 0);
        assert_eq!(report.combo_upper_bound, 0);
        assert!(report.exhaustive);
        assert!(report.shadowed_rules().is_empty());
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn single_rule_is_reachable_and_clean() {
        let rs = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
        let report = analyze(&rs);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(matches!(
            report.reachability[0],
            Reachability::Reachable { .. }
        ));
        assert_eq!(report.dim_cardinality, [1; 7]);
        assert_eq!(report.distinct_keys, 1);
    }

    #[test]
    fn wildcard_shadows_everything_below() {
        let mut rules = vec![Rule::any(Priority(0))];
        for p in 1..5u32 {
            rules.push(
                Rule::builder(Priority(p))
                    .dst_port(spc_types::PortRange::exact(p as u16))
                    .build(),
            );
        }
        let rs = RuleSet::from_rules(rules);
        let report = analyze(&rs);
        assert!(report.exhaustive);
        let shadowed = report.shadowed_rules();
        assert_eq!(shadowed, (1..5).map(RuleId).collect::<Vec<_>>());
        // All four shadow findings name the wildcard as the single coverer.
        for f in report.findings.iter() {
            if let FindingKind::ShadowedRule { by, .. } = f.kind {
                assert_eq!(by, Some(RuleId(0)));
            }
        }
        // And the catch-all lint fires for rule 0.
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::SpecLint {
                rule: RuleId(0),
                lint: SpecLint::CatchAllAboveOtherRules,
            }
        )));
    }

    #[test]
    fn duplicates_are_errors_and_reduce_keys() {
        let r = Rule::builder(Priority(0))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .build();
        let mut dup = r;
        dup.priority = Priority(1);
        let rs = RuleSet::from_rules(vec![r, dup]);
        let report = analyze(&rs);
        assert!(report.has_errors());
        assert_eq!(report.distinct_keys, 1);
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::DuplicateRule {
                first: RuleId(0),
                dup: RuleId(1),
            }
        )));
        // The duplicate also loses every cell, so it is shadowed too.
        assert_eq!(report.shadowed_rules(), vec![RuleId(1)]);
    }

    #[test]
    fn label_pressure_error_when_over_capacity() {
        let rules: Vec<Rule> = (0..8u16)
            .map(|i| {
                Rule::builder(Priority(u32::from(i)))
                    .dst_port(spc_types::PortRange::exact(i))
                    .build()
            })
            .collect();
        let rs = RuleSet::from_rules(rules);
        let mut limits = AnalyzerLimits::default();
        limits.label_capacity[Dim::DstPort.index()] = 4;
        let report = analyze_with(&rs, &limits);
        assert!(report.findings.iter().any(|f| f.severity == Severity::Error
            && matches!(
                f.kind,
                FindingKind::LabelPressure {
                    dim: Dim::DstPort,
                    labels: 8,
                    capacity: 4,
                }
            )));
    }

    #[test]
    fn rule_filter_pressure_fires() {
        let rules: Vec<Rule> = (0..9u16)
            .map(|i| {
                Rule::builder(Priority(u32::from(i)))
                    .src_port(spc_types::PortRange::exact(i))
                    .build()
            })
            .collect();
        let rs = RuleSet::from_rules(rules);
        let limits = AnalyzerLimits {
            rule_filter_slots: 8,
            ..AnalyzerLimits::default()
        };
        let report = analyze_with(&rs, &limits);
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::RuleFilterPressure { keys: 9, slots: 8 }
        )));
    }

    #[test]
    fn pathological_port_range_flagged() {
        // 1..=0xfffe is the worst case: 30 prefixes.
        let rs = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .dst_port(spc_types::PortRange::new(1, 0xfffe).unwrap())
            .proto(ProtoSpec::Exact(6))
            .build()]);
        let report = analyze(&rs);
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::PathologicalPortRange {
                rule: RuleId(0),
                dim: Dim::DstPort,
                prefixes: 30,
            }
        )));
    }

    #[test]
    fn port_lint_on_wildcard_proto() {
        let rs = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .dst_port(spc_types::PortRange::exact(80))
            .build()]);
        let report = analyze(&rs);
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::SpecLint {
                lint: SpecLint::PortConstraintOnWildcardProto,
                ..
            }
        )));
        assert_eq!(report.max_severity(), Some(Severity::Info));
    }

    #[test]
    fn prefix_counts() {
        assert_eq!(port_prefix_count(PortRange::ANY), 1);
        assert_eq!(port_prefix_count(PortRange::exact(80)), 1);
        assert_eq!(port_prefix_count(PortRange::new(0, 1023).unwrap()), 1);
        assert_eq!(port_prefix_count(PortRange::new(1024, 0xffff).unwrap()), 6);
        assert_eq!(port_prefix_count(PortRange::new(1, 0xfffe).unwrap()), 30);
    }

    #[test]
    fn max_match_depth_counts_nested_values() {
        // Three nested source prefixes: a /0 (any), /8, /16 — a query
        // inside the /16 matches all three hi-segment values.
        let rules = vec![
            Rule::builder(Priority(0)).build(),
            Rule::builder(Priority(1))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .build(),
            Rule::builder(Priority(2))
                .src_ip(Prefix::parse("10.1.0.0/16").unwrap())
                .build(),
        ];
        let report = analyze(&RuleSet::from_rules(rules));
        assert_eq!(report.max_match_depth[Dim::SipHi.index()], 3);
    }

    #[test]
    fn witnesses_satisfy_oracle() {
        let rs = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .build(),
            Rule::builder(Priority(1)).build(),
        ]);
        let report = analyze(&rs);
        for (i, r) in report.reachability.iter().enumerate() {
            if let Reachability::Reachable { witness } = r {
                let (winner, _) = rs.classify(witness).expect("witness must match");
                assert_eq!(winner, RuleId(i as u32));
            }
        }
    }

    #[test]
    fn over_budget_reports_coverage_context() {
        // Grid is 3 cells (dst_port cuts {0, 51, 101}); a 1-cell budget
        // forces the pairwise fallback. Rule 2 is shadowed only by the
        // *union* of rules 0 and 1 — no single cover proof — and its
        // corner probe loses to rule 0, so it stays Unknown.
        let rs = RuleSet::from_rules(vec![
            Rule::builder(Priority(0))
                .dst_port(spc_types::PortRange::new(0, 50).unwrap())
                .build(),
            Rule::builder(Priority(0))
                .dst_port(spc_types::PortRange::new(51, 100).unwrap())
                .build(),
            Rule::builder(Priority(1))
                .dst_port(spc_types::PortRange::new(0, 100).unwrap())
                .build(),
        ]);
        let limits = AnalyzerLimits::default().with_probe_budget(1);
        let report = analyze_with(&rs, &limits);
        assert!(!report.exhaustive);
        assert_eq!(report.probe_budget, 1);
        let finding = report
            .findings
            .iter()
            .find(|f| matches!(f.kind, FindingKind::ProbeBudgetExceeded { .. }))
            .expect("budget finding must fire");
        assert_eq!(finding.severity, Severity::Info);
        let FindingKind::ProbeBudgetExceeded {
            grid,
            budget,
            unknown,
        } = finding.kind
        else {
            unreachable!();
        };
        assert_eq!(grid, Some(3));
        assert_eq!(budget, 1);
        assert_eq!(unknown, 1);
        assert_eq!(finding.rules, vec![RuleId(2)]);
        assert!(finding.message.contains("3 cells"), "{}", finding.message);
        assert!(
            finding.message.contains("budget of 1"),
            "{}",
            finding.message
        );
        // The fallback probed all three rules' corners.
        assert_eq!(report.probes, 3);
    }

    #[test]
    fn deterministic_for_same_input() {
        let rs = RuleSet::from_rules(vec![
            Rule::any(Priority(0)),
            Rule::any(Priority(1)),
            Rule::builder(Priority(2))
                .dst_port(spc_types::PortRange::exact(80))
                .build(),
        ]);
        let a = analyze(&rs);
        let b = analyze(&rs);
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn display_mentions_findings() {
        let rs = RuleSet::from_rules(vec![Rule::any(Priority(0)), Rule::any(Priority(1))]);
        let text = analyze(&rs).to_string();
        assert!(text.contains("shadowed-rule"), "{text}");
        assert!(text.contains("rule-set report"), "{text}");
    }

    #[test]
    fn default_header_probe_matches_witness_semantics() {
        // Sanity: Header::default() is the all-zero corner, which the probe
        // grid always contains.
        let rs = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
        let report = analyze(&rs);
        if let Reachability::Reachable { witness } = report.reachability[0] {
            assert_eq!(witness, Header::default());
        } else {
            panic!("wildcard must be reachable");
        }
    }
}
