//! Static rule-set analysis for the segmented packet classifier.
//!
//! This crate predicts classifier behaviour from the rule set alone — no
//! engine is constructed. [`analyze`] produces a [`RuleSetReport`] of typed
//! [`Finding`]s:
//!
//! * **duplicate rules** ([`FindingKind::DuplicateRule`], error): identical
//!   match conditions collide on the 7-label key and make the set
//!   unbuildable on the configurable architecture;
//! * **shadowed rules** ([`FindingKind::ShadowedRule`], warning): rules that
//!   can never be the highest-priority match, proven either by a single
//!   covering rule or by an exhaustive boundary-value sweep;
//! * **label pressure** ([`FindingKind::LabelPressure`]) and **Rule Filter
//!   pressure** ([`FindingKind::RuleFilterPressure`]): per-dimension label
//!   cardinality and distinct label-combination counts against the
//!   architecture capacities in [`AnalyzerLimits`];
//! * **pathological port ranges** ([`FindingKind::PathologicalPortRange`]):
//!   ranges whose prefix expansion is large ([`port_prefix_count`]);
//! * **spec lints** ([`FindingKind::SpecLint`]): stylistic hazards such as
//!   port constraints on wildcard protocols.
//!
//! The quantitative fields of the report are *predictions* about a live
//! engine: `dim_cardinality` must equal the configurable classifier's label
//! counts after a full load, and `distinct_keys` its Rule Filter occupancy.
//! The workspace's `analyze_fuzz` test tier cross-checks exactly that on
//! seeded adversarial rule sets.
//!
//! # Exactness
//!
//! Reachability uses the fact that the oracle verdict is piecewise-constant
//! over the product of per-dimension elementary intervals (cut each
//! dimension at every rule bound). When that grid fits the probe budget,
//! the sweep is **exact**: every `Shadowed` verdict is a proof, and every
//! `Reachable` verdict carries a concrete witness header. Over budget, the
//! analyzer degrades to sound pairwise proofs and says so via
//! [`RuleSetReport::exhaustive`]` == false`.
//!
//! # Equivalence and optimization
//!
//! The same elementary-interval argument decides whether two rule sets are
//! behaviourally identical: [`equivalence::check`] sweeps the *union* grid
//! of both sets' cut points and returns [`Equivalence::Equivalent`] (a
//! proof), [`Equivalence::Differs`] (with a replayable witness header), or
//! a sound [`Equivalence::Unknown`] when the probe budget runs out —
//! never a false `Equivalent`. [`optimize()`] builds on it: an ordered
//! pass pipeline (duplicate coalescing, dead-rule elimination, range
//! merging, priority renumbering) that **validates its own output**
//! against the input with the checker and refuses to return a set it
//! cannot defend ([`OptimizeError::ValidationFailed`]). The id-preserving
//! configuration ([`OptimizeConfig::id_preserving`]) additionally proves
//! winner *identity* modulo the emitted [`ProvenanceMap`]
//! ([`equivalence::check_mapped`]) — the contract `spc-engine`'s
//! `optimize=validated` build path relies on to remap verdicts back into
//! original rule-id space.

mod analyze;
pub mod equivalence;
mod limits;
pub mod optimize;
mod probe;
mod report;

pub use analyze::{analyze, analyze_with, port_prefix_count};
pub use equivalence::{check, check_mapped, Equivalence, MatchOutcome};
pub use limits::AnalyzerLimits;
pub use optimize::{
    optimize, OptimizeConfig, OptimizeError, OptimizedRuleSet, PassKind, PassReport,
};
pub use probe::{candidate_values, grid_size, header_from_dims};
pub use report::{Finding, FindingKind, Reachability, RuleSetReport, Severity, SpecLint};
pub use spc_types::ProvenanceMap;
