//! Typed analysis findings and the [`RuleSetReport`] that collects them.

use spc_types::{Dim, Header, RuleId, ALL_DIMS};
use std::fmt;

/// How serious a finding is.
///
/// The ordering is semantic: `Info < Warning < Error`, so
/// [`RuleSetReport::max_severity`] can be compared directly against a
/// rejection threshold (see `spc_engine`'s audit policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, harmless to every backend.
    Info,
    /// Suspicious: the set builds everywhere but something is wasteful or
    /// almost certainly unintended (dead rules, hash pressure).
    Warning,
    /// The set cannot be represented faithfully: at least one backend is
    /// guaranteed to reject it (duplicate filters, label overflow).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// What a [`Finding`] is about, with the structured evidence for it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FindingKind {
    /// Two rules have byte-identical match conditions (all five fields);
    /// the later one can differ only in priority/action. The configurable
    /// architecture stores rules under their 7-label key, so the duplicate
    /// is unrepresentable and every `EngineBuilder` build rejects the set.
    DuplicateRule {
        /// The id that owns the filter (first occurrence).
        first: RuleId,
        /// The id that repeats it.
        dup: RuleId,
    },
    /// A rule that can never be the highest-priority match: every header
    /// it matches is claimed by strictly better rules.
    ShadowedRule {
        /// The unreachable rule.
        rule: RuleId,
        /// A single better rule that covers it field-by-field, when one
        /// exists; `None` means the shadow is a union of several rules
        /// (proven by exhaustive region probing).
        by: Option<RuleId>,
    },
    /// A dimension's unique-value count against its label capacity.
    /// `Error` when it exceeds capacity (the label allocator will
    /// exhaust), `Warning` when it crowds it.
    LabelPressure {
        /// The dimension.
        dim: Dim,
        /// Predicted label-table size (unique projected values).
        labels: usize,
        /// Label-space capacity (`2^width`).
        capacity: usize,
    },
    /// Predicted Rule Filter occupancy against its slot count. `Error`
    /// when the distinct label combinations outnumber the slots.
    RuleFilterPressure {
        /// Distinct 7-label keys the set will install.
        keys: usize,
        /// Hash slots available.
        slots: usize,
    },
    /// A port range that explodes under prefix expansion — many 16-bit
    /// segments for decomposition backends that store ranges as prefixes.
    PathologicalPortRange {
        /// The offending rule.
        rule: RuleId,
        /// Which port dimension.
        dim: Dim,
        /// Number of maximal prefix blocks covering the range.
        prefixes: u32,
    },
    /// A spec-level lint: the rule parses and builds but is written in a
    /// way that usually signals a mistake.
    SpecLint {
        /// The rule the lint is about.
        rule: RuleId,
        /// Which lint fired.
        lint: SpecLint,
    },
    /// The elementary-interval grid outgrew the probe budget, so
    /// reachability degraded from the exact sweep to pairwise proofs and
    /// corner probes. Every `Shadowed` verdict is still a proof; the
    /// `unknown` rules simply could not be decided either way.
    ProbeBudgetExceeded {
        /// Exact grid size, or `None` when even counting it overflowed.
        grid: Option<usize>,
        /// The budget the grid exceeded.
        budget: usize,
        /// Rules left [`Reachability::Unknown`].
        unknown: usize,
    },
}

impl FindingKind {
    /// Stable machine-readable code for grouping and JSON output.
    pub fn code(&self) -> &'static str {
        match self {
            FindingKind::DuplicateRule { .. } => "duplicate-rule",
            FindingKind::ShadowedRule { .. } => "shadowed-rule",
            FindingKind::LabelPressure { .. } => "label-pressure",
            FindingKind::RuleFilterPressure { .. } => "rule-filter-pressure",
            FindingKind::PathologicalPortRange { .. } => "pathological-port-range",
            FindingKind::SpecLint { .. } => "spec-lint",
            FindingKind::ProbeBudgetExceeded { .. } => "probe-budget-exceeded",
        }
    }
}

/// Rule-spec style lints (see [`FindingKind::SpecLint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecLint {
    /// The rule constrains a transport port but leaves the protocol a
    /// wildcard: the constraint silently applies to protocols that have
    /// no ports at all (ICMP headers read 0 in the port fields here).
    PortConstraintOnWildcardProto,
    /// A match-everything rule that is not the worst-priority rule of the
    /// set: everything ranked below it is dead.
    CatchAllAboveOtherRules,
}

impl fmt::Display for SpecLint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecLint::PortConstraintOnWildcardProto => {
                f.write_str("port constraint with wildcard protocol")
            }
            SpecLint::CatchAllAboveOtherRules => {
                f.write_str("catch-all rule ranked above other rules")
            }
        }
    }
}

/// One analysis finding: a typed fact about the rule set with a severity
/// and a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// What it is, with evidence.
    pub kind: FindingKind,
    /// Every rule involved, most significant first.
    pub rules: Vec<RuleId>,
    /// The explanation a human reads.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.kind.code(),
            self.message
        )
    }
}

/// Whether a rule can ever be the highest-priority match (HPM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reachability {
    /// The analyzer found a header for which the rule is the oracle HPM.
    Reachable {
        /// The proving header: `RuleSet::classify(&witness)` returns this
        /// rule.
        witness: Header,
    },
    /// Proven unreachable (pairwise cover, exact duplicate, or exhaustive
    /// region probing with no winning cell).
    Shadowed,
    /// The probe grid exceeded the budget and no pairwise proof exists;
    /// the rule may or may not be reachable.
    Unknown,
}

/// The full output of [`crate::analyze`]: findings plus the quantitative
/// predictions the fuzz tier cross-checks against live engines.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSetReport {
    /// Rules analysed.
    pub rules: usize,
    /// All findings, ordered by severity (most severe first), then code,
    /// then rule ids — the order is deterministic and byte-stable.
    pub findings: Vec<Finding>,
    /// Predicted per-dimension label-table sizes (unique projected field
    /// values), in [`ALL_DIMS`] order. For the configurable architecture
    /// this must equal `Classifier::live_labels()` after a full load.
    pub dim_cardinality: [usize; 7],
    /// Maximum number of labels any single query value can match per
    /// dimension, in [`ALL_DIMS`] order — the worst-case phase-2 label
    /// list length, and the factor base of DCFL-style intersection cost.
    pub max_match_depth: [usize; 7],
    /// Distinct 7-label combinations the set installs (its Rule Filter
    /// occupancy): the rule count minus exact duplicates.
    pub distinct_keys: usize,
    /// Upper bound on the label-combination cross-product (product of
    /// [`RuleSetReport::dim_cardinality`], saturating) — DCFL phase-space
    /// size if every combination were materialised.
    pub combo_upper_bound: u128,
    /// Product of [`RuleSetReport::max_match_depth`] (saturating): the
    /// worst-case number of label combinations a single lookup can be
    /// forced to consider.
    pub intersection_bound: u128,
    /// Per-rule reachability verdicts, indexed by rule id.
    pub reachability: Vec<Reachability>,
    /// Whether the probe grid fit the budget, making the reachability
    /// verdicts exact (no [`Reachability::Unknown`] entries).
    pub exhaustive: bool,
    /// Probe-grid cells examined by the reachability sweep, or corner
    /// probes made by the pairwise fallback.
    pub probes: usize,
    /// The probe budget the analysis ran under.
    pub probe_budget: usize,
}

impl RuleSetReport {
    /// The most severe finding level, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Whether any finding is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// Findings of exactly the given severity.
    pub fn at_severity(&self, s: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == s)
    }

    /// The ids of every rule proven unreachable.
    pub fn shadowed_rules(&self) -> Vec<RuleId> {
        self.reachability
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Reachability::Shadowed))
            .map(|(i, _)| RuleId(i as u32))
            .collect()
    }
}

impl fmt::Display for RuleSetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rule-set report: {} rules, {} findings{}",
            self.rules,
            self.findings.len(),
            match self.max_severity() {
                None => String::new(),
                Some(s) => format!(" (max severity: {s})"),
            }
        )?;
        write!(f, "  labels/dim:")?;
        for (dim, n) in ALL_DIMS.iter().zip(self.dim_cardinality) {
            write!(f, " {dim}={n}")?;
        }
        writeln!(f)?;
        write!(f, "  max-depth/dim:")?;
        for (dim, n) in ALL_DIMS.iter().zip(self.max_match_depth) {
            write!(f, " {dim}={n}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  keys={} combo-bound={} intersection-bound={}",
            self.distinct_keys, self.combo_upper_bound, self.intersection_bound
        )?;
        let shadowed = self.shadowed_rules().len();
        writeln!(
            f,
            "  reachability: {} shadowed, exhaustive={} ({} probes, budget {})",
            shadowed, self.exhaustive, self.probes, self.probe_budget
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_semantically() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_are_distinct() {
        let kinds = [
            FindingKind::DuplicateRule {
                first: RuleId(0),
                dup: RuleId(1),
            },
            FindingKind::ShadowedRule {
                rule: RuleId(1),
                by: None,
            },
            FindingKind::LabelPressure {
                dim: Dim::SipHi,
                labels: 1,
                capacity: 2,
            },
            FindingKind::RuleFilterPressure { keys: 1, slots: 2 },
            FindingKind::PathologicalPortRange {
                rule: RuleId(0),
                dim: Dim::SrcPort,
                prefixes: 30,
            },
            FindingKind::SpecLint {
                rule: RuleId(0),
                lint: SpecLint::CatchAllAboveOtherRules,
            },
            FindingKind::ProbeBudgetExceeded {
                grid: Some(1 << 20),
                budget: 1 << 17,
                unknown: 3,
            },
        ];
        let mut codes: Vec<&str> = kinds.iter().map(FindingKind::code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), kinds.len());
    }
}
