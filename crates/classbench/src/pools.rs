//! Skewed value pools for rule-field generation.
//!
//! ClassBench filter sets draw each field from a modest pool of distinct
//! values with a heavily skewed popularity distribution — that is what
//! produces Table II's "unique rule fields ≪ rules" structure the label
//! method exploits. Each pool here is a fixed vector of candidate values
//! plus a Zipf-like sampler over pool indices.

// The samplers in this module `expect` on structurally non-empty
// collections (CDFs/pools asserted non-empty at construction) and on
// comparisons of CDF values that are finite by construction — none of
// these can fail for any caller input.
#![allow(clippy::expect_used)]

use rand::prelude::*;
use rand::rngs::StdRng;
use spc_types::{PortRange, Prefix, ProtoSpec};

/// Zipf-ish sampler over `0..n` with exponent `alpha` (precomputed CDF).
#[derive(Debug, Clone)]
pub(crate) struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    pub(crate) fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "pool must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Weighted choice helper.
pub(crate) fn choose_weighted<'a, T>(rng: &mut StdRng, items: &'a [(T, f64)]) -> &'a T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (item, w) in items {
        if u < *w {
            return item;
        }
        u -= w;
    }
    &items.last().expect("non-empty weights").0
}

/// A pool of IPv4 prefixes with a skewed sampler.
#[derive(Debug, Clone)]
pub(crate) struct PrefixPool {
    values: Vec<Prefix>,
    sampler: ZipfSampler,
}

/// Prefix-length bands with weights, e.g. `&[(24, 32, 0.5), (8, 23, 0.5)]`.
pub(crate) type LenBands = [(u8, u8, f64)];

impl PrefixPool {
    /// Builds a pool of `size` prefixes. With probability `nest_prob` a new
    /// prefix is derived by *extending* an earlier pool entry, creating the
    /// nested structure real route/filter tables have (this is what gives
    /// trie label lists length > 1).
    pub(crate) fn generate(
        rng: &mut StdRng,
        size: usize,
        bands: &LenBands,
        nest_prob: f64,
        wildcard_weight: f64,
        alpha: f64,
    ) -> Self {
        assert!(size > 0, "prefix pool size must be positive");
        // Real filter sets reuse a modest set of low-16-bit host/subnet
        // patterns (hosts cluster inside a few subnets), which keeps the
        // architecture's lo-segment dimensions compact; uniformly random
        // low bits would exaggerate segment diversity.
        let lo_patterns: Vec<u16> = (0..160).map(|_| rng.gen()).collect();
        let fresh = |rng: &mut StdRng| -> u32 {
            (u32::from(rng.gen::<u16>()) << 16)
                | u32::from(lo_patterns[rng.gen_range(0..lo_patterns.len())])
        };
        let mut values: Vec<Prefix> = Vec::with_capacity(size);
        if wildcard_weight > 0.0 {
            values.push(Prefix::ANY);
        }
        while values.len() < size {
            let len = Self::sample_len(rng, bands);
            let p = if !values.is_empty() && rng.gen_bool(nest_prob) {
                // Extend an existing prefix to a longer, nested one.
                let base = values[rng.gen_range(0..values.len())];
                if base.len() >= len {
                    Prefix::masked(fresh(rng), len)
                } else {
                    let noise = fresh(rng) >> base.len().min(31);
                    Prefix::masked(base.value() | noise, len)
                }
            } else {
                Prefix::masked(fresh(rng), len)
            };
            values.push(p);
        }
        let sampler = ZipfSampler::new(values.len(), alpha);
        PrefixPool { values, sampler }
    }

    fn sample_len(rng: &mut StdRng, bands: &LenBands) -> u8 {
        let total: f64 = bands.iter().map(|(_, _, w)| w).sum();
        let mut u = rng.gen::<f64>() * total;
        for &(lo, hi, w) in bands {
            if u < w {
                return rng.gen_range(lo..=hi);
            }
            u -= w;
        }
        bands.last().expect("non-empty bands").1
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> Prefix {
        self.values[self.sampler.sample(rng)]
    }
}

/// A pool of port ranges.
#[derive(Debug, Clone)]
pub(crate) struct PortPool {
    values: Vec<PortRange>,
    sampler: ZipfSampler,
}

/// Shape of the port field of a filter kind.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PortShape {
    /// Always the full wildcard (ACL source port: 1 unique value).
    AlwaysAny,
    /// Mix of well-known exact ports, a few ranges, and the wildcard.
    Mixed {
        /// Distinct values in the pool.
        pool: usize,
        /// Fraction of pool entries that are ranges (vs exact).
        range_frac: f64,
    },
}

const WELL_KNOWN: [u16; 24] = [
    20, 21, 22, 23, 25, 53, 67, 69, 80, 110, 119, 123, 135, 137, 139, 143, 161, 389, 443, 445, 993,
    1521, 3306, 8080,
];

impl PortPool {
    pub(crate) fn generate(rng: &mut StdRng, shape: PortShape, alpha: f64) -> Self {
        let values: Vec<PortRange> = match shape {
            PortShape::AlwaysAny => vec![PortRange::ANY],
            PortShape::Mixed { pool, range_frac } => {
                let mut vs = vec![PortRange::ANY];
                // Well-known exact ports first (they soak up the skew mass).
                for &p in WELL_KNOWN.iter() {
                    if vs.len() >= pool {
                        break;
                    }
                    vs.push(PortRange::exact(p));
                }
                while vs.len() < pool {
                    if rng.gen_bool(range_frac) {
                        let lo = rng.gen_range(0..=u16::MAX - 1);
                        let span = match rng.gen_range(0..3) {
                            0 => rng.gen_range(1..=10),       // tight range
                            1 => rng.gen_range(10..=1000),    // medium
                            _ => rng.gen_range(1000..=40000), // wide
                        };
                        let hi = lo.saturating_add(span);
                        vs.push(PortRange::new(lo, hi).expect("lo <= hi by construction"));
                    } else {
                        vs.push(PortRange::exact(rng.gen_range(1024..=u16::MAX)));
                    }
                }
                vs
            }
        };
        let sampler = ZipfSampler::new(values.len(), alpha);
        PortPool { values, sampler }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> PortRange {
        self.values[self.sampler.sample(rng)]
    }
}

/// A weighted protocol distribution.
#[derive(Debug, Clone)]
pub(crate) struct ProtoPool {
    weighted: Vec<(ProtoSpec, f64)>,
}

impl ProtoPool {
    pub(crate) fn new(weighted: Vec<(ProtoSpec, f64)>) -> Self {
        assert!(!weighted.is_empty(), "protocol pool must be non-empty");
        ProtoPool { weighted }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> ProtoSpec {
        *choose_weighted(rng, &self.weighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let z = ZipfSampler::new(100, 1.0);
        let mut r = rng();
        let mut head = 0;
        for _ in 0..1000 {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // Top 10 of 100 items under Zipf(1.0) carry ~56% of the mass.
        assert!(head > 400, "head draws: {head}");
    }

    #[test]
    fn zipf_single_item() {
        let z = ZipfSampler::new(1, 1.0);
        let mut r = rng();
        assert_eq!(z.sample(&mut r), 0);
    }

    #[test]
    fn prefix_pool_respects_bands() {
        let mut r = rng();
        let pool = PrefixPool::generate(&mut r, 200, &[(24, 32, 1.0)], 0.3, 0.0, 1.0);
        let mut saw_nested = false;
        for v in &pool.values {
            assert!((24..=32).contains(&v.len()));
        }
        // Some pair should be nested thanks to nest_prob.
        'outer: for a in &pool.values {
            for b in &pool.values {
                if a != b && a.covers(*b) {
                    saw_nested = true;
                    break 'outer;
                }
            }
        }
        assert!(saw_nested);
    }

    #[test]
    fn prefix_pool_includes_wildcard_when_weighted() {
        let mut r = rng();
        let pool = PrefixPool::generate(&mut r, 10, &[(8, 16, 1.0)], 0.0, 1.0, 1.0);
        assert!(pool.values.contains(&Prefix::ANY));
    }

    #[test]
    fn port_pool_always_any() {
        let mut r = rng();
        let p = PortPool::generate(&mut r, PortShape::AlwaysAny, 1.0);
        for _ in 0..10 {
            assert!(p.sample(&mut r).is_any());
        }
    }

    #[test]
    fn port_pool_mixed_has_exacts_and_ranges() {
        let mut r = rng();
        let p = PortPool::generate(
            &mut r,
            PortShape::Mixed {
                pool: 120,
                range_frac: 0.3,
            },
            1.0,
        );
        assert_eq!(p.values.len(), 120);
        assert!(p.values.iter().any(|v| v.is_exact()));
        assert!(p.values.iter().any(|v| !v.is_exact() && !v.is_any()));
    }

    #[test]
    fn proto_pool_samples_from_support() {
        let mut r = rng();
        let pool = ProtoPool::new(vec![(ProtoSpec::Exact(6), 0.9), (ProtoSpec::Any, 0.1)]);
        for _ in 0..20 {
            let s = pool.sample(&mut r);
            assert!(s == ProtoSpec::Exact(6) || s == ProtoSpec::Any);
        }
    }

    #[test]
    fn weighted_choice_degenerate() {
        let mut r = rng();
        let items = [(42u32, 1.0)];
        assert_eq!(*choose_weighted(&mut r, &items), 42);
    }
}
