//! Command-line filter-set generator: writes ClassBench-format rule files.
//!
//! Usage:
//! ```text
//! gen_filters <acl|fw|ipc> <size> [seed] [output.rules]
//! ```
//! Without an output path the set is written to stdout, so it can be piped
//! straight into other tools.

use spc_classbench::{ruleset_stats, FilterKind, RuleSetGenerator};
use spc_types::write_ruleset;
use std::io::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: gen_filters <acl|fw|ipc> <size> [seed] [output.rules]";
    let kind = match args.first().map(String::as_str) {
        Some("acl") => FilterKind::Acl,
        Some("fw") => FilterKind::Fw,
        Some("ipc") => FilterKind::Ipc,
        _ => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{usage}");
        std::process::exit(2);
    });
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let rs = RuleSetGenerator::new(kind, size).seed(seed).generate();
    let text = write_ruleset(&rs);
    match args.get(3) {
        Some(path) => {
            std::fs::write(path, &text)?;
            eprintln!("wrote {} rules to {path}", rs.len());
        }
        None => std::io::stdout().write_all(text.as_bytes())?,
    }
    eprintln!("{}", ruleset_stats(&format!("{kind} {size}"), &rs));
    Ok(())
}
