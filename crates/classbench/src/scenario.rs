//! Declarative workload scenarios: classify batches mixed with
//! insert/remove bursts.
//!
//! The churn benches used to hand-roll interleaved
//! insert/classify/remove loops; [`ScenarioScript`] turns that into a
//! tiny reusable language. A script is parsed once, validated
//! statically, and then bound to concrete traffic and rules as a
//! streaming [`TraceSource`] ([`ScenarioSource`]) that any scenario
//! runner can drive.
//!
//! # Grammar
//!
//! Statements are separated by whitespace, newlines or `;`; `#` starts a
//! comment that runs to end of line.
//!
//! ```text
//! scenario := stmt*
//! stmt     := "classify" COUNT      # emit COUNT synthetic headers
//!           | "insert" COUNT        # emit COUNT rule installs from the pool
//!           | "remove" COUNT        # undo the COUNT oldest not-yet-removed inserts
//!           | "repeat" COUNT "{" scenario "}"
//! ```
//!
//! `remove` refers to this scenario's own earlier `insert`s in FIFO
//! order; a script that would ever remove more than it has inserted is
//! rejected at parse time ([`ScenarioError::RemoveUnderflow`]), so a
//! bound source never emits an unsatisfiable
//! [`TraceEvent::Remove`].
//!
//! # Example
//!
//! ```
//! use spc_classbench::{
//!     FilterKind, RuleSetGenerator, ScenarioScript, TraceEvent, TraceGenerator, TraceSource,
//! };
//!
//! let base = RuleSetGenerator::new(FilterKind::Acl, 100).seed(1).generate();
//! let pool = RuleSetGenerator::new(FilterKind::Fw, 32).seed(2).generate();
//! let script = ScenarioScript::parse(
//!     "repeat 3 { insert 4; classify 100; remove 2 }  # bursty churn",
//! )
//! .unwrap();
//! assert_eq!(script.total_headers(), 300);
//! assert_eq!(script.total_inserts(), 12);
//! assert_eq!(script.total_removes(), 6);
//! let mut source = script
//!     .source(&TraceGenerator::new().seed(7), &base, pool.rules())
//!     .unwrap();
//! let mut inserts = 0;
//! while let Some(event) = source.next_event().unwrap() {
//!     if let TraceEvent::Insert(_) = event {
//!         inserts += 1;
//!     }
//! }
//! assert_eq!(inserts, 12);
//! ```

use crate::source::{TraceError, TraceEvent, TraceSource, DEFAULT_CHUNK};
use crate::trace::{Sampler, TraceGenerator};
use spc_types::{Rule, RuleSet};
use std::fmt;

/// One scenario statement.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Stmt {
    Classify(u64),
    Insert(u64),
    Remove(u64),
    Repeat(u64, Vec<Stmt>),
}

/// Error from parsing or binding a [`ScenarioScript`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The script text did not match the grammar.
    Parse {
        /// What was wrong, with the offending token where applicable.
        reason: String,
    },
    /// Somewhere in the script, more rules would have been removed than
    /// inserted up to that point — the removes have nothing to refer to.
    RemoveUnderflow,
    /// The script inserts rules but the bound pool is empty.
    EmptyPool,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { reason } => write!(f, "bad scenario script: {reason}"),
            ScenarioError::RemoveUnderflow => write!(
                f,
                "scenario removes more rules than it has inserted at that point \
                 (removes refer to the scenario's own earlier inserts)"
            ),
            ScenarioError::EmptyPool => {
                write!(f, "scenario inserts rules but the rule pool is empty")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A parsed, validated workload scenario. Bind it to concrete traffic
/// and rules with [`ScenarioScript::source`]. The grammar —
/// `classify N` / `insert N` / `remove N` / `repeat N { ... }`,
/// separated by whitespace, newlines or `;`, with `#` comments — is
/// documented in full in `docs/workloads.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioScript {
    program: Vec<Stmt>,
}

/// Net effect of a statement block on the insert/remove balance: the
/// total delta and the minimum the running balance reaches relative to
/// the block's start. All arithmetic saturates — nested `repeat`s can
/// multiply counts past any fixed width, and a saturated balance keeps
/// its sign, which is all the underflow check needs.
fn balance_effect(stmts: &[Stmt]) -> (i128, i128) {
    let (mut balance, mut min) = (0i128, 0i128);
    for stmt in stmts {
        match stmt {
            Stmt::Classify(_) => {}
            Stmt::Insert(n) => balance = balance.saturating_add(i128::from(*n)),
            Stmt::Remove(n) => {
                balance = balance.saturating_sub(i128::from(*n));
                min = min.min(balance);
            }
            Stmt::Repeat(k, body) => {
                let (delta, body_min) = balance_effect(body);
                let k = i128::from(*k);
                if k > 0 {
                    // The worst iteration starts from the lowest running
                    // balance: the first when the body is net-positive,
                    // the last when it is net-negative.
                    let worst_start = if delta >= 0 {
                        0
                    } else {
                        (k - 1).saturating_mul(delta)
                    };
                    min = min.min(balance.saturating_add(worst_start).saturating_add(body_min));
                    balance = balance.saturating_add(k.saturating_mul(delta));
                }
            }
        }
    }
    (balance, min)
}

/// Sums one kind of count across the block, repeats multiplied through
/// (saturating, like [`balance_effect`]).
fn total(stmts: &[Stmt], pick: fn(&Stmt) -> u64) -> u128 {
    stmts.iter().fold(0u128, |acc, s| {
        acc.saturating_add(match s {
            Stmt::Repeat(k, body) => u128::from(*k).saturating_mul(total(body, pick)),
            other => u128::from(pick(other)),
        })
    })
}

impl ScenarioScript {
    /// Parses and validates a script.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] for text outside the grammar and
    /// [`ScenarioError::RemoveUnderflow`] for a script whose removes
    /// ever outrun its inserts.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut tokens: Vec<&str> = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("");
            for raw in line.split([';', ' ', '\t']) {
                // Braces bind tight in written scripts ("...remove 2 }");
                // split them into their own tokens.
                let mut rest = raw;
                while let Some(i) = rest.find(['{', '}']) {
                    if i > 0 {
                        tokens.push(&rest[..i]);
                    }
                    tokens.push(&rest[i..=i]);
                    rest = &rest[i + 1..];
                }
                if !rest.is_empty() {
                    tokens.push(rest);
                }
            }
        }
        let (program, consumed) = Self::parse_block(&tokens, 0)?;
        if consumed != tokens.len() {
            return Err(ScenarioError::Parse {
                reason: format!("unexpected {:?} outside any block", tokens[consumed]),
            });
        }
        let (_, min) = balance_effect(&program);
        if min < 0 {
            return Err(ScenarioError::RemoveUnderflow);
        }
        Ok(ScenarioScript { program })
    }

    /// Parses statements from `tokens[i..]` until a `}` or end of input;
    /// returns the block and the index just past it (past the `}` for
    /// nested blocks, which the caller checks via the `repeat` path).
    fn parse_block(tokens: &[&str], mut i: usize) -> Result<(Vec<Stmt>, usize), ScenarioError> {
        let mut stmts = Vec::new();
        let count = |tokens: &[&str], i: usize, kw: &str| -> Result<u64, ScenarioError> {
            let tok = tokens.get(i).ok_or_else(|| ScenarioError::Parse {
                reason: format!("{kw} needs a count"),
            })?;
            tok.parse().map_err(|_| ScenarioError::Parse {
                reason: format!("{kw} needs a count, got {tok:?}"),
            })
        };
        while i < tokens.len() {
            match tokens[i] {
                "}" => break,
                "classify" => {
                    stmts.push(Stmt::Classify(count(tokens, i + 1, "classify")?));
                    i += 2;
                }
                "insert" => {
                    stmts.push(Stmt::Insert(count(tokens, i + 1, "insert")?));
                    i += 2;
                }
                "remove" => {
                    stmts.push(Stmt::Remove(count(tokens, i + 1, "remove")?));
                    i += 2;
                }
                "repeat" => {
                    let n = count(tokens, i + 1, "repeat")?;
                    if tokens.get(i + 2) != Some(&"{") {
                        return Err(ScenarioError::Parse {
                            reason: "repeat needs a { ... } block".to_string(),
                        });
                    }
                    let (body, after) = Self::parse_block(tokens, i + 3)?;
                    if tokens.get(after) != Some(&"}") {
                        return Err(ScenarioError::Parse {
                            reason: "unclosed { in repeat block".to_string(),
                        });
                    }
                    stmts.push(Stmt::Repeat(n, body));
                    i = after + 1;
                }
                other => {
                    return Err(ScenarioError::Parse {
                        reason: format!("unknown statement {other:?}"),
                    })
                }
            }
        }
        Ok((stmts, i))
    }

    /// Headers the scenario will classify, repeats multiplied through
    /// (saturating at `u64::MAX`).
    pub fn total_headers(&self) -> u64 {
        total(&self.program, |s| match s {
            Stmt::Classify(n) => *n,
            _ => 0,
        })
        .min(u128::from(u64::MAX)) as u64
    }

    /// Rules the scenario will insert.
    pub fn total_inserts(&self) -> u64 {
        total(&self.program, |s| match s {
            Stmt::Insert(n) => *n,
            _ => 0,
        })
        .min(u128::from(u64::MAX)) as u64
    }

    /// Inserts the scenario will undo again.
    pub fn total_removes(&self) -> u64 {
        total(&self.program, |s| match s {
            Stmt::Remove(n) => *n,
            _ => 0,
        })
        .min(u128::from(u64::MAX)) as u64
    }

    /// Binds the script to concrete inputs as a streaming
    /// [`ScenarioSource`]: classify traffic is sampled by `traffic` over
    /// `rules` (the base rule set), inserts draw from `pool` in order
    /// (cycling when exhausted).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::EmptyPool`] if the script inserts rules but
    /// `pool` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the script classifies traffic, `rules` is empty and
    /// `traffic`'s match fraction is above zero — the same contract as
    /// [`TraceGenerator::generate`].
    pub fn source<'a>(
        &'a self,
        traffic: &TraceGenerator,
        rules: &'a RuleSet,
        pool: &'a [Rule],
    ) -> Result<ScenarioSource<'a>, ScenarioError> {
        if self.total_inserts() > 0 && pool.is_empty() {
            return Err(ScenarioError::EmptyPool);
        }
        if self.total_headers() > 0 {
            assert!(
                !rules.is_empty() || traffic.match_fraction_value() == 0.0,
                "cannot sample matching traffic from an empty rule set"
            );
        }
        Ok(ScenarioSource {
            frames: vec![Frame {
                stmts: &self.program,
                next: 0,
                reps_left: 1,
            }],
            pending: Pending::None,
            sampler: traffic.sampler(),
            rules,
            pool,
            pool_next: 0,
            inserts_emitted: 0,
            removes_emitted: 0,
            chunk: DEFAULT_CHUNK,
        })
    }
}

/// One level of the scenario cursor: a block being executed, possibly
/// for several repetitions.
#[derive(Debug, Clone)]
struct Frame<'a> {
    stmts: &'a [Stmt],
    next: usize,
    reps_left: u64,
}

/// The statement currently being drained into events.
#[derive(Debug, Clone, Copy)]
enum Pending {
    None,
    Classify(u64),
    Insert(u64),
    Remove(u64),
}

/// A [`ScenarioScript`] bound to traffic, rules and a pool — the
/// streaming [`TraceSource`] that interleaves header chunks with
/// insert/remove events. Created by [`ScenarioScript::source`].
#[derive(Debug, Clone)]
pub struct ScenarioSource<'a> {
    frames: Vec<Frame<'a>>,
    pending: Pending,
    sampler: Sampler,
    rules: &'a RuleSet,
    pool: &'a [Rule],
    pool_next: usize,
    inserts_emitted: usize,
    removes_emitted: usize,
    chunk: usize,
}

impl ScenarioSource<'_> {
    /// Sets the headers-per-event chunk size (clamped to at least 1).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Advances the cursor past repeats to the next draining statement,
    /// or `None` when the program has run out.
    fn next_pending(&mut self) -> Option<Pending> {
        loop {
            let frame = self.frames.last_mut()?;
            if frame.next == frame.stmts.len() {
                frame.reps_left -= 1;
                if frame.reps_left == 0 {
                    self.frames.pop();
                } else {
                    frame.next = 0;
                }
                continue;
            }
            let stmts = frame.stmts;
            let stmt = &stmts[frame.next];
            frame.next += 1;
            match stmt {
                Stmt::Classify(n) => return Some(Pending::Classify(*n)),
                Stmt::Insert(n) => return Some(Pending::Insert(*n)),
                Stmt::Remove(n) => return Some(Pending::Remove(*n)),
                Stmt::Repeat(0, _) => continue,
                Stmt::Repeat(k, body) => {
                    self.frames.push(Frame {
                        stmts: body,
                        next: 0,
                        reps_left: *k,
                    });
                    continue;
                }
            }
        }
    }
}

impl TraceSource for ScenarioSource<'_> {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        loop {
            match self.pending {
                Pending::None => {
                    self.pending = match self.next_pending() {
                        None => return Ok(None),
                        Some(p) => p,
                    };
                }
                Pending::Classify(0) | Pending::Insert(0) | Pending::Remove(0) => {
                    self.pending = Pending::None;
                }
                Pending::Classify(n) => {
                    let take = u64::try_from(self.chunk).unwrap_or(u64::MAX).min(n);
                    let mut chunk = Vec::with_capacity(take as usize);
                    for _ in 0..take {
                        chunk.push(self.sampler.next_header(self.rules));
                    }
                    self.pending = Pending::Classify(n - take);
                    return Ok(Some(TraceEvent::Headers(chunk)));
                }
                Pending::Insert(n) => {
                    let rule = self.pool[self.pool_next % self.pool.len()];
                    self.pool_next += 1;
                    self.inserts_emitted += 1;
                    self.pending = Pending::Insert(n - 1);
                    return Ok(Some(TraceEvent::Insert(rule)));
                }
                Pending::Remove(n) => {
                    debug_assert!(
                        self.removes_emitted < self.inserts_emitted,
                        "parse-time validation keeps removes behind inserts"
                    );
                    let insert = self.removes_emitted;
                    self.removes_emitted += 1;
                    self.pending = Pending::Remove(n - 1);
                    return Ok(Some(TraceEvent::Remove { insert }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator};

    fn base_and_pool() -> (RuleSet, RuleSet) {
        (
            RuleSetGenerator::new(FilterKind::Acl, 80)
                .seed(1)
                .generate(),
            RuleSetGenerator::new(FilterKind::Fw, 24).seed(2).generate(),
        )
    }

    fn drain(mut src: ScenarioSource<'_>) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(ev) = src.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn parse_totals_and_event_stream_agree() {
        let (base, pool) = base_and_pool();
        let script =
            ScenarioScript::parse("classify 10; repeat 2 { insert 3; classify 5; remove 1 }")
                .unwrap();
        assert_eq!(script.total_headers(), 20);
        assert_eq!(script.total_inserts(), 6);
        assert_eq!(script.total_removes(), 2);
        let src = script
            .source(&TraceGenerator::new().seed(3), &base, pool.rules())
            .unwrap()
            .with_chunk(4);
        let events = drain(src);
        let headers: usize = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Headers(h) => Some(h.len()),
                _ => None,
            })
            .sum();
        let inserts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Insert(_)))
            .count();
        let removes: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Remove { insert } => Some(*insert),
                _ => None,
            })
            .collect();
        assert_eq!(headers, 20);
        assert_eq!(inserts, 6);
        assert_eq!(removes, vec![0, 1], "FIFO over the scenario's own inserts");
    }

    #[test]
    fn classify_traffic_matches_the_plain_generator() {
        let (base, pool) = base_and_pool();
        let gen = TraceGenerator::new().seed(11).locality(0.3);
        let script = ScenarioScript::parse("classify 64; classify 36").unwrap();
        let events = drain(script.source(&gen, &base, pool.rules()).unwrap());
        let got: Vec<_> = events
            .into_iter()
            .filter_map(|e| match e {
                TraceEvent::Headers(h) => Some(h),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, gen.generate(&base, 100), "one sampler stream");
    }

    #[test]
    fn nested_repeats_expand() {
        let (base, pool) = base_and_pool();
        let script = ScenarioScript::parse("repeat 2 { repeat 3 { insert 1 } remove 3 }").unwrap();
        assert_eq!(script.total_inserts(), 6);
        assert_eq!(script.total_removes(), 6);
        let events = drain(
            script
                .source(&TraceGenerator::new(), &base, pool.rules())
                .unwrap(),
        );
        assert_eq!(events.len(), 12);
        // Pool rules cycle in order.
        assert_eq!(events[0], TraceEvent::Insert(pool.rules()[0]), "pool order");
    }

    #[test]
    fn comments_separators_and_zero_repeat() {
        let script = ScenarioScript::parse(
            "# warm-up\nclassify 5\nrepeat 0 { insert 100 }\nclassify 5 # tail",
        )
        .unwrap();
        assert_eq!(script.total_headers(), 10);
        assert_eq!(script.total_inserts(), 0);
        let empty = ScenarioScript::parse("  # nothing \n").unwrap();
        assert_eq!(empty.total_headers(), 0);
        let (base, pool) = base_and_pool();
        assert!(drain(
            empty
                .source(&TraceGenerator::new(), &base, pool.rules())
                .unwrap()
        )
        .is_empty());
    }

    #[test]
    fn parse_errors_are_typed() {
        for (text, needle) in [
            ("classify ten", "count"),
            ("classify", "count"),
            ("frobnicate 3", "unknown statement"),
            ("repeat 2 insert 1", "block"),
            ("repeat 2 { insert 1", "unclosed"),
            ("insert 1 }", "outside any block"),
        ] {
            let e = ScenarioScript::parse(text).unwrap_err();
            match &e {
                ScenarioError::Parse { reason } => {
                    assert!(reason.contains(needle), "{text:?}: {reason}");
                }
                other => panic!("{text:?}: expected parse error, got {other:?}"),
            }
            assert!(e.to_string().contains("bad scenario script"));
        }
    }

    #[test]
    fn remove_underflow_is_rejected_statically() {
        for text in [
            "remove 1",
            "insert 1; remove 2",
            "repeat 2 { insert 1; remove 2 }",
            // Net-negative body: fine on iteration 1, underflows later.
            "insert 4; repeat 3 { remove 2 }",
        ] {
            assert_eq!(
                ScenarioScript::parse(text).unwrap_err(),
                ScenarioError::RemoveUnderflow,
                "{text:?}"
            );
        }
        // Balanced interleavings are fine, including across repeats.
        for text in [
            "insert 2; remove 2",
            "repeat 4 { insert 2; remove 1 }; remove 4",
            "insert 4; repeat 2 { remove 2 }",
        ] {
            assert!(ScenarioScript::parse(text).is_ok(), "{text:?}");
        }
    }

    #[test]
    fn astronomical_repeat_counts_validate_without_overflow() {
        // Nested repeats multiply far past i128/u128; validation must
        // saturate, not panic or wrap into a wrong verdict.
        let huge = u64::MAX;
        let script = ScenarioScript::parse(&format!(
            "repeat {huge} {{ repeat {huge} {{ insert {huge}; classify {huge} }} }}"
        ))
        .unwrap();
        assert_eq!(script.total_inserts(), u64::MAX, "saturated");
        assert_eq!(script.total_headers(), u64::MAX, "saturated");
        // And a genuinely underflowing script at that scale is still
        // caught.
        assert_eq!(
            ScenarioScript::parse(&format!(
                "repeat {huge} {{ repeat {huge} {{ insert {huge} }} }} remove 1; remove {huge}"
            ))
            .map(|_| ()),
            Ok(()),
            "saturated positive balance still covers removes"
        );
        assert_eq!(
            ScenarioScript::parse(&format!("repeat {huge} {{ insert 1; remove 2 }}")).unwrap_err(),
            ScenarioError::RemoveUnderflow
        );
    }

    #[test]
    fn empty_pool_is_rejected_at_bind_time() {
        let (base, _) = base_and_pool();
        let script = ScenarioScript::parse("insert 1").unwrap();
        assert_eq!(
            script
                .source(&TraceGenerator::new(), &base, &[])
                .unwrap_err(),
            ScenarioError::EmptyPool
        );
        // A classify-only script does not need a pool.
        let script = ScenarioScript::parse("classify 3").unwrap();
        assert!(script.source(&TraceGenerator::new(), &base, &[]).is_ok());
    }

    #[test]
    #[should_panic(expected = "empty rule set")]
    fn classify_over_empty_rules_panics_like_generate() {
        let script = ScenarioScript::parse("classify 1").unwrap();
        let _ = script.source(&TraceGenerator::new(), &RuleSet::new(), &[]);
    }
}
