//! Rule-set statistics for Tables II and III.

use spc_types::{FieldUniques, RuleSet};
use std::fmt;

/// Summary statistics of one rule set (a row of Tables II/III).
#[derive(Debug, Clone)]
pub struct RuleSetStats {
    /// Human-readable set name (e.g. `acl1 10K`).
    pub name: String,
    /// Number of rules after redundancy removal.
    pub rules: usize,
    /// Unique values per 5-tuple field (Table II rows).
    pub uniques: FieldUniques,
    /// Unique values per 16-bit segment dimension, in
    /// [`spc_types::ALL_DIMS`] order — what the label memories must hold.
    pub segment_uniques: [usize; 7],
    /// Storage saving of the label method: `1 - sum(uniques)/ (5*rules)`,
    /// the "more than 50%" figure of §III.C.
    pub label_saving: f64,
}

/// Computes the statistics for one rule set.
///
/// ```
/// use spc_classbench::{ruleset_stats, RuleSetGenerator, FilterKind};
/// let rs = RuleSetGenerator::new(FilterKind::Acl, 1000).seed(1).generate();
/// let st = ruleset_stats("acl1 1K", &rs);
/// assert_eq!(st.uniques.src_port, 1);
/// assert!(st.label_saving > 0.5);
/// ```
pub fn ruleset_stats(name: &str, rs: &RuleSet) -> RuleSetStats {
    let uniques = rs.unique_field_counts();
    let stored_fields =
        uniques.src_ip + uniques.dst_ip + uniques.src_port + uniques.dst_port + uniques.proto;
    let total_fields = 5 * rs.len();
    let label_saving = if total_fields == 0 {
        0.0
    } else {
        1.0 - stored_fields as f64 / total_fields as f64
    };
    RuleSetStats {
        name: name.to_string(),
        rules: rs.len(),
        uniques,
        segment_uniques: rs.unique_counts(),
        label_saving,
    }
}

impl fmt::Display for RuleSetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} rules={:<6} srcIP={:<5} dstIP={:<5} srcPort={:<4} dstPort={:<4} proto={:<2} label-saving={:.0}%",
            self.name,
            self.rules,
            self.uniques.src_ip,
            self.uniques.dst_ip,
            self.uniques.src_port,
            self.uniques.dst_port,
            self.uniques.proto,
            100.0 * self.label_saving
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator};

    #[test]
    fn label_saving_exceeds_half_for_acl() {
        // Paper §III.C: "the storage requirement can be reduced by more
        // than 50%" via unique-field labelling.
        for n in [1000usize, 5000] {
            let rs = RuleSetGenerator::new(FilterKind::Acl, n).seed(1).generate();
            let st = ruleset_stats("acl", &rs);
            assert!(st.label_saving > 0.5, "saving {} at n={n}", st.label_saving);
        }
    }

    #[test]
    fn display_contains_counts() {
        let rs = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(1)
            .generate();
        let st = ruleset_stats("acl1 tiny", &rs);
        let s = st.to_string();
        assert!(s.contains("acl1 tiny"));
        assert!(s.contains("srcPort=1"));
    }

    #[test]
    fn empty_ruleset_stats() {
        let st = ruleset_stats("empty", &RuleSet::default());
        assert_eq!(st.rules, 0);
        assert_eq!(st.label_saving, 0.0);
    }

    use spc_types::RuleSet;

    #[test]
    fn segment_uniques_ordering() {
        let rs = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(1)
            .generate();
        let st = ruleset_stats("acl", &rs);
        // src port is the wildcard-only dimension: exactly 1 unique segment.
        assert_eq!(st.segment_uniques[4], 1);
    }
}
