//! Seeded, ClassBench-style rule-set and packet-trace generators.
//!
//! The paper evaluates on the public filter sets of Song's ClassBench
//! project (`www.arl.wustl.edu/~hs1/project/filterset` — reference \[12\]):
//! Access Control Lists (ACL), Firewalls (FW) and IP Chains (IPC) at
//! roughly 1K/5K/10K rules (Table III). Those archives are no longer
//! distributable, so this crate regenerates *structurally equivalent* sets:
//!
//! * per-field pools with kind-specific size and skew, reproducing the
//!   unique-rule-field profile of Table II (many unique source prefixes,
//!   few unique destination prefixes, a single wildcard source port, ~100
//!   destination ports, 3 protocols for ACL sets);
//! * kind-specific prefix-length and range-shape distributions (ACL: long
//!   source prefixes; FW: wildcard-heavy with ranges on both ports; IPC:
//!   balanced prefix pairs);
//! * deterministic output from a [`u64`] seed.
//!
//! It also generates packet header traces ([`TraceGenerator`]) containing a
//! mix of rule-matching and background traffic with temporal locality, and
//! computes the statistics used by Tables II and III ([`ruleset_stats`]).
//!
//! Beyond synthetic generation, the crate defines the workspace's
//! streaming workload abstraction (see `docs/workloads.md`):
//!
//! * [`TraceSource`] — a stream of [`TraceEvent`]s: header chunks,
//!   optionally interleaved with rule insert/remove events;
//! * [`TraceGenerator::stream`] — the synthetic source
//!   ([`SyntheticTrace`]), generating lazily instead of materialising;
//! * [`PcapReader`] / [`PcapWriter`] — replaying captured traffic from
//!   (and exporting traces to) classic pcap files, 5-tuple only, with
//!   typed [`PcapError`]s for malformed captures;
//! * [`ScenarioScript`] — a declarative classify/insert/remove scenario
//!   language ([`ScenarioSource`]) for churn workloads.
//!
//! # Example
//!
//! ```
//! use spc_classbench::{RuleSetGenerator, FilterKind};
//! let rs = RuleSetGenerator::new(FilterKind::Acl, 1000).seed(42).generate();
//! assert!(rs.len() > 850 && rs.len() <= 1000);
//! // Deterministic:
//! let rs2 = RuleSetGenerator::new(FilterKind::Acl, 1000).seed(42).generate();
//! assert_eq!(rs, rs2);
//! ```

mod gen;
mod pcap;
mod pools;
mod scenario;
mod source;
mod stats;
mod trace;

pub use gen::{FilterKind, RuleSetGenerator};
pub use pcap::{write_pcap, PcapError, PcapReader, PcapWriter};
pub use scenario::{ScenarioError, ScenarioScript, ScenarioSource};
pub use source::{SyntheticTrace, TraceError, TraceEvent, TraceSource, DEFAULT_CHUNK};
pub use stats::{ruleset_stats, RuleSetStats};
pub use trace::{sample_matching_header, TraceGenerator};
