//! Packet header trace generation.

use rand::prelude::*;
use rand::rngs::StdRng;
use spc_types::{Header, ProtoSpec, Rule, RuleSet};

/// Samples a header guaranteed to match `rule`.
///
/// Free bits (below prefix masks, inside ranges, wildcard protocol) are
/// drawn uniformly from the rule's match region.
///
/// ```
/// use spc_classbench::sample_matching_header;
/// use spc_types::{Rule, Priority, Prefix, PortRange, ProtoSpec};
/// use rand::{rngs::StdRng, SeedableRng};
/// let rule = Rule::builder(Priority(0))
///     .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
///     .dst_port(PortRange::exact(80))
///     .proto(ProtoSpec::Exact(6))
///     .build();
/// let mut rng = StdRng::seed_from_u64(1);
/// let h = sample_matching_header(&rule, &mut rng);
/// assert!(rule.matches(&h));
/// ```
pub fn sample_matching_header(rule: &Rule, rng: &mut StdRng) -> Header {
    let sip = rng.gen_range(rule.src_ip.first().0..=rule.src_ip.last().0);
    let dip = rng.gen_range(rule.dst_ip.first().0..=rule.dst_ip.last().0);
    let sport = rng.gen_range(rule.src_port.lo()..=rule.src_port.hi());
    let dport = rng.gen_range(rule.dst_port.lo()..=rule.dst_port.hi());
    let proto = match rule.proto {
        ProtoSpec::Exact(p) => p,
        ProtoSpec::Any => *[6u8, 17, 1].choose(rng).expect("non-empty"),
    };
    Header::new(sip.into(), dip.into(), sport, dport, proto)
}

/// Generates packet-header traces against a rule set.
///
/// A fraction of headers ([`TraceGenerator::match_fraction`]) is sampled
/// from randomly chosen rules (Zipf-less uniform rule popularity keeps the
/// trace adversarial for caches); the rest is uniform background traffic
/// that may or may not match. Temporal locality — the hallmark of real
/// flow-based traffic, where one flow's packets arrive back to back — is
/// modeled by repeating the previous header with probability
/// [`TraceGenerator::locality`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    match_fraction: f64,
    locality: f64,
}

impl TraceGenerator {
    /// Creates a trace generator with 90 % matching traffic and 0 locality.
    pub fn new() -> Self {
        TraceGenerator {
            seed: 1,
            match_fraction: 0.9,
            locality: 0.0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of headers sampled from rules (clamped to `0..=1`).
    pub fn match_fraction(mut self, f: f64) -> Self {
        self.match_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the probability of repeating the previous flow's header.
    pub fn locality(mut self, p: f64) -> Self {
        self.locality = p.clamp(0.0, 1.0);
        self
    }

    /// Generates `len` headers for `rules`.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty and `match_fraction > 0`.
    pub fn generate(&self, rules: &RuleSet, len: usize) -> Vec<Header> {
        assert!(
            !rules.is_empty() || self.match_fraction == 0.0,
            "cannot sample matching traffic from an empty rule set"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(len);
        let mut prev: Option<Header> = None;
        for _ in 0..len {
            if let Some(p) = prev {
                if rng.gen_bool(self.locality) {
                    out.push(p);
                    continue;
                }
            }
            let h = if rng.gen_bool(self.match_fraction) {
                let idx = rng.gen_range(0..rules.len());
                sample_matching_header(&rules.rules()[idx], &mut rng)
            } else {
                Header::new(
                    rng.gen::<u32>().into(),
                    rng.gen::<u32>().into(),
                    rng.gen(),
                    rng.gen(),
                    *[6u8, 17, 1, 47].choose(&mut rng).expect("non-empty"),
                )
            };
            prev = Some(h);
            out.push(h);
        }
        out
    }
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator};
    use spc_types::{PortRange, Prefix, Priority};

    fn small_set() -> RuleSet {
        RuleSetGenerator::new(FilterKind::Acl, 200)
            .seed(11)
            .generate()
    }

    #[test]
    fn deterministic() {
        let rs = small_set();
        let a = TraceGenerator::new().seed(3).generate(&rs, 100);
        let b = TraceGenerator::new().seed(3).generate(&rs, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn match_fraction_one_always_matches() {
        let rs = small_set();
        let trace = TraceGenerator::new()
            .seed(3)
            .match_fraction(1.0)
            .generate(&rs, 200);
        for h in &trace {
            assert!(
                rs.classify(h).is_some(),
                "header {h} should match some rule"
            );
        }
    }

    #[test]
    fn locality_repeats_headers() {
        let rs = small_set();
        let trace = TraceGenerator::new()
            .seed(3)
            .locality(0.8)
            .generate(&rs, 500);
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 250, "expected heavy repetition, got {repeats}");
    }

    #[test]
    fn sample_matching_header_respects_tight_rule() {
        let rule = Rule::builder(Priority(0))
            .src_ip(Prefix::parse("1.2.3.4/32").unwrap())
            .dst_ip(Prefix::parse("5.6.7.8/32").unwrap())
            .src_port(PortRange::exact(1))
            .dst_port(PortRange::exact(2))
            .proto(spc_types::ProtoSpec::Exact(6))
            .build();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let h = sample_matching_header(&rule, &mut rng);
            assert_eq!(h.src_ip.octets(), [1, 2, 3, 4]);
            assert_eq!(h.dst_port, 2);
            assert_eq!(h.proto, 6);
        }
    }

    #[test]
    #[should_panic(expected = "empty rule set")]
    fn empty_rules_with_matching_fraction_panics() {
        let _ = TraceGenerator::new().generate(&RuleSet::new(), 10);
    }

    #[test]
    fn empty_rules_background_only_ok() {
        let trace = TraceGenerator::new()
            .match_fraction(0.0)
            .generate(&RuleSet::new(), 10);
        assert_eq!(trace.len(), 10);
    }
}
