//! Packet header trace generation.

use crate::source::SyntheticTrace;
use rand::prelude::*;
use rand::rngs::StdRng;
use spc_types::{Header, ProtoSpec, Rule, RuleSet};

/// Samples a header guaranteed to match `rule`.
///
/// Free bits (below prefix masks, inside ranges, wildcard protocol) are
/// drawn uniformly from the rule's match region.
///
/// ```
/// use spc_classbench::sample_matching_header;
/// use spc_types::{Rule, Priority, Prefix, PortRange, ProtoSpec};
/// use rand::{rngs::StdRng, SeedableRng};
/// let rule = Rule::builder(Priority(0))
///     .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
///     .dst_port(PortRange::exact(80))
///     .proto(ProtoSpec::Exact(6))
///     .build();
/// let mut rng = StdRng::seed_from_u64(1);
/// let h = sample_matching_header(&rule, &mut rng);
/// assert!(rule.matches(&h));
/// ```
#[allow(clippy::expect_used)] // `choose` on a fixed non-empty array
pub fn sample_matching_header(rule: &Rule, rng: &mut StdRng) -> Header {
    let sip = rng.gen_range(rule.src_ip.first().0..=rule.src_ip.last().0);
    let dip = rng.gen_range(rule.dst_ip.first().0..=rule.dst_ip.last().0);
    let sport = rng.gen_range(rule.src_port.lo()..=rule.src_port.hi());
    let dport = rng.gen_range(rule.dst_port.lo()..=rule.dst_port.hi());
    let proto = match rule.proto {
        ProtoSpec::Exact(p) => p,
        ProtoSpec::Any => *[6u8, 17, 1].choose(rng).expect("non-empty"),
    };
    Header::new(sip.into(), dip.into(), sport, dport, proto)
}

/// The streaming header-sampling state shared by every synthetic source:
/// one seeded RNG plus the previous header for temporal locality. Pulled
/// out of [`TraceGenerator::generate`] so [`SyntheticTrace`] and the
/// scenario source draw from exactly the same sequence.
#[derive(Debug, Clone)]
pub(crate) struct Sampler {
    rng: StdRng,
    prev: Option<Header>,
    match_fraction: f64,
    locality: f64,
}

impl Sampler {
    #[allow(clippy::expect_used)] // `choose` on a fixed non-empty array
    pub(crate) fn next_header(&mut self, rules: &RuleSet) -> Header {
        if let Some(p) = self.prev {
            if self.rng.gen_bool(self.locality) {
                return p;
            }
        }
        let h = if self.rng.gen_bool(self.match_fraction) {
            let idx = self.rng.gen_range(0..rules.len());
            sample_matching_header(&rules.rules()[idx], &mut self.rng)
        } else {
            Header::new(
                self.rng.gen::<u32>().into(),
                self.rng.gen::<u32>().into(),
                self.rng.gen(),
                self.rng.gen(),
                *[6u8, 17, 1, 47].choose(&mut self.rng).expect("non-empty"),
            )
        };
        self.prev = Some(h);
        h
    }
}

/// Generates packet-header traces against a rule set.
///
/// A fraction of headers ([`TraceGenerator::match_fraction`]) is sampled
/// from randomly chosen rules (Zipf-less uniform rule popularity keeps the
/// trace adversarial for caches); the rest is uniform background traffic
/// that may or may not match. Temporal locality — the hallmark of real
/// flow-based traffic, where one flow's packets arrive back to back — is
/// modeled by repeating the previous header with probability
/// [`TraceGenerator::locality`].
///
/// The generator is also the synthetic [`crate::TraceSource`]: call
/// [`TraceGenerator::stream`] to obtain headers lazily in chunks instead
/// of materialising the whole trace — [`TraceGenerator::generate`] is the
/// thin collect-everything adapter over that stream.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    match_fraction: f64,
    locality: f64,
}

impl TraceGenerator {
    /// Creates a trace generator with 90 % matching traffic and 0 locality.
    pub fn new() -> Self {
        TraceGenerator {
            seed: 1,
            match_fraction: 0.9,
            locality: 0.0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of headers sampled from rules.
    ///
    /// # Panics
    ///
    /// Panics unless `f` is a finite fraction in `0.0..=1.0` — NaN or an
    /// out-of-range value would silently produce a degenerate trace (the
    /// old behaviour was to clamp), so it is rejected at the builder.
    pub fn match_fraction(mut self, f: f64) -> Self {
        assert!(
            f.is_finite() && (0.0..=1.0).contains(&f),
            "match_fraction must be a finite fraction in [0, 1], got {f}"
        );
        self.match_fraction = f;
        self
    }

    /// Sets the probability of repeating the previous flow's header.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is a finite probability in `0.0..=1.0` (NaN and
    /// out-of-range values are rejected, not clamped).
    pub fn locality(mut self, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "locality must be a finite probability in [0, 1], got {p}"
        );
        self.locality = p;
        self
    }

    pub(crate) fn sampler(&self) -> Sampler {
        Sampler {
            rng: StdRng::seed_from_u64(self.seed),
            prev: None,
            match_fraction: self.match_fraction,
            locality: self.locality,
        }
    }

    pub(crate) fn match_fraction_value(&self) -> f64 {
        self.match_fraction
    }

    /// Streams `len` headers for `rules` lazily, in chunks — the
    /// synthetic [`crate::TraceSource`]. Identical seeds yield identical
    /// traces whether streamed or [generated][TraceGenerator::generate]
    /// in one go.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty and `match_fraction > 0`.
    ///
    /// ```
    /// use spc_classbench::{FilterKind, RuleSetGenerator, TraceGenerator, TraceSource};
    /// let rs = RuleSetGenerator::new(FilterKind::Acl, 100).seed(1).generate();
    /// let gen = TraceGenerator::new().seed(3);
    /// let streamed = gen.stream(&rs, 500).collect_headers().unwrap();
    /// assert_eq!(streamed, gen.generate(&rs, 500));
    /// ```
    pub fn stream<'a>(&self, rules: &'a RuleSet, len: usize) -> SyntheticTrace<'a> {
        assert!(
            !rules.is_empty() || self.match_fraction == 0.0,
            "cannot sample matching traffic from an empty rule set"
        );
        SyntheticTrace::new(self.sampler(), rules, len)
    }

    /// Generates `len` headers for `rules` — the materialising adapter
    /// over [`TraceGenerator::stream`].
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty and `match_fraction > 0`.
    pub fn generate(&self, rules: &RuleSet, len: usize) -> Vec<Header> {
        self.stream(rules, len).collect()
    }
}

impl Default for TraceGenerator {
    fn default() -> Self {
        TraceGenerator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator, TraceEvent, TraceSource};
    use spc_types::{PortRange, Prefix, Priority};

    fn small_set() -> RuleSet {
        RuleSetGenerator::new(FilterKind::Acl, 200)
            .seed(11)
            .generate()
    }

    #[test]
    fn deterministic() {
        let rs = small_set();
        let a = TraceGenerator::new().seed(3).generate(&rs, 100);
        let b = TraceGenerator::new().seed(3).generate(&rs, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_equals_generate_across_chunk_sizes() {
        let rs = small_set();
        let gen = TraceGenerator::new().seed(9).locality(0.4);
        let want = gen.generate(&rs, 333);
        for chunk in [1, 7, 64, 1000] {
            let got = gen
                .stream(&rs, 333)
                .with_chunk(chunk)
                .collect_headers()
                .unwrap();
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn stream_emits_bounded_header_chunks() {
        let rs = small_set();
        let mut src = TraceGenerator::new()
            .seed(3)
            .stream(&rs, 100)
            .with_chunk(32);
        assert_eq!(src.headers_hint(), Some(100));
        let mut total = 0;
        while let Some(ev) = src.next_event().unwrap() {
            match ev {
                TraceEvent::Headers(h) => {
                    assert!(!h.is_empty() && h.len() <= 32);
                    total += h.len();
                }
                other => panic!("synthetic sources emit headers only, got {other:?}"),
            }
        }
        assert_eq!(total, 100);
        // Fused: exhausted sources stay exhausted.
        assert!(src.next_event().unwrap().is_none());
    }

    #[test]
    fn match_fraction_one_always_matches() {
        let rs = small_set();
        let trace = TraceGenerator::new()
            .seed(3)
            .match_fraction(1.0)
            .generate(&rs, 200);
        for h in &trace {
            assert!(
                rs.classify(h).is_some(),
                "header {h} should match some rule"
            );
        }
    }

    #[test]
    fn locality_repeats_headers() {
        let rs = small_set();
        let trace = TraceGenerator::new()
            .seed(3)
            .locality(0.8)
            .generate(&rs, 500);
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 250, "expected heavy repetition, got {repeats}");
    }

    #[test]
    fn sample_matching_header_respects_tight_rule() {
        let rule = Rule::builder(Priority(0))
            .src_ip(Prefix::parse("1.2.3.4/32").unwrap())
            .dst_ip(Prefix::parse("5.6.7.8/32").unwrap())
            .src_port(PortRange::exact(1))
            .dst_port(PortRange::exact(2))
            .proto(spc_types::ProtoSpec::Exact(6))
            .build();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let h = sample_matching_header(&rule, &mut rng);
            assert_eq!(h.src_ip.octets(), [1, 2, 3, 4]);
            assert_eq!(h.dst_port, 2);
            assert_eq!(h.proto, 6);
        }
    }

    #[test]
    #[should_panic(expected = "empty rule set")]
    fn empty_rules_with_matching_fraction_panics() {
        let _ = TraceGenerator::new().generate(&RuleSet::new(), 10);
    }

    #[test]
    fn empty_rules_background_only_ok() {
        let trace = TraceGenerator::new()
            .match_fraction(0.0)
            .generate(&RuleSet::new(), 10);
        assert_eq!(trace.len(), 10);
    }

    #[test]
    #[should_panic(expected = "match_fraction must be a finite fraction")]
    fn nan_match_fraction_is_rejected() {
        let _ = TraceGenerator::new().match_fraction(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "match_fraction must be a finite fraction")]
    fn out_of_range_match_fraction_is_rejected() {
        let _ = TraceGenerator::new().match_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "locality must be a finite probability")]
    fn negative_locality_is_rejected() {
        let _ = TraceGenerator::new().locality(-0.1);
    }

    #[test]
    #[should_panic(expected = "locality must be a finite probability")]
    fn infinite_locality_is_rejected() {
        let _ = TraceGenerator::new().locality(f64::INFINITY);
    }
}
