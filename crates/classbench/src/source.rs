//! The streaming workload abstraction: [`TraceSource`].
//!
//! The paper evaluates its configurable architecture under *workloads* —
//! synthetic ClassBench-style traces (Tables VI/VII) and
//! controller-driven update bursts (§V.A). A workload used to be a
//! materialised `Vec<Header>`; this module replaces that with a streaming
//! trait so the same consumers (the `spc-engine` ingest pipeline, the
//! bench binaries, the differential-oracle tests) can be driven by
//!
//! * synthetic traces, generated lazily ([`SyntheticTrace`], from
//!   [`crate::TraceGenerator::stream`]);
//! * captured traffic replayed from pcap files ([`crate::PcapReader`]);
//! * scripted mixes of classify batches and insert/remove bursts
//!   ([`crate::ScenarioScript`]).
//!
//! # The contract
//!
//! A source yields [`TraceEvent`]s in workload order until it returns
//! `Ok(None)`, after which it is exhausted and stays exhausted (fused).
//! Header chunks are bounded ([`DEFAULT_CHUNK`] unless reconfigured) so a
//! consumer with a bounded queue keeps its backpressure: pulling the next
//! event only after the previous chunk was enqueued bounds the number of
//! headers in flight. [`TraceEvent::Remove`] refers to the source's own
//! earlier [`TraceEvent::Insert`] events by emission index — a source
//! never emits a remove for an insert it has not yet emitted.

use crate::pcap::PcapError;
use crate::trace::Sampler;
use spc_types::{Header, Rule, RuleSet};
use std::fmt;

/// Headers per chunk a well-behaved source emits unless told otherwise —
/// the same granularity as the engine pipeline's bounded queue.
pub const DEFAULT_CHUNK: usize = 1024;

/// One workload event pulled from a [`TraceSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A non-empty chunk of headers to classify, in arrival order.
    Headers(Vec<Header>),
    /// Install this rule (churn scenarios).
    Insert(Rule),
    /// Remove the rule created by this source's `insert`-th
    /// [`TraceEvent::Insert`] event (0-based, in emission order). The
    /// consumer owns the mapping from insert index to whatever id its
    /// engine assigned — or to "that insert was skipped as a duplicate".
    Remove {
        /// Emission index of the insert event being undone.
        insert: usize,
    },
}

/// Error from pulling on a [`TraceSource`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// The underlying pcap stream was malformed or unreadable.
    Pcap(PcapError),
    /// A classify-only consumer (e.g. a header collector or the engine
    /// ingest pipeline) was handed a source that emits update events.
    UnexpectedUpdate,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Pcap(e) => write!(f, "pcap trace source failed: {e}"),
            TraceError::UnexpectedUpdate => write!(
                f,
                "the trace source emitted an update event, but this consumer \
                 only classifies headers (drive it with a scenario runner instead)"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Pcap(e) => Some(e),
            TraceError::UnexpectedUpdate => None,
        }
    }
}

impl From<PcapError> for TraceError {
    fn from(e: PcapError) -> Self {
        TraceError::Pcap(e)
    }
}

/// A streaming workload: header chunks, optionally interleaved with
/// insert/remove events for churn scenarios.
///
/// The event contract (ordering, bounded chunks, remove-by-insert-index,
/// fused exhaustion) is documented in `docs/workloads.md`.
/// Implementations in this crate: [`SyntheticTrace`],
/// [`crate::PcapReader`], [`crate::ScenarioSource`].
pub trait TraceSource {
    /// Pulls the next workload event, or `Ok(None)` once exhausted.
    ///
    /// # Errors
    ///
    /// [`TraceError`] when the underlying stream is malformed (only
    /// fallible sources — pcap replay — ever return one).
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError>;

    /// How many headers this source will still emit, when known — a
    /// pre-allocation hint, not a promise.
    fn headers_hint(&self) -> Option<usize> {
        None
    }

    /// Drains the source into one materialised header vector — the
    /// adapter between streaming sources and consumers that genuinely
    /// need the whole trace at once (criterion timing loops, oracle
    /// vectors).
    ///
    /// # Errors
    ///
    /// Propagates stream errors, and [`TraceError::UnexpectedUpdate`] if
    /// the source emits update events (collect a scenario's headers by
    /// *running* the scenario, not by flattening it).
    fn collect_headers(mut self) -> Result<Vec<Header>, TraceError>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(self.headers_hint().unwrap_or(0));
        while let Some(event) = self.next_event()? {
            match event {
                TraceEvent::Headers(chunk) => out.extend(chunk),
                TraceEvent::Insert(_) | TraceEvent::Remove { .. } => {
                    return Err(TraceError::UnexpectedUpdate)
                }
            }
        }
        Ok(out)
    }
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        (**self).next_event()
    }

    fn headers_hint(&self) -> Option<usize> {
        (**self).headers_hint()
    }
}

/// The synthetic [`TraceSource`]: [`crate::TraceGenerator`]'s sampling
/// loop made lazy. Obtained from [`crate::TraceGenerator::stream`];
/// identical seeds produce identical headers whether streamed chunk by
/// chunk, iterated one by one, or materialised via
/// [`crate::TraceGenerator::generate`].
#[derive(Debug, Clone)]
pub struct SyntheticTrace<'a> {
    sampler: Sampler,
    rules: &'a RuleSet,
    remaining: usize,
    chunk: usize,
}

impl<'a> SyntheticTrace<'a> {
    pub(crate) fn new(sampler: Sampler, rules: &'a RuleSet, len: usize) -> Self {
        SyntheticTrace {
            sampler,
            rules,
            remaining: len,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the headers-per-event chunk size (clamped to at least 1).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Headers this source will still emit.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl TraceSource for SyntheticTrace<'_> {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = self.remaining.min(self.chunk);
        let mut chunk = Vec::with_capacity(n);
        for _ in 0..n {
            chunk.push(self.sampler.next_header(self.rules));
        }
        self.remaining -= n;
        Ok(Some(TraceEvent::Headers(chunk)))
    }

    fn headers_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Synthetic traces are pure header streams, so they are also plain
/// iterators — handy for feeding consumers that take `IntoIterator`,
/// like [`crate::write_pcap`].
impl Iterator for SyntheticTrace<'_> {
    type Item = Header;

    fn next(&mut self) -> Option<Header> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.sampler.next_header(self.rules))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SyntheticTrace<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator, TraceGenerator};

    #[test]
    fn iterator_and_source_views_agree() {
        let rules = RuleSetGenerator::new(FilterKind::Ipc, 120)
            .seed(5)
            .generate();
        let gen = TraceGenerator::new().seed(17).locality(0.2);
        let via_iter: Vec<Header> = gen.stream(&rules, 257).collect();
        let via_source = gen.stream(&rules, 257).collect_headers().unwrap();
        assert_eq!(via_iter, via_source);
        assert_eq!(via_iter.len(), 257);
        let mut s = gen.stream(&rules, 10);
        assert_eq!(s.len(), 10);
        s.next();
        assert_eq!(s.remaining(), 9);
        assert_eq!(s.headers_hint(), Some(9));
    }

    #[test]
    fn trace_error_display_and_source() {
        use std::error::Error;
        let e = TraceError::UnexpectedUpdate;
        assert!(e.to_string().contains("update event"));
        assert!(e.source().is_none());
        let e = TraceError::from(PcapError::BadMagic { magic: 0xdead });
        assert!(e.to_string().contains("pcap"));
        assert!(e.source().is_some());
    }

    #[test]
    fn mut_ref_is_a_source_too() {
        let rules = RuleSetGenerator::new(FilterKind::Acl, 50)
            .seed(5)
            .generate();
        let mut s = TraceGenerator::new().seed(1).stream(&rules, 5);
        let r = &mut s;
        assert_eq!(r.headers_hint(), Some(5));
        assert!(matches!(
            r.next_event().unwrap(),
            Some(TraceEvent::Headers(_))
        ));
    }
}
