//! Classic pcap reading and writing, restricted to the classification
//! 5-tuple.
//!
//! The ROADMAP's "real trace replay" item: engines should be drivable by
//! *captured* traffic, not only synthetic ClassBench traces. This module
//! implements the classic libpcap capture format (the 24-byte global
//! header with magic `0xa1b2c3d4`, then per-packet records) just deep
//! enough to move [`Header`]s in and out:
//!
//! * [`PcapReader`] — a streaming [`crate::TraceSource`] over a capture
//!   file, reading record by record through a buffered `Read` (one
//!   reusable packet buffer; the capture is never materialised, so a
//!   multi-gigabyte tcpdump file replays in constant memory). Both byte
//!   orders and both timestamp resolutions (micro/nanosecond magic) are
//!   accepted; link types Ethernet (1, with optional single VLAN tag)
//!   and raw IPv4 (101) are supported. Only the 5-tuple segments the
//!   lookup engines consume are parsed: source and destination address,
//!   the four bytes after the IPv4 header as source/destination port
//!   (exact for TCP/UDP; for other protocols the classifiers treat
//!   ports as opaque 16-bit dimensions anyway — but non-first IPv4
//!   fragments, whose post-header bytes are mid-payload, read as port
//!   0), and the protocol number. Records that are well-formed but not
//!   IPv4 (ARP, IPv6, captures too short for an IP header) are counted
//!   in [`PcapReader::skipped`] and skipped; *structural* damage — a
//!   bad magic, a record header cut short, a packet body shorter than
//!   its declared `incl_len`, an `incl_len` beyond any plausible snap
//!   length — is a typed [`PcapError`], and the reader stays poisoned
//!   on it (re-reporting rather than resynchronising, since offsets
//!   past the damage are meaningless).
//! * [`PcapWriter`] / [`write_pcap`] — emit a minimal raw-IPv4 capture
//!   (20-byte IP header with a correct checksum plus the two port
//!   words) that round-trips through [`PcapReader`] bit-exactly and
//!   opens in standard tools.

use crate::source::{TraceError, TraceEvent, TraceSource, DEFAULT_CHUNK};
use spc_types::Header;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// Classic pcap magic, microsecond timestamps.
const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Classic pcap magic, nanosecond timestamps (we ignore timestamps, so
/// it is accepted and treated identically).
const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// Bytes in the pcap global (file) header.
const FILE_HEADER_LEN: usize = 24;
/// Bytes in a per-packet record header.
const RECORD_HEADER_LEN: usize = 16;
/// LINKTYPE_ETHERNET.
const LINK_ETHERNET: u32 = 1;
/// LINKTYPE_RAW (raw IP starting at the first byte).
const LINK_RAW_IP: u32 = 101;

/// Error from the pcap reader/writer.
#[derive(Debug)]
#[non_exhaustive]
pub enum PcapError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file ends before the 24-byte pcap global header.
    TruncatedFileHeader {
        /// Bytes actually present.
        len: usize,
    },
    /// The first four bytes are not a known pcap magic in either byte
    /// order.
    BadMagic {
        /// The magic as read (little-endian).
        magic: u32,
    },
    /// The capture's link type is neither Ethernet (1) nor raw IP (101).
    UnsupportedLinkType {
        /// The link type from the global header.
        link: u32,
    },
    /// A per-packet record header (16 bytes) is cut short by end of
    /// file.
    TruncatedRecordHeader {
        /// File offset of the truncated record.
        offset: usize,
        /// Bytes actually present there.
        have: usize,
    },
    /// A packet body is shorter than the `incl_len` its record header
    /// declared.
    TruncatedPacketBody {
        /// File offset of the record.
        offset: usize,
        /// Bytes the record header promised.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// A record declares an `incl_len` beyond any plausible snap length
    /// — corrupt length fields must not drive the packet buffer's
    /// allocation.
    OversizedPacket {
        /// File offset of the record.
        offset: usize,
        /// The declared capture length.
        incl_len: usize,
        /// The accepted maximum (the global header's snap length,
        /// clamped to `[65535, 64 MiB]`).
        cap: usize,
    },
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o failed: {e}"),
            PcapError::TruncatedFileHeader { len } => write!(
                f,
                "pcap global header truncated: {len} bytes, need {FILE_HEADER_LEN}"
            ),
            PcapError::BadMagic { magic } => {
                write!(f, "not a classic pcap file: magic {magic:#010x}")
            }
            PcapError::UnsupportedLinkType { link } => write!(
                f,
                "unsupported pcap link type {link} (supported: {LINK_ETHERNET} \
                 Ethernet, {LINK_RAW_IP} raw IP)"
            ),
            PcapError::TruncatedRecordHeader { offset, have } => write!(
                f,
                "pcap record header at offset {offset} truncated: \
                 {have} bytes, need {RECORD_HEADER_LEN}"
            ),
            PcapError::TruncatedPacketBody { offset, need, have } => write!(
                f,
                "pcap packet at offset {offset} truncated: record declares \
                 {need} bytes, file holds {have}"
            ),
            PcapError::OversizedPacket {
                offset,
                incl_len,
                cap,
            } => write!(
                f,
                "pcap packet at offset {offset} declares {incl_len} captured \
                 bytes, beyond the plausible snap length {cap}"
            ),
        }
    }
}

impl std::error::Error for PcapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Parses the classification 5-tuple out of one captured packet, or
/// `None` when the packet is well-formed pcap but not parsable IPv4
/// (to be skipped, not an error).
fn parse_five_tuple(packet: &[u8], link: u32) -> Option<Header> {
    let ip = match link {
        LINK_RAW_IP => packet,
        _ => {
            // Ethernet: 14-byte header, EtherType at 12; one 802.1Q tag
            // (0x8100) pushes the payload out by 4.
            if packet.len() < 14 {
                return None;
            }
            let ethertype = u16::from_be_bytes([packet[12], packet[13]]);
            match ethertype {
                0x0800 => &packet[14..],
                0x8100 if packet.len() >= 18 => {
                    let inner = u16::from_be_bytes([packet[16], packet[17]]);
                    if inner != 0x0800 {
                        return None;
                    }
                    &packet[18..]
                }
                _ => return None,
            }
        }
    };
    if ip.len() < 20 || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0x0f) * 4;
    if ihl < 20 || ip.len() < ihl {
        return None;
    }
    let proto = ip[9];
    let src = u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]);
    let dst = u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]);
    // The two 16-bit words after the IP header are the source and
    // destination port for every port-bearing transport. They read as 0
    // when the capture's snap length cut them off, and for non-first
    // fragments (fragment offset > 0), where the post-header bytes are
    // mid-payload, not a transport header.
    let fragment_offset = u16::from_be_bytes([ip[6], ip[7]]) & 0x1fff;
    let (sport, dport) = if fragment_offset == 0 && ip.len() >= ihl + 4 {
        (
            u16::from_be_bytes([ip[ihl], ip[ihl + 1]]),
            u16::from_be_bytes([ip[ihl + 2], ip[ihl + 3]]),
        )
    } else {
        (0, 0)
    };
    Some(Header::new(src.into(), dst.into(), sport, dport, proto))
}

/// A streaming [`TraceSource`] over a classic pcap capture.
///
/// ```
/// use spc_classbench::{write_pcap, PcapReader, TraceSource};
/// use spc_types::Header;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = vec![Header::new([10, 0, 0, 1].into(), [10, 0, 0, 2].into(), 1234, 80, 6)];
/// let dir = std::env::temp_dir().join(format!("spc_pcap_doc_{}.pcap", std::process::id()));
/// write_pcap(&dir, trace.iter().copied())?;
/// let replayed = PcapReader::open(&dir)?.collect_headers()?;
/// assert_eq!(replayed, trace);
/// # std::fs::remove_file(&dir)?;
/// # Ok(())
/// # }
/// ```
pub struct PcapReader {
    input: Box<dyn io::Read>,
    /// Bytes consumed from the stream so far — the offsets in errors.
    pos: usize,
    swapped: bool,
    link: u32,
    /// Largest `incl_len` accepted, from the global header's snap
    /// length clamped to `[65535, 64 MiB]` — a corrupt record must not
    /// drive the buffer allocation.
    snap_cap: usize,
    chunk: usize,
    packets: u64,
    skipped: u64,
    /// Structural damage already reported; re-reported on every
    /// subsequent pull instead of resynchronising past it.
    poisoned: Option<Poisoned>,
    /// Reusable per-record buffer (record header + body).
    buf: Vec<u8>,
}

/// The structural-damage classes a reader latches (everything but
/// [`PcapError::Io`], whose payload cannot be replayed — an I/O failure
/// re-reports as a fresh generic I/O error).
#[derive(Debug, Clone, Copy)]
enum Poisoned {
    RecordHeader {
        offset: usize,
        have: usize,
    },
    PacketBody {
        offset: usize,
        need: usize,
        have: usize,
    },
    Oversized {
        offset: usize,
        incl_len: usize,
        cap: usize,
    },
    Io,
}

impl Poisoned {
    fn to_error(self) -> PcapError {
        match self {
            Poisoned::RecordHeader { offset, have } => {
                PcapError::TruncatedRecordHeader { offset, have }
            }
            Poisoned::PacketBody { offset, need, have } => {
                PcapError::TruncatedPacketBody { offset, need, have }
            }
            Poisoned::Oversized {
                offset,
                incl_len,
                cap,
            } => PcapError::OversizedPacket {
                offset,
                incl_len,
                cap,
            },
            Poisoned::Io => PcapError::Io(io::Error::other(
                "the pcap stream already failed with an i/o error",
            )),
        }
    }
}

impl fmt::Debug for PcapReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PcapReader")
            .field("pos", &self.pos)
            .field("link", &self.link)
            .field("packets", &self.packets)
            .field("skipped", &self.skipped)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl PcapReader {
    /// Opens a capture file, streaming it record by record through a
    /// buffered reader — the capture is never loaded whole.
    ///
    /// # Errors
    ///
    /// [`PcapError::Io`] on filesystem failure, plus everything
    /// [`PcapReader::new`] rejects.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PcapError> {
        Self::new(Box::new(io::BufReader::new(fs::File::open(path)?)))
    }

    /// Wraps an in-memory capture.
    ///
    /// # Errors
    ///
    /// As [`PcapReader::new`].
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, PcapError> {
        Self::new(Box::new(io::Cursor::new(data)))
    }

    /// Wraps any byte stream, reading and validating the 24-byte global
    /// header.
    ///
    /// # Errors
    ///
    /// [`PcapError::TruncatedFileHeader`] for fewer than 24 bytes,
    /// [`PcapError::BadMagic`] for an unknown magic,
    /// [`PcapError::UnsupportedLinkType`] for a link type other than
    /// Ethernet or raw IP, [`PcapError::Io`] on read failure.
    pub fn new(mut input: Box<dyn io::Read>) -> Result<Self, PcapError> {
        let mut header = [0u8; FILE_HEADER_LEN];
        let got = read_up_to(&mut input, &mut header)?;
        if got < FILE_HEADER_LEN {
            return Err(PcapError::TruncatedFileHeader { len: got });
        }
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        // The magic is written in the capturing host's byte order: if the
        // little-endian read comes out byte-swapped, every multi-byte
        // field in the file is big-endian.
        let swapped = match magic {
            MAGIC_USEC | MAGIC_NSEC => false,
            m if m.swap_bytes() == MAGIC_USEC || m.swap_bytes() == MAGIC_NSEC => true,
            _ => return Err(PcapError::BadMagic { magic }),
        };
        let field = |off: usize| {
            let b = [
                header[off],
                header[off + 1],
                header[off + 2],
                header[off + 3],
            ];
            if swapped {
                u32::from_be_bytes(b)
            } else {
                u32::from_le_bytes(b)
            }
        };
        let link = field(20);
        if link != LINK_ETHERNET && link != LINK_RAW_IP {
            return Err(PcapError::UnsupportedLinkType { link });
        }
        let snap_cap = (field(16) as usize).clamp(65_535, 1 << 26);
        Ok(PcapReader {
            input,
            pos: FILE_HEADER_LEN,
            swapped,
            link,
            snap_cap,
            chunk: DEFAULT_CHUNK,
            packets: 0,
            skipped: 0,
            poisoned: None,
            buf: Vec::new(),
        })
    }

    /// Sets the headers-per-event chunk size (clamped to at least 1).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The capture's link type (1 Ethernet, 101 raw IP).
    pub fn link_type(&self) -> u32 {
        self.link
    }

    /// Headers yielded so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Well-formed records skipped so far because they were not parsable
    /// IPv4 (ARP, IPv6, truncated-below-IP-header captures, ...).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    fn u32_in(&self, buf: &[u8], off: usize) -> u32 {
        let b = [buf[off], buf[off + 1], buf[off + 2], buf[off + 3]];
        if self.swapped {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        }
    }

    fn poison(&mut self, p: Poisoned) -> PcapError {
        self.poisoned = Some(p);
        p.to_error()
    }

    /// Advances to the next parsable IPv4 packet, or `None` at end of
    /// capture.
    fn next_packet(&mut self) -> Result<Option<Header>, PcapError> {
        if let Some(p) = self.poisoned {
            return Err(p.to_error());
        }
        loop {
            let record_offset = self.pos;
            let mut rec = [0u8; RECORD_HEADER_LEN];
            let got = match read_up_to(&mut self.input, &mut rec) {
                Ok(n) => n,
                Err(_) => return Err(self.poison(Poisoned::Io)),
            };
            self.pos += got;
            if got == 0 {
                return Ok(None); // clean end of capture
            }
            if got < RECORD_HEADER_LEN {
                return Err(self.poison(Poisoned::RecordHeader {
                    offset: record_offset,
                    have: got,
                }));
            }
            let incl_len = self.u32_in(&rec, 8) as usize;
            if incl_len > self.snap_cap {
                return Err(self.poison(Poisoned::Oversized {
                    offset: record_offset,
                    incl_len,
                    cap: self.snap_cap,
                }));
            }
            self.buf.resize(incl_len, 0);
            let got = match read_up_to(&mut self.input, &mut self.buf) {
                Ok(n) => n,
                Err(_) => return Err(self.poison(Poisoned::Io)),
            };
            self.pos += got;
            if got < incl_len {
                return Err(self.poison(Poisoned::PacketBody {
                    offset: record_offset,
                    need: incl_len,
                    have: got,
                }));
            }
            match parse_five_tuple(&self.buf, self.link) {
                Some(h) => {
                    self.packets += 1;
                    return Ok(Some(h));
                }
                None => self.skipped += 1,
            }
        }
    }
}

/// Reads until `buf` is full or the stream ends, returning how many
/// bytes landed — the partial-fill primitive distinguishing clean EOF
/// (0) from truncation (> 0 but short).
fn read_up_to(input: &mut dyn io::Read, buf: &mut [u8]) -> Result<usize, PcapError> {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(PcapError::Io(e)),
        }
    }
    Ok(filled)
}

impl TraceSource for PcapReader {
    fn next_event(&mut self) -> Result<Option<TraceEvent>, TraceError> {
        let mut chunk = Vec::with_capacity(self.chunk.min(4096));
        while chunk.len() < self.chunk {
            match self.next_packet()? {
                Some(h) => chunk.push(h),
                None => break,
            }
        }
        if chunk.is_empty() {
            Ok(None)
        } else {
            Ok(Some(TraceEvent::Headers(chunk)))
        }
    }
}

/// RFC 1071 ones'-complement checksum over the 20-byte IP header.
fn ipv4_checksum(header: &[u8; 20]) -> u16 {
    let mut sum = 0u32;
    for word in header.chunks(2) {
        sum += u32::from(u16::from_be_bytes([word[0], word[1]]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Streams [`Header`]s into a classic pcap capture (little-endian,
/// microsecond magic, raw-IP link type): each header becomes a 24-byte
/// packet — a 20-byte IPv4 header with a valid checksum followed by the
/// two port words — with monotonically increasing timestamps.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Bytes one header occupies in the capture body.
    const PACKET_LEN: u32 = 24;

    /// Wraps a writer and emits the pcap global header.
    ///
    /// # Errors
    ///
    /// [`PcapError::Io`] on write failure.
    pub fn new(mut w: W) -> Result<Self, PcapError> {
        w.write_all(&MAGIC_USEC.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&65_535u32.to_le_bytes())?; // snaplen
        w.write_all(&LINK_RAW_IP.to_le_bytes())?;
        Ok(PcapWriter { w, written: 0 })
    }

    /// Appends one header as a captured packet.
    ///
    /// # Errors
    ///
    /// [`PcapError::Io`] on write failure.
    pub fn write_header(&mut self, h: &Header) -> Result<(), PcapError> {
        let ts_sec = (self.written / 1_000_000) as u32;
        let ts_usec = (self.written % 1_000_000) as u32;
        self.w.write_all(&ts_sec.to_le_bytes())?;
        self.w.write_all(&ts_usec.to_le_bytes())?;
        self.w.write_all(&Self::PACKET_LEN.to_le_bytes())?; // incl_len
        self.w.write_all(&Self::PACKET_LEN.to_le_bytes())?; // orig_len

        let mut ip = [0u8; 20];
        ip[0] = 0x45; // version 4, IHL 5
        ip[2..4].copy_from_slice(&(Self::PACKET_LEN as u16).to_be_bytes());
        ip[8] = 64; // TTL
        ip[9] = h.proto;
        ip[12..16].copy_from_slice(&h.src_ip.0.to_be_bytes());
        ip[16..20].copy_from_slice(&h.dst_ip.0.to_be_bytes());
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        self.w.write_all(&ip)?;
        self.w.write_all(&h.src_port.to_be_bytes())?;
        self.w.write_all(&h.dst_port.to_be_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Headers written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// [`PcapError::Io`] on flush failure.
    pub fn finish(mut self) -> Result<W, PcapError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// One-shot convenience: writes `headers` to a pcap file at `path`,
/// returning how many packets were written.
///
/// # Errors
///
/// [`PcapError::Io`] on filesystem failure.
pub fn write_pcap<P, I>(path: P, headers: I) -> Result<u64, PcapError>
where
    P: AsRef<Path>,
    I: IntoIterator<Item = Header>,
{
    let file = fs::File::create(path)?;
    let mut w = PcapWriter::new(io::BufWriter::new(file))?;
    for h in headers {
        w.write_header(&h)?;
    }
    let n = w.written();
    w.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterKind, RuleSetGenerator, TraceGenerator};

    fn sample_trace(len: usize) -> Vec<Header> {
        let rules = RuleSetGenerator::new(FilterKind::Fw, 150)
            .seed(21)
            .generate();
        // locality + background traffic: repeats, odd protocols, random
        // ports on non-port protocols — all must round-trip.
        TraceGenerator::new()
            .seed(5)
            .match_fraction(0.7)
            .locality(0.3)
            .generate(&rules, len)
    }

    fn to_bytes(trace: &[Header]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for h in trace {
            w.write_header(h).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_in_memory_equals_trace() {
        let trace = sample_trace(300);
        let bytes = to_bytes(&trace);
        assert_eq!(bytes.len(), FILE_HEADER_LEN + trace.len() * (16 + 24));
        let mut reader = PcapReader::from_bytes(bytes).unwrap().with_chunk(64);
        assert_eq!(reader.link_type(), LINK_RAW_IP);
        let mut got = Vec::new();
        while let Some(ev) = reader.next_event().unwrap() {
            match ev {
                TraceEvent::Headers(h) => {
                    assert!(h.len() <= 64);
                    got.extend(h);
                }
                other => panic!("pcap sources emit headers only: {other:?}"),
            }
        }
        assert_eq!(got, trace);
        assert_eq!(reader.packets(), trace.len() as u64);
        assert_eq!(reader.skipped(), 0);
    }

    #[test]
    fn roundtrip_through_a_file() {
        let trace = sample_trace(64);
        let path = std::env::temp_dir().join(format!("spc_pcap_test_{}.pcap", std::process::id()));
        let n = write_pcap(&path, trace.iter().copied()).unwrap();
        assert_eq!(n, 64);
        let got = PcapReader::open(&path).unwrap().collect_headers().unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(got, trace);
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let e = PcapReader::open("/nonexistent/spc.pcap").unwrap_err();
        assert!(matches!(e, PcapError::Io(_)), "{e}");
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = to_bytes(&sample_trace(2));
        bytes[0..4].copy_from_slice(&0xfeed_beefu32.to_le_bytes());
        let e = PcapReader::from_bytes(bytes).unwrap_err();
        assert!(
            matches!(e, PcapError::BadMagic { magic: 0xfeed_beef }),
            "{e}"
        );
    }

    #[test]
    fn short_file_header_is_typed() {
        let bytes = to_bytes(&sample_trace(1));
        let e = PcapReader::from_bytes(bytes[..10].to_vec()).unwrap_err();
        assert!(
            matches!(e, PcapError::TruncatedFileHeader { len: 10 }),
            "{e}"
        );
    }

    #[test]
    fn unsupported_link_type_is_typed() {
        let mut bytes = to_bytes(&sample_trace(1));
        bytes[20..24].copy_from_slice(&228u32.to_le_bytes()); // LINKTYPE_IPV4
        let e = PcapReader::from_bytes(bytes).unwrap_err();
        assert!(
            matches!(e, PcapError::UnsupportedLinkType { link: 228 }),
            "{e}"
        );
    }

    #[test]
    fn truncated_record_header_is_typed() {
        let bytes = to_bytes(&sample_trace(3));
        // Cut inside the third record's 16-byte header.
        let cut = FILE_HEADER_LEN + 2 * (16 + 24) + 7;
        let mut reader = PcapReader::from_bytes(bytes[..cut].to_vec()).unwrap();
        let mut seen = 0;
        let e = loop {
            match reader.next_packet() {
                Ok(Some(_)) => seen += 1,
                Ok(None) => panic!("truncation must not read as end of capture"),
                Err(e) => break e,
            }
        };
        assert_eq!(seen, 2, "the intact records still replay");
        assert!(
            matches!(
                e,
                PcapError::TruncatedRecordHeader { offset, have: 7 }
                    if offset == FILE_HEADER_LEN + 2 * 40
            ),
            "{e}"
        );
    }

    #[test]
    fn truncated_packet_body_is_typed() {
        let bytes = to_bytes(&sample_trace(2));
        // Cut inside the second record's 24-byte body.
        let cut = FILE_HEADER_LEN + 40 + 16 + 5;
        let mut reader = PcapReader::from_bytes(bytes[..cut].to_vec()).unwrap();
        assert!(reader.next_packet().unwrap().is_some());
        let e = reader.next_packet().unwrap_err();
        assert!(
            matches!(
                e,
                PcapError::TruncatedPacketBody {
                    need: 24,
                    have: 5,
                    ..
                }
            ),
            "{e}"
        );
        // The error is sticky state-wise: the reader does not advance
        // past the damage and reports it again.
        assert!(matches!(
            reader.next_packet().unwrap_err(),
            PcapError::TruncatedPacketBody { .. }
        ));
    }

    #[test]
    fn big_endian_and_nanosecond_captures_replay() {
        let trace = sample_trace(5);
        let le = to_bytes(&trace);

        // Rewrite the whole capture big-endian (every header field
        // byte-swapped; packet bodies stay network order).
        let mut be = Vec::with_capacity(le.len());
        for off in (0..FILE_HEADER_LEN).step_by(4) {
            // magic/thiszone/sigfigs/snaplen/network are u32s; the two
            // u16 versions at offset 4 swap within their own width.
            if off == 4 {
                be.extend_from_slice(&[le[5], le[4], le[7], le[6]]);
            } else {
                be.extend_from_slice(&[le[off + 3], le[off + 2], le[off + 1], le[off]]);
            }
        }
        let mut pos = FILE_HEADER_LEN;
        while pos < le.len() {
            for field in 0..4 {
                let f = pos + field * 4;
                be.extend_from_slice(&[le[f + 3], le[f + 2], le[f + 1], le[f]]);
            }
            be.extend_from_slice(&le[pos + 16..pos + 40]);
            pos += 40;
        }
        let got = PcapReader::from_bytes(be)
            .unwrap()
            .collect_headers()
            .unwrap();
        assert_eq!(got, trace, "byte-swapped capture must replay identically");

        // Nanosecond magic: same layout, different magic.
        let mut ns = le.clone();
        ns[0..4].copy_from_slice(&MAGIC_NSEC.to_le_bytes());
        let got = PcapReader::from_bytes(ns)
            .unwrap()
            .collect_headers()
            .unwrap();
        assert_eq!(got, trace);
    }

    /// Hand-rolls an Ethernet-linktype capture: plain, VLAN-tagged and
    /// non-IP frames, plus a snap-length capture that cut the ports off.
    #[test]
    fn ethernet_frames_vlan_and_skips() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&LINK_ETHERNET.to_le_bytes());

        let ip_body = |h: &Header, with_ports: bool| {
            let mut ip = vec![0u8; 20];
            ip[0] = 0x45;
            ip[9] = h.proto;
            ip[12..16].copy_from_slice(&h.src_ip.0.to_be_bytes());
            ip[16..20].copy_from_slice(&h.dst_ip.0.to_be_bytes());
            if with_ports {
                ip.extend_from_slice(&h.src_port.to_be_bytes());
                ip.extend_from_slice(&h.dst_port.to_be_bytes());
            }
            ip
        };
        let mut record = |payload: &[u8]| {
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
        };

        let a = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 1000, 80, 6);
        let b = Header::new([9, 9, 9, 9].into(), [8, 8, 8, 8].into(), 53, 53, 17);
        let c = Header::new([4, 4, 4, 4].into(), [3, 3, 3, 3].into(), 0, 0, 50);

        // Plain Ethernet + IPv4 + TCP.
        let mut frame = vec![0u8; 12];
        frame.extend_from_slice(&0x0800u16.to_be_bytes());
        frame.extend_from_slice(&ip_body(&a, true));
        record(&frame);
        // ARP frame: well-formed, not IP -> skipped.
        let mut arp = vec![0u8; 12];
        arp.extend_from_slice(&0x0806u16.to_be_bytes());
        arp.extend_from_slice(&[0u8; 28]);
        record(&arp);
        // VLAN-tagged IPv4 + UDP.
        let mut vlan = vec![0u8; 12];
        vlan.extend_from_slice(&0x8100u16.to_be_bytes());
        vlan.extend_from_slice(&7u16.to_be_bytes()); // VLAN id
        vlan.extend_from_slice(&0x0800u16.to_be_bytes());
        vlan.extend_from_slice(&ip_body(&b, true));
        record(&vlan);
        // Runt frame (shorter than an Ethernet header) -> skipped.
        record(&[0u8; 6]);
        // ESP-ish packet snapped right after the IP header: ports read
        // as 0, which is what header `c` carries.
        let mut esp = vec![0u8; 12];
        esp.extend_from_slice(&0x0800u16.to_be_bytes());
        esp.extend_from_slice(&ip_body(&c, false));
        record(&esp);

        let mut reader = PcapReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.link_type(), LINK_ETHERNET);
        let got = {
            let mut out = Vec::new();
            while let Some(h) = reader.next_packet().unwrap() {
                out.push(h);
            }
            out
        };
        assert_eq!(got, vec![a, b, c]);
        assert_eq!(reader.skipped(), 2, "ARP + runt");
    }

    #[test]
    fn non_first_fragments_read_ports_as_zero() {
        // A fragmented UDP datagram: the first fragment carries the real
        // transport header, the second carries mid-payload bytes where
        // ports would be — which must NOT be read as ports.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&LINK_RAW_IP.to_le_bytes());
        let mut record = |frag_field: u16, after_header: [u8; 4]| {
            let mut ip = [0u8; 24];
            ip[0] = 0x45;
            ip[6..8].copy_from_slice(&frag_field.to_be_bytes());
            ip[9] = 17;
            ip[12..16].copy_from_slice(&[10, 0, 0, 1]);
            ip[16..20].copy_from_slice(&[10, 0, 0, 2]);
            ip[20..24].copy_from_slice(&after_header);
            bytes.extend_from_slice(&[0u8; 8]);
            bytes.extend_from_slice(&24u32.to_le_bytes());
            bytes.extend_from_slice(&24u32.to_le_bytes());
            bytes.extend_from_slice(&ip);
        };
        // First fragment (MF set, offset 0): real ports 53 -> 8080.
        record(0x2000, {
            let mut b = [0u8; 4];
            b[0..2].copy_from_slice(&53u16.to_be_bytes());
            b[2..4].copy_from_slice(&8080u16.to_be_bytes());
            b
        });
        // Second fragment (offset 185): payload bytes that would decode
        // as garbage ports.
        record(185, [0xde, 0xad, 0xbe, 0xef]);
        let got = PcapReader::from_bytes(bytes)
            .unwrap()
            .collect_headers()
            .unwrap();
        assert_eq!((got[0].src_port, got[0].dst_port), (53, 8080));
        assert_eq!(
            (got[1].src_port, got[1].dst_port),
            (0, 0),
            "mid-payload bytes must not be read as ports"
        );
    }

    #[test]
    fn oversized_incl_len_is_typed_not_an_allocation() {
        let mut bytes = to_bytes(&sample_trace(1));
        // Corrupt the first record's incl_len to 4 GiB - 1.
        bytes[FILE_HEADER_LEN + 8..FILE_HEADER_LEN + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = PcapReader::from_bytes(bytes).unwrap();
        let e = reader.next_packet().unwrap_err();
        assert!(
            matches!(
                e,
                PcapError::OversizedPacket {
                    incl_len, cap: 65_535, ..
                } if incl_len == u32::MAX as usize
            ),
            "{e}"
        );
        // Poisoned: the damage is re-reported, not skipped past.
        assert!(matches!(
            reader.next_packet().unwrap_err(),
            PcapError::OversizedPacket { .. }
        ));
    }

    #[test]
    fn empty_capture_is_an_empty_source() {
        let bytes = to_bytes(&[]);
        let mut reader = PcapReader::from_bytes(bytes).unwrap();
        assert!(reader.next_event().unwrap().is_none());
        assert_eq!(reader.packets(), 0);
    }

    #[test]
    fn checksum_is_valid() {
        // Recompute over the emitted header with its checksum field
        // zeroed; inserting the stored checksum must verify to 0.
        let bytes = to_bytes(&sample_trace(1));
        let ip = &bytes[FILE_HEADER_LEN + 16..FILE_HEADER_LEN + 36];
        let mut sum = 0u32;
        for w in ip.chunks(2) {
            sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
        }
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        assert_eq!(sum, 0xffff, "ones'-complement sum over a valid header");
    }

    #[test]
    fn error_display_is_informative() {
        for (e, needle) in [
            (PcapError::BadMagic { magic: 1 }, "magic"),
            (PcapError::TruncatedFileHeader { len: 3 }, "global header"),
            (PcapError::UnsupportedLinkType { link: 9 }, "link type 9"),
            (
                PcapError::TruncatedRecordHeader {
                    offset: 24,
                    have: 2,
                },
                "record header",
            ),
            (
                PcapError::TruncatedPacketBody {
                    offset: 24,
                    need: 9,
                    have: 2,
                },
                "declares 9",
            ),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
