//! Rule-set generation for the three ClassBench filter families.

use crate::pools::{choose_weighted, PortPool, PortShape, PrefixPool, ProtoPool};
use rand::prelude::*;
use rand::rngs::StdRng;
use spc_types::{Action, Priority, ProtoSpec, Rule, RuleSet};
use std::collections::HashSet;
use std::fmt;

/// The three filter-set families of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// Access Control List (router `acl1`-style): long source prefixes,
    /// wildcard source port, ~100 destination ports, 3 protocols.
    Acl,
    /// Firewall: wildcard-heavy prefixes, ranges on both ports, more
    /// protocols.
    Fw,
    /// IP Chains: balanced prefix pairs, exact-port heavy.
    Ipc,
}

impl fmt::Display for FilterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterKind::Acl => f.write_str("acl1"),
            FilterKind::Fw => f.write_str("fw1"),
            FilterKind::Ipc => f.write_str("ipc1"),
        }
    }
}

/// Seeded generator of ClassBench-style rule sets (builder pattern).
///
/// `size` is the number of *candidate* rules drawn; exact duplicates are
/// removed afterwards, so the produced set is slightly smaller — just like
/// the paper's "1K" set holding 916 rules (Table III).
///
/// ```
/// use spc_classbench::{RuleSetGenerator, FilterKind};
/// let rs = RuleSetGenerator::new(FilterKind::Fw, 500).seed(9).generate();
/// assert!(rs.len() > 350 && rs.len() <= 500);
/// ```
#[derive(Debug, Clone)]
pub struct RuleSetGenerator {
    kind: FilterKind,
    size: usize,
    seed: u64,
}

impl RuleSetGenerator {
    /// Creates a generator for `size` candidate rules of the given family.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(kind: FilterKind, size: usize) -> Self {
        assert!(size > 0, "rule set size must be positive");
        RuleSetGenerator {
            kind,
            size,
            seed: 1,
        }
    }

    /// Sets the RNG seed (default 1). Same seed ⇒ identical output.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the rule set.
    pub fn generate(&self) -> RuleSet {
        let mut rng = StdRng::seed_from_u64(self.seed ^ kind_salt(self.kind));
        let n = self.size;
        let (src_pool, dst_pool, sport_pool, dport_pool, proto_pool) = match self.kind {
            FilterKind::Acl => (
                // Source prefixes: the pool grows superlinearly with scale,
                // reproducing Table II's 103 → 805 → 4784 unique counts
                // (acl1's larger sets add mostly fresh host prefixes).
                PrefixPool::generate(
                    &mut rng,
                    (n * n / 18_000).max(100),
                    &[
                        (32, 32, 0.45),
                        (28, 31, 0.15),
                        (24, 27, 0.25),
                        (16, 23, 0.15),
                    ],
                    0.35,
                    0.0,
                    0.75,
                ),
                // Destination prefixes: saturating pool (Table II: 297/640/733).
                PrefixPool::generate(
                    &mut rng,
                    760,
                    &[(32, 32, 0.25), (24, 31, 0.4), (16, 23, 0.25), (8, 15, 0.1)],
                    0.35,
                    0.02,
                    0.9,
                ),
                PortPool::generate(&mut rng, PortShape::AlwaysAny, 1.0),
                PortPool::generate(
                    &mut rng,
                    PortShape::Mixed {
                        pool: 112,
                        range_frac: 0.18,
                    },
                    0.9,
                ),
                ProtoPool::new(vec![
                    (ProtoSpec::Exact(6), 0.70),
                    (ProtoSpec::Exact(17), 0.25),
                    (ProtoSpec::Any, 0.05),
                ]),
            ),
            FilterKind::Fw => (
                PrefixPool::generate(
                    &mut rng,
                    (n / 3).max(50),
                    &[(32, 32, 0.3), (24, 31, 0.25), (16, 23, 0.25), (0, 15, 0.2)],
                    0.3,
                    0.06,
                    0.85,
                ),
                PrefixPool::generate(
                    &mut rng,
                    (n / 3).max(50),
                    &[(32, 32, 0.3), (24, 31, 0.25), (16, 23, 0.25), (0, 15, 0.2)],
                    0.3,
                    0.06,
                    0.85,
                ),
                PortPool::generate(
                    &mut rng,
                    PortShape::Mixed {
                        pool: 90,
                        range_frac: 0.45,
                    },
                    0.8,
                ),
                PortPool::generate(
                    &mut rng,
                    PortShape::Mixed {
                        pool: 140,
                        range_frac: 0.45,
                    },
                    0.8,
                ),
                ProtoPool::new(vec![
                    (ProtoSpec::Exact(6), 0.55),
                    (ProtoSpec::Exact(17), 0.25),
                    (ProtoSpec::Exact(1), 0.08),
                    (ProtoSpec::Exact(47), 0.04),
                    (ProtoSpec::Exact(50), 0.03),
                    (ProtoSpec::Any, 0.05),
                ]),
            ),
            FilterKind::Ipc => (
                PrefixPool::generate(
                    &mut rng,
                    (n / 2).max(60),
                    &[(32, 32, 0.4), (24, 31, 0.3), (16, 23, 0.2), (8, 15, 0.1)],
                    0.3,
                    0.03,
                    0.8,
                ),
                PrefixPool::generate(
                    &mut rng,
                    (n / 2).max(60),
                    &[(32, 32, 0.4), (24, 31, 0.3), (16, 23, 0.2), (8, 15, 0.1)],
                    0.3,
                    0.03,
                    0.8,
                ),
                PortPool::generate(
                    &mut rng,
                    PortShape::Mixed {
                        pool: 60,
                        range_frac: 0.12,
                    },
                    0.9,
                ),
                PortPool::generate(
                    &mut rng,
                    PortShape::Mixed {
                        pool: 120,
                        range_frac: 0.12,
                    },
                    0.9,
                ),
                ProtoPool::new(vec![
                    (ProtoSpec::Exact(6), 0.6),
                    (ProtoSpec::Exact(17), 0.3),
                    (ProtoSpec::Any, 0.1),
                ]),
            ),
        };

        let actions: [(Action, f64); 4] = [
            (Action::Drop, 0.45),
            (Action::Forward(1), 0.3),
            (Action::Forward(2), 0.15),
            (Action::ToController, 0.1),
        ];

        let mut seen: HashSet<(u64, u64, u32, u32, u8)> = HashSet::with_capacity(n);
        let mut rules = Vec::with_capacity(n);
        for _ in 0..n {
            let src_ip = src_pool.sample(&mut rng);
            let dst_ip = dst_pool.sample(&mut rng);
            let src_port = sport_pool.sample(&mut rng);
            let dst_port = dport_pool.sample(&mut rng);
            let proto = proto_pool.sample(&mut rng);
            let key = (
                (u64::from(src_ip.value()) << 8) | u64::from(src_ip.len()),
                (u64::from(dst_ip.value()) << 8) | u64::from(dst_ip.len()),
                (u32::from(src_port.lo()) << 16) | u32::from(src_port.hi()),
                (u32::from(dst_port.lo()) << 16) | u32::from(dst_port.hi()),
                match proto {
                    ProtoSpec::Any => 0xff,
                    ProtoSpec::Exact(v) => v,
                },
            );
            if !seen.insert(key) {
                continue; // duplicate 5-tuple: ClassBench-style redundancy removal
            }
            let action = *choose_weighted(&mut rng, &actions);
            rules.push(
                Rule::builder(Priority(0))
                    .src_ip(src_ip)
                    .dst_ip(dst_ip)
                    .src_port(src_port)
                    .dst_port(dst_port)
                    .proto(proto)
                    .action(action)
                    .build(),
            );
        }
        RuleSet::from_rules_reprioritized(rules)
    }
}

fn kind_salt(kind: FilterKind) -> u64 {
    match kind {
        FilterKind::Acl => 0xac1_0000,
        FilterKind::Fw => 0xf0f0_1111,
        FilterKind::Ipc => 0x1bc_2222,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Dim;

    #[test]
    fn deterministic_per_seed() {
        let a = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(5)
            .generate();
        let b = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(5)
            .generate();
        let c = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(6)
            .generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_differ() {
        let a = RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(5)
            .generate();
        let f = RuleSetGenerator::new(FilterKind::Fw, 300)
            .seed(5)
            .generate();
        assert_ne!(a, f);
    }

    #[test]
    fn dedup_keeps_size_close() {
        for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
            let rs = RuleSetGenerator::new(kind, 1000).seed(1).generate();
            assert!(
                rs.len() > 780 && rs.len() <= 1000,
                "{kind}: unexpected size {}",
                rs.len()
            );
        }
    }

    #[test]
    fn acl_profile_matches_table_ii_shape() {
        let rs = RuleSetGenerator::new(FilterKind::Acl, 1000)
            .seed(1)
            .generate();
        let u = rs.unique_field_counts();
        // Table II acl1-1K: src 103, dst 297, sport 1, dport 99, proto 3.
        assert_eq!(u.src_port, 1, "ACL source port must be wildcard-only");
        assert_eq!(u.proto, 3);
        assert!(u.src_ip < rs.len() / 2, "src uniques {} too high", u.src_ip);
        assert!((40..=450).contains(&u.dst_ip), "dst uniques {}", u.dst_ip);
        assert!(
            (40..=112).contains(&u.dst_port),
            "dport uniques {}",
            u.dst_port
        );
    }

    #[test]
    fn acl_unique_growth_with_scale() {
        let u1 = RuleSetGenerator::new(FilterKind::Acl, 1000)
            .seed(1)
            .generate();
        let u10 = RuleSetGenerator::new(FilterKind::Acl, 10000)
            .seed(1)
            .generate();
        let a = u1.unique_field_counts();
        let b = u10.unique_field_counts();
        assert!(
            b.src_ip > 3 * a.src_ip,
            "src uniques should grow: {} -> {}",
            a.src_ip,
            b.src_ip
        );
        // Destination pool saturates.
        assert!(
            b.dst_ip < 800,
            "dst uniques should saturate, got {}",
            b.dst_ip
        );
    }

    #[test]
    fn priorities_are_positional() {
        let rs = RuleSetGenerator::new(FilterKind::Ipc, 100)
            .seed(2)
            .generate();
        for (i, r) in rs.rules().iter().enumerate() {
            assert_eq!(r.priority, Priority(i as u32));
        }
    }

    #[test]
    fn segment_dims_have_wildcard_label_sources() {
        // Short prefixes must produce wildcard low segments — the segmented
        // label method depends on this.
        let rs = RuleSetGenerator::new(FilterKind::Fw, 500)
            .seed(3)
            .generate();
        let any_lo = rs
            .rules()
            .iter()
            .any(|r| matches!(r.dim_value(Dim::SipLo), spc_types::DimValue::Seg(s) if s.is_any()));
        assert!(any_lo);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = RuleSetGenerator::new(FilterKind::Acl, 0);
    }
}
