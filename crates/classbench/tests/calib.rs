//! Manual calibration harness: prints generated-family statistics for
//! eyeballing against the paper's Table II (run with `--ignored`).

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

#[test]
#[ignore]
fn calib() {
    for (n, seed) in [(1000usize, 1u64), (5000, 1), (10000, 1)] {
        let rs = spc_classbench::RuleSetGenerator::new(spc_classbench::FilterKind::Acl, n)
            .seed(seed)
            .generate();
        let st = spc_classbench::ruleset_stats(&format!("acl1 {n}"), &rs);
        println!("{st}");
    }
}
