//! Manual calibration harness: prints generated-family statistics for
//! eyeballing against the paper's Table II (run with `--ignored`).

#[test]
#[ignore]
fn calib() {
    for (n, seed) in [(1000usize, 1u64), (5000, 1), (10000, 1)] {
        let rs = spc_classbench::RuleSetGenerator::new(spc_classbench::FilterKind::Acl, n)
            .seed(seed)
            .generate();
        let st = spc_classbench::ruleset_stats(&format!("acl1 {n}"), &rs);
        println!("{st}");
    }
}
