//! Recursive Flow Classification (Gupta & McKeown, SIGCOMM 1999; paper
//! reference \[3\]).
//!
//! RFC precomputes, for every 16-bit header chunk, a table mapping chunk
//! values to *equivalence class* ids, then crossproducts the ids through a
//! reduction tree until a single id indexes the final action. Lookups are
//! a fixed, small number of table reads — the fastest software scheme the
//! paper compares — but the crossproduct tables explode in memory
//! (Table I: 31.48 Mb versus HyperCuts' 5.96 Mb), which is exactly the
//! behaviour this implementation reproduces and measures.

use crate::{Baseline, BaselineResult};
use spc_types::{Header, ProtoSpec, RuleId, RuleSet};
use std::collections::HashMap;
use std::fmt;

/// Rule membership bitset.
type BitSet = Vec<u64>;

fn bitset_and(a: &BitSet, b: &BitSet) -> BitSet {
    a.iter().zip(b).map(|(x, y)| x & y).collect()
}

/// Error from RFC preprocessing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RfcError {
    /// A crossproduct table would exceed the configured entry budget —
    /// RFC's memory explosion, surfaced instead of thrashing.
    TableTooLarge {
        /// The phase table that overflowed.
        table: &'static str,
        /// Entries it would need.
        entries: u64,
        /// The configured cap.
        cap: u64,
    },
}

impl fmt::Display for RfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfcError::TableTooLarge {
                table,
                entries,
                cap,
            } => write!(
                f,
                "rfc phase table {table} needs {entries} entries, exceeding the {cap} cap"
            ),
        }
    }
}

impl std::error::Error for RfcError {}

/// One chunk/phase table: value (or id pair) → class id, plus the class
/// bitsets feeding the next phase.
#[derive(Debug)]
struct EqTable {
    entries: Vec<u32>,
    classes: Vec<BitSet>,
}

impl EqTable {
    fn id_bits(&self) -> u64 {
        u64::from(
            (self.classes.len().max(2) as u64)
                .next_power_of_two()
                .trailing_zeros(),
        )
    }

    fn memory_bits(&self) -> u64 {
        self.entries.len() as u64 * self.id_bits()
    }
}

/// The seven 16-bit chunks (protocol padded to 8 bits of index space).
const CHUNK_SPACE: [usize; 7] = [1 << 16, 1 << 16, 1 << 16, 1 << 16, 1 << 16, 1 << 16, 1 << 8];

/// The RFC classifier.
///
/// ```
/// use spc_baselines::{Rfc, Baseline};
/// use spc_types::{Rule, RuleSet, Priority, Header, PortRange};
/// let rs = RuleSet::from_rules(vec![
///     Rule::builder(Priority(0)).dst_port(PortRange::exact(80)).build(),
/// ]);
/// let rfc = Rfc::build(&rs, 1 << 24).unwrap();
/// let hit = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1, 80, 6);
/// assert_eq!(rfc.classify(&hit).rule.unwrap().0, 0);
/// assert_eq!(rfc.classify(&hit).accesses, 13);
/// ```
#[derive(Debug)]
pub struct Rfc {
    phase0: Vec<EqTable>, // 7 chunk tables
    table_a: EqTable,     // (sip_hi, sip_lo)
    table_b: EqTable,     // (dip_hi, dip_lo)
    table_c: EqTable,     // (sport, dport)
    table_d: EqTable,     // (A, B)
    table_e: EqTable,     // (C, proto)
    table_f: EqTable,     // (D, E) final
    final_rules: Vec<Option<RuleId>>,
}

impl Rfc {
    /// Preprocesses a rule set. `entry_cap` bounds any single phase table.
    ///
    /// # Errors
    ///
    /// [`RfcError::TableTooLarge`] when a crossproduct exceeds the cap.
    pub fn build(rules: &RuleSet, entry_cap: u64) -> Result<Self, RfcError> {
        let words = rules.len().div_ceil(64).max(1);
        // Phase 0: per-chunk elementary-interval sweep.
        let mut phase0 = Vec::with_capacity(7);
        for chunk in 0..7 {
            phase0.push(Self::build_chunk(rules, chunk, words));
        }
        let combine = |x: &EqTable, y: &EqTable, name: &'static str| -> Result<EqTable, RfcError> {
            let entries = x.classes.len() as u64 * y.classes.len() as u64;
            if entries > entry_cap {
                return Err(RfcError::TableTooLarge {
                    table: name,
                    entries,
                    cap: entry_cap,
                });
            }
            let mut table = Vec::with_capacity(entries as usize);
            let mut ids: HashMap<BitSet, u32> = HashMap::new();
            let mut classes: Vec<BitSet> = Vec::new();
            for cx in &x.classes {
                for cy in &y.classes {
                    let inter = bitset_and(cx, cy);
                    let id = *ids.entry(inter.clone()).or_insert_with(|| {
                        classes.push(inter);
                        classes.len() as u32 - 1
                    });
                    table.push(id);
                }
            }
            Ok(EqTable {
                entries: table,
                classes,
            })
        };
        let table_a = combine(&phase0[0], &phase0[1], "A(sip)")?;
        let table_b = combine(&phase0[2], &phase0[3], "B(dip)")?;
        let table_c = combine(&phase0[4], &phase0[5], "C(ports)")?;
        let table_d = combine(&table_a, &table_b, "D(sip,dip)")?;
        let table_e = combine(&table_c, &phase0[6], "E(ports,proto)")?;
        let table_f = combine(&table_d, &table_e, "F(final)")?;
        // Final classes -> HPMR.
        let by_priority: Vec<(RuleId, spc_types::Priority)> =
            rules.iter().map(|(id, r)| (id, r.priority)).collect();
        let final_rules = table_f
            .classes
            .iter()
            .map(|set| {
                let mut best: Option<(spc_types::Priority, RuleId)> = None;
                for (i, (id, p)) in by_priority.iter().enumerate() {
                    if set[i / 64] >> (i % 64) & 1 == 1 {
                        let cand = (*p, *id);
                        if best.map_or(true, |b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
                best.map(|(_, id)| id)
            })
            .collect();
        Ok(Rfc {
            phase0,
            table_a,
            table_b,
            table_c,
            table_d,
            table_e,
            table_f,
            final_rules,
        })
    }

    fn build_chunk(rules: &RuleSet, chunk: usize, words: usize) -> EqTable {
        let space = CHUNK_SPACE[chunk];
        // Projected inclusive ranges per rule.
        let ranges: Vec<(usize, usize)> = rules
            .iter()
            .map(|(_, r)| match chunk {
                0 => {
                    let s = r.src_ip.segments().0;
                    (usize::from(s.first()), usize::from(s.last()))
                }
                1 => {
                    let s = r.src_ip.segments().1;
                    (usize::from(s.first()), usize::from(s.last()))
                }
                2 => {
                    let s = r.dst_ip.segments().0;
                    (usize::from(s.first()), usize::from(s.last()))
                }
                3 => {
                    let s = r.dst_ip.segments().1;
                    (usize::from(s.first()), usize::from(s.last()))
                }
                4 => (usize::from(r.src_port.lo()), usize::from(r.src_port.hi())),
                5 => (usize::from(r.dst_port.lo()), usize::from(r.dst_port.hi())),
                _ => match r.proto {
                    ProtoSpec::Any => (0, 255),
                    ProtoSpec::Exact(v) => (usize::from(v), usize::from(v)),
                },
            })
            .collect();
        // Elementary boundaries.
        let mut bounds: Vec<usize> = vec![0];
        for &(lo, hi) in &ranges {
            bounds.push(lo);
            bounds.push(hi + 1);
        }
        bounds.retain(|b| *b < space);
        bounds.sort_unstable();
        bounds.dedup();
        let mut entries = vec![0u32; space];
        let mut ids: HashMap<BitSet, u32> = HashMap::new();
        let mut classes: Vec<BitSet> = Vec::new();
        for (bi, &start) in bounds.iter().enumerate() {
            let end = bounds.get(bi + 1).copied().unwrap_or(space) - 1;
            let mut set = vec![0u64; words];
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                if lo <= start && end <= hi {
                    set[i / 64] |= 1 << (i % 64);
                }
            }
            let id = *ids.entry(set.clone()).or_insert_with(|| {
                classes.push(set);
                classes.len() as u32 - 1
            });
            for e in entries.iter_mut().take(end + 1).skip(start) {
                *e = id;
            }
        }
        if classes.is_empty() {
            classes.push(vec![0u64; words]);
        }
        EqTable { entries, classes }
    }

    /// Distinct final equivalence classes.
    pub fn final_classes(&self) -> usize {
        self.table_f.classes.len()
    }
}

impl Baseline for Rfc {
    fn name(&self) -> &'static str {
        "RFC"
    }

    fn classify(&self, h: &Header) -> BaselineResult {
        let v = [
            usize::from(h.sip_hi()),
            usize::from(h.sip_lo()),
            usize::from(h.dip_hi()),
            usize::from(h.dip_lo()),
            usize::from(h.src_port),
            usize::from(h.dst_port),
            usize::from(h.proto),
        ];
        let c: Vec<usize> = (0..7)
            .map(|i| self.phase0[i].entries[v[i]] as usize)
            .collect();
        let a = self.table_a.entries[c[0] * self.phase0[1].classes.len() + c[1]] as usize;
        let b = self.table_b.entries[c[2] * self.phase0[3].classes.len() + c[3]] as usize;
        let cc = self.table_c.entries[c[4] * self.phase0[5].classes.len() + c[5]] as usize;
        let d = self.table_d.entries[a * self.table_b.classes.len() + b] as usize;
        let e = self.table_e.entries[cc * self.phase0[6].classes.len() + c[6]] as usize;
        let f = self.table_f.entries[d * self.table_e.classes.len() + e] as usize;
        // 7 phase-0 reads + 3 phase-1 + 2 phase-2 + 1 phase-3.
        BaselineResult {
            rule: self.final_rules[f],
            accesses: 13,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.phase0.iter().map(EqTable::memory_bits).sum::<u64>()
            + self.table_a.memory_bits()
            + self.table_b.memory_bits()
            + self.table_c.memory_bits()
            + self.table_d.memory_bits()
            + self.table_e.memory_bits()
            + self.table_f.memory_bits()
            + self.final_rules.len() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fw_set, small_set, trace};
    use crate::LinearSearch;

    #[test]
    fn agrees_with_oracle_acl() {
        let rs = small_set();
        let rfc = Rfc::build(&rs, 1 << 26).unwrap();
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(rfc.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn agrees_with_oracle_fw() {
        let rs = fw_set();
        let rfc = Rfc::build(&rs, 1 << 26).unwrap();
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(rfc.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn fixed_access_count() {
        let rs = small_set();
        let rfc = Rfc::build(&rs, 1 << 26).unwrap();
        for h in trace(&rs, 20) {
            assert_eq!(rfc.classify(&h).accesses, 13);
        }
    }

    #[test]
    fn memory_larger_than_linear() {
        // RFC's signature: memory explodes relative to the rule list.
        let rs = small_set();
        let rfc = Rfc::build(&rs, 1 << 26).unwrap();
        let ls = LinearSearch::build(&rs);
        assert!(rfc.memory_bits() > 10 * ls.memory_bits());
    }

    #[test]
    fn cap_enforced() {
        let rs = small_set();
        match Rfc::build(&rs, 64) {
            Err(RfcError::TableTooLarge { .. }) => {}
            other => panic!("expected table overflow, got {other:?}"),
        }
    }

    #[test]
    fn empty_ruleset() {
        let rs = RuleSet::new();
        let rfc = Rfc::build(&rs, 1 << 20).unwrap();
        assert!(rfc.classify(&Header::default()).rule.is_none());
    }
}
