//! Priority-ordered linear search — the semantic oracle.

use crate::{Baseline, BaselineResult};
use spc_types::{Header, Rule, RuleId, RuleSet};

/// Linear scan in priority order; first match is the HPMR by construction.
///
/// Used as the ground truth for every other classifier in the workspace,
/// and as the degenerate baseline in benchmark comparisons.
///
/// ```
/// use spc_baselines::{LinearSearch, Baseline};
/// use spc_types::{Rule, RuleSet, Priority, Header};
/// let rs = RuleSet::from_rules(vec![Rule::any(Priority(0))]);
/// let ls = LinearSearch::build(&rs);
/// let r = ls.classify(&Header::default());
/// assert!(r.rule.is_some());
/// assert_eq!(r.accesses, 3);
/// ```
#[derive(Debug, Clone)]
pub struct LinearSearch {
    /// (original id, rule), sorted by (priority, id).
    rules: Vec<(RuleId, Rule)>,
}

/// Bits to store one rule in a flat table (5-tuple + lengths + priority +
/// action; see `spc_core`'s Rule Filter word model).
const RULE_BITS: u64 = 152;

/// Memory words read to compare one rule (152 bits / 64-bit words).
pub(crate) const RULE_WORDS: u32 = 3;

impl LinearSearch {
    /// Builds the oracle from a rule set.
    pub fn build(rules: &RuleSet) -> Self {
        let mut v: Vec<(RuleId, Rule)> = rules.iter().map(|(id, r)| (id, *r)).collect();
        v.sort_by_key(|(id, r)| (r.priority, id.0));
        LinearSearch { rules: v }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl Baseline for LinearSearch {
    fn name(&self) -> &'static str {
        "LinearSearch"
    }

    fn classify(&self, h: &Header) -> BaselineResult {
        let mut accesses = 0;
        for (id, rule) in &self.rules {
            accesses += RULE_WORDS;
            if rule.matches(h) {
                return BaselineResult {
                    rule: Some(*id),
                    accesses,
                };
            }
        }
        BaselineResult {
            rule: None,
            accesses,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.rules.len() as u64 * RULE_BITS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_set, trace};

    #[test]
    fn agrees_with_ruleset_classify() {
        let rs = small_set();
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 200) {
            assert_eq!(ls.classify(&h).rule, rs.classify(&h).map(|(id, _)| id));
        }
    }

    #[test]
    fn accesses_bounded_by_len() {
        let rs = small_set();
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 50) {
            let r = ls.classify(&h);
            assert!(r.accesses as usize <= 3 * ls.len());
            assert!(r.accesses > 0);
        }
    }

    #[test]
    fn memory_is_linear() {
        let rs = small_set();
        let ls = LinearSearch::build(&rs);
        assert_eq!(ls.memory_bits(), rs.len() as u64 * 152);
    }
}
