//! Distributed Crossproducting of Field Labels (Taylor & Turner, INFOCOM
//! 2005; paper reference \[5\]).
//!
//! DCFL performs the five field lookups **in parallel**, each returning the
//! label set of matching unique field values, then joins the sets through
//! an *aggregation network* of hash tables holding the label combinations
//! that actually occur in the rule set. The paper credits DCFL with the
//! best lookup performance of the compared algorithms (Table I: 23.1
//! average accesses) while noting its memory utilisation is inefficient —
//! the aggregation tables are provisioned for combination worst cases,
//! which this implementation models with power-of-two overprovisioning.

use crate::{Baseline, BaselineResult};
use spc_lookup::{
    FieldEngine, Label, LabelEntry, LabelStore, MbtConfig, MultiBitTrie, ProtocolLut,
    SegTrieConfig, SegmentTrie,
};
use spc_types::{DimValue, Header, Priority, ProtoSpec, RuleId, RuleSet};
use std::collections::HashMap;

/// An aggregation-network hash table: (left label, right label) → meta
/// label, provisioned at 2× entries rounded up to a power of two.
#[derive(Debug, Default)]
struct AggTable {
    map: HashMap<(u32, u32), u32>,
}

impl AggTable {
    fn intern(&mut self, key: (u32, u32)) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(key).or_insert(next)
    }

    fn get(&self, key: (u32, u32)) -> Option<u32> {
        self.map.get(&key).copied()
    }

    fn memory_bits(&self) -> u64 {
        let slots = (self.map.len().max(1) * 2).next_power_of_two() as u64;
        // key (13 + 13) + meta label (16) + valid bit.
        slots * (13 + 13 + 16 + 1)
    }
}

/// The DCFL classifier (static build over a rule set).
///
/// ```
/// use spc_baselines::{Dcfl, Baseline};
/// use spc_types::{Rule, RuleSet, Priority, Header, PortRange, ProtoSpec};
/// let rs = RuleSet::from_rules(vec![
///     Rule::builder(Priority(0))
///         .dst_port(PortRange::exact(80))
///         .proto(ProtoSpec::Exact(6))
///         .build(),
/// ]);
/// let dcfl = Dcfl::build(&rs);
/// let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 7, 80, 6);
/// assert_eq!(dcfl.classify(&h).rule.unwrap().0, 0);
/// ```
#[derive(Debug)]
pub struct Dcfl {
    sip: MultiBitTrie,
    sip_store: LabelStore,
    dip: MultiBitTrie,
    dip_store: LabelStore,
    sport: SegmentTrie,
    sport_store: LabelStore,
    dport: SegmentTrie,
    dport_store: LabelStore,
    proto: ProtocolLut,
    proto_store: LabelStore,
    ag1: AggTable, // (sip, dip)
    ag2: AggTable, // (ag1, sport)
    ag3: AggTable, // (ag2, dport)
    /// (ag3 meta, proto label) → HPMR for that full combination.
    final_map: HashMap<(u32, u32), (Priority, RuleId)>,
}

impl Dcfl {
    /// Preprocesses a rule set into field structures + aggregation network.
    ///
    /// # Panics
    ///
    /// Panics if a field structure overflows its fixed provisioning
    /// (tries sized generously above any ClassBench-scale set). The
    /// Table I comparators are deliberately build-once research
    /// artifacts; capacity overflow is a misconfiguration, not a
    /// runtime condition to recover from.
    #[allow(clippy::expect_used)] // capacity invariants documented above
    pub fn build(rules: &RuleSet) -> Self {
        let cap = (rules.len() + 64).next_power_of_two();
        let mut sip = MultiBitTrie::new(MbtConfig::ip32_5level(cap));
        let mut dip = MultiBitTrie::new(MbtConfig::ip32_5level(cap));
        let mut sport = SegmentTrie::new(SegTrieConfig::four_level(cap.min(4096)));
        let mut dport = SegmentTrie::new(SegTrieConfig::four_level(cap.min(4096)));
        let mut proto = ProtocolLut::new();
        let mut sip_store = LabelStore::new("dcfl/sip", 1 << 20, 13);
        let mut dip_store = LabelStore::new("dcfl/dip", 1 << 20, 13);
        let mut sport_store = LabelStore::new("dcfl/sport", 1 << 18, 13);
        let mut dport_store = LabelStore::new("dcfl/dport", 1 << 18, 13);
        let mut proto_store = LabelStore::new("dcfl/proto", 16, 4);

        let mut sip_labels: HashMap<(u32, u8), u16> = HashMap::new();
        let mut dip_labels: HashMap<(u32, u8), u16> = HashMap::new();
        let mut sport_labels: HashMap<(u16, u16), u16> = HashMap::new();
        let mut dport_labels: HashMap<(u16, u16), u16> = HashMap::new();
        let mut proto_labels: HashMap<Option<u8>, u16> = HashMap::new();

        let mut ag1 = AggTable::default();
        let mut ag2 = AggTable::default();
        let mut ag3 = AggTable::default();
        let mut final_map: HashMap<(u32, u32), (Priority, RuleId)> = HashMap::new();

        for (id, r) in rules.iter() {
            let next_sip = sip_labels.len();
            let ls = *sip_labels
                .entry((r.src_ip.value(), r.src_ip.len()))
                .or_insert_with(|| {
                    let l = next_sip as u16;
                    sip.insert_prefix(
                        &mut sip_store,
                        r.src_ip.value(),
                        r.src_ip.len(),
                        LabelEntry::by_priority(Label(l), Priority(0)),
                    )
                    .expect("dcfl sip trie sized for the rule set");
                    l
                });
            let next_dip = dip_labels.len();
            let ld = *dip_labels
                .entry((r.dst_ip.value(), r.dst_ip.len()))
                .or_insert_with(|| {
                    let l = next_dip as u16;
                    dip.insert_prefix(
                        &mut dip_store,
                        r.dst_ip.value(),
                        r.dst_ip.len(),
                        LabelEntry::by_priority(Label(l), Priority(0)),
                    )
                    .expect("dcfl dip trie sized for the rule set");
                    l
                });
            let next_sport = sport_labels.len();
            let lsp = *sport_labels
                .entry((r.src_port.lo(), r.src_port.hi()))
                .or_insert_with(|| {
                    let l = next_sport as u16;
                    sport
                        .insert_range(
                            &mut sport_store,
                            r.src_port,
                            LabelEntry::by_priority(Label(l), Priority(0)),
                        )
                        .expect("dcfl sport trie sized for the rule set");
                    l
                });
            let next_dport = dport_labels.len();
            let ldp = *dport_labels
                .entry((r.dst_port.lo(), r.dst_port.hi()))
                .or_insert_with(|| {
                    let l = next_dport as u16;
                    dport
                        .insert_range(
                            &mut dport_store,
                            r.dst_port,
                            LabelEntry::by_priority(Label(l), Priority(0)),
                        )
                        .expect("dcfl dport trie sized for the rule set");
                    l
                });
            let next_proto = proto_labels.len();
            let lpr = *proto_labels
                .entry(match r.proto {
                    ProtoSpec::Any => None,
                    ProtoSpec::Exact(v) => Some(v),
                })
                .or_insert_with(|| {
                    let l = next_proto as u16;
                    proto
                        .insert(
                            &mut proto_store,
                            DimValue::Proto(r.proto),
                            LabelEntry::by_priority(Label(l), Priority(0)),
                        )
                        .expect("protocol LUT is direct-indexed");
                    l
                });
            let m1 = ag1.intern((u32::from(ls), u32::from(ld)));
            let m2 = ag2.intern((m1, u32::from(lsp)));
            let m3 = ag3.intern((m2, u32::from(ldp)));
            let slot = final_map
                .entry((m3, u32::from(lpr)))
                .or_insert((r.priority, id));
            if (r.priority, id) < *slot {
                *slot = (r.priority, id);
            }
        }
        Dcfl {
            sip,
            sip_store,
            dip,
            dip_store,
            sport,
            sport_store,
            dport,
            dport_store,
            proto,
            proto_store,
            ag1,
            ag2,
            ag3,
            final_map,
        }
    }

    fn final_memory_bits(&self) -> u64 {
        let slots = (self.final_map.len().max(1) * 2).next_power_of_two() as u64;
        // key (16 + 4) + priority (16) + rule id (16) + valid.
        slots * (16 + 4 + 16 + 16 + 1)
    }
}

impl Baseline for Dcfl {
    fn name(&self) -> &'static str {
        "DCFL"
    }

    // Field lookups are total over their domains (u32 keys, u16 ports,
    // u8 protocols), so the `Err` arms are unreachable by construction.
    #[allow(clippy::expect_used)]
    fn classify(&self, h: &Header) -> BaselineResult {
        let mut accesses = 0u32;
        // Parallel field searches returning full label sets.
        let rs = self
            .sip
            .lookup_key(&self.sip_store, h.src_ip.0)
            .expect("in range");
        let rd = self
            .dip
            .lookup_key(&self.dip_store, h.dst_ip.0)
            .expect("in range");
        let rsp = self
            .sport
            .lookup(&self.sport_store, h.src_port)
            .expect("in range");
        let rdp = self
            .dport
            .lookup(&self.dport_store, h.dst_port)
            .expect("in range");
        let rpr = self
            .proto
            .lookup(&self.proto_store, u16::from(h.proto))
            .expect("in range");
        accesses += rs.mem_reads + rd.mem_reads + rsp.mem_reads + rdp.mem_reads + rpr.mem_reads;
        // Aggregation network: each candidate pair costs one probe.
        let mut m1 = Vec::new();
        for a in rs.labels.iter() {
            for b in rd.labels.iter() {
                accesses += 1;
                if let Some(m) = self.ag1.get((u32::from(a.label.0), u32::from(b.label.0))) {
                    m1.push(m);
                }
            }
        }
        let mut m2 = Vec::new();
        for &m in &m1 {
            for p in rsp.labels.iter() {
                accesses += 1;
                if let Some(x) = self.ag2.get((m, u32::from(p.label.0))) {
                    m2.push(x);
                }
            }
        }
        let mut m3 = Vec::new();
        for &m in &m2 {
            for p in rdp.labels.iter() {
                accesses += 1;
                if let Some(x) = self.ag3.get((m, u32::from(p.label.0))) {
                    m3.push(x);
                }
            }
        }
        let mut best: Option<(Priority, RuleId)> = None;
        for &m in &m3 {
            for p in rpr.labels.iter() {
                accesses += 1;
                if let Some(&cand) = self.final_map.get(&(m, u32::from(p.label.0))) {
                    if best.map_or(true, |b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        }
        BaselineResult {
            rule: best.map(|(_, id)| id),
            accesses,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.sip.used_bits()
            + self.dip.used_bits()
            + self.sport.used_bits()
            + self.dport.used_bits()
            + FieldEngine::used_bits(&self.proto)
            + self.sip_store.used_bits()
            + self.dip_store.used_bits()
            + self.sport_store.used_bits()
            + self.dport_store.used_bits()
            + self.proto_store.used_bits()
            + self.ag1.memory_bits()
            + self.ag2.memory_bits()
            + self.ag3.memory_bits()
            + self.final_memory_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fw_set, small_set, trace};
    use crate::LinearSearch;

    #[test]
    fn agrees_with_oracle_acl() {
        let rs = small_set();
        let d = Dcfl::build(&rs);
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(d.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn agrees_with_oracle_fw() {
        let rs = fw_set();
        let d = Dcfl::build(&rs);
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(d.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn accesses_far_below_linear() {
        let rs = small_set();
        let d = Dcfl::build(&rs);
        let ls = LinearSearch::build(&rs);
        let t = trace(&rs, 100);
        assert!(d.avg_accesses(&t) < ls.avg_accesses(&t) / 2.0);
    }

    #[test]
    fn memory_accounts_aggregation() {
        let rs = small_set();
        let d = Dcfl::build(&rs);
        assert!(d.memory_bits() > 0);
        assert!(d.ag1.memory_bits() > 0);
    }

    #[test]
    fn miss_on_unmatched_header() {
        let rs = small_set();
        let d = Dcfl::build(&rs);
        // src port 1..: ACL rules have wildcard sport, so pick a header
        // whose proto dimension can't match: protocol 200 is not in pools.
        let h = Header::new([9, 9, 9, 9].into(), [8, 8, 8, 8].into(), 1, 1, 200);
        assert_eq!(d.classify(&h).rule, rs.classify(&h).map(|(i, _)| i));
    }
}
