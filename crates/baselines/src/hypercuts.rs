//! HyperCuts — multidimensional decision-tree cutting (Singh et al.,
//! SIGCOMM 2003; paper reference \[2\]).
//!
//! Each internal node cuts its hyper-region into equal cells along one or
//! two chosen dimensions; rules replicate into every overlapping child,
//! which is HyperCuts' characteristic memory/время trade-off (Table I: high
//! lookup access count, moderate memory; the paper's §II also cites the
//! replication problem EffiCuts later attacks).

use crate::{Baseline, BaselineResult};
use spc_types::{Header, ProtoSpec, Rule, RuleId, RuleSet};

/// Tuning parameters (names follow the original paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperCutsConfig {
    /// Leaf bucket size: nodes with at most this many rules stop cutting.
    pub binth: usize,
    /// Space factor: a node may create up to `spfac × √n` children.
    pub spfac: f64,
    /// Hard recursion cap.
    pub max_depth: u32,
}

impl Default for HyperCutsConfig {
    fn default() -> Self {
        HyperCutsConfig {
            binth: 16,
            spfac: 4.0,
            max_depth: 32,
        }
    }
}

/// The five classification dimensions as closed integer ranges.
const DIMS: usize = 5;

fn rule_range(r: &Rule, d: usize) -> (u64, u64) {
    match d {
        0 => (u64::from(r.src_ip.first().0), u64::from(r.src_ip.last().0)),
        1 => (u64::from(r.dst_ip.first().0), u64::from(r.dst_ip.last().0)),
        2 => (u64::from(r.src_port.lo()), u64::from(r.src_port.hi())),
        3 => (u64::from(r.dst_port.lo()), u64::from(r.dst_port.hi())),
        _ => match r.proto {
            ProtoSpec::Any => (0, 255),
            ProtoSpec::Exact(v) => (u64::from(v), u64::from(v)),
        },
    }
}

fn header_value(h: &Header, d: usize) -> u64 {
    match d {
        0 => u64::from(h.src_ip.0),
        1 => u64::from(h.dst_ip.0),
        2 => u64::from(h.src_port),
        3 => u64::from(h.dst_port),
        _ => u64::from(h.proto),
    }
}

/// One cut dimension of an inner node.
#[derive(Debug, Clone, Copy)]
struct Cut {
    dim: usize,
    lo: u64,
    cell: u64,
    cuts: u32,
}

#[derive(Debug)]
enum Node {
    Inner { cuts: Vec<Cut>, children: Vec<u32> },
    Leaf { rules: Vec<(RuleId, Rule)> },
}

/// The HyperCuts classifier.
///
/// ```
/// use spc_baselines::{HyperCuts, Baseline};
/// use spc_types::{Rule, RuleSet, Priority, Header, PortRange};
/// let rs = RuleSet::from_rules(vec![
///     Rule::builder(Priority(0)).dst_port(PortRange::exact(80)).build(),
///     Rule::builder(Priority(1)).build(),
/// ]);
/// let hc = HyperCuts::build(&rs, Default::default());
/// let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1, 80, 6);
/// assert_eq!(hc.classify(&h).rule.unwrap().0, 0);
/// ```
#[derive(Debug)]
pub struct HyperCuts {
    nodes: Vec<Node>,
    root: u32,
    depth: u32,
    rule_count: usize,
    replicated_rules: u64,
}

impl HyperCuts {
    /// Builds the decision tree over a rule set.
    pub fn build(rules: &RuleSet, config: HyperCutsConfig) -> Self {
        let all: Vec<(RuleId, Rule)> = rules.iter().map(|(id, r)| (id, *r)).collect();
        let mut hc = HyperCuts {
            nodes: Vec::new(),
            root: 0,
            depth: 0,
            rule_count: all.len(),
            replicated_rules: 0,
        };
        let region: [(u64, u64); DIMS] = [
            (0, u64::from(u32::MAX)),
            (0, u64::from(u32::MAX)),
            (0, 65535),
            (0, 65535),
            (0, 255),
        ];
        hc.root = hc.build_node(all, region, 0, &config);
        hc
    }

    fn build_node(
        &mut self,
        rules: Vec<(RuleId, Rule)>,
        region: [(u64, u64); DIMS],
        depth: u32,
        config: &HyperCutsConfig,
    ) -> u32 {
        self.depth = self.depth.max(depth);
        if rules.len() <= config.binth || depth >= config.max_depth {
            return self.push_leaf(rules);
        }
        // Heuristic: count distinct projected ranges per dimension, choose
        // dimensions with above-average distinct counts (at most 2).
        let mut uniq = [0usize; DIMS];
        for (d, u) in uniq.iter_mut().enumerate() {
            let mut vs: Vec<(u64, u64)> = rules
                .iter()
                .map(|(_, r)| rule_range(r, d))
                .map(|(lo, hi)| (lo.max(region[d].0), hi.min(region[d].1)))
                .collect();
            vs.sort_unstable();
            vs.dedup();
            *u = vs.len();
        }
        let mean = uniq.iter().sum::<usize>() as f64 / DIMS as f64;
        let mut chosen: Vec<usize> = (0..DIMS)
            .filter(|&d| uniq[d] as f64 >= mean && uniq[d] > 1 && region[d].0 < region[d].1)
            .collect();
        chosen.sort_by_key(|&d| std::cmp::Reverse(uniq[d]));
        chosen.truncate(2);
        if chosen.is_empty() {
            return self.push_leaf(rules);
        }
        // Budget children by spfac * sqrt(n); double cuts round-robin.
        let budget = (config.spfac * (rules.len() as f64).sqrt()).max(2.0) as u64;
        let mut cut_bits: Vec<u32> = vec![0; chosen.len()];
        loop {
            let mut advanced = false;
            for (i, &d) in chosen.iter().enumerate() {
                let total: u64 = cut_bits.iter().map(|b| 1u64 << b).product();
                let span = region[d].1 - region[d].0 + 1;
                if total * 2 <= budget && (1u64 << (cut_bits[i] + 1)) <= span {
                    cut_bits[i] += 1;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        if cut_bits.iter().all(|b| *b == 0) {
            return self.push_leaf(rules);
        }
        let cuts: Vec<Cut> = chosen
            .iter()
            .zip(&cut_bits)
            .map(|(&d, &b)| {
                let n = 1u64 << b;
                let span = region[d].1 - region[d].0 + 1;
                Cut {
                    dim: d,
                    lo: region[d].0,
                    cell: (span / n).max(1),
                    cuts: n as u32,
                }
            })
            .collect();
        let total_children: usize = cuts.iter().map(|c| c.cuts as usize).product();
        // Distribute rules into children (with replication).
        let mut buckets: Vec<Vec<(RuleId, Rule)>> = vec![Vec::new(); total_children];
        for (id, rule) in &rules {
            // Index ranges per cut dimension.
            let spans: Vec<(u64, u64)> = cuts
                .iter()
                .map(|c| {
                    let (rlo, rhi) = rule_range(rule, c.dim);
                    let rlo = rlo.max(region[c.dim].0);
                    let rhi = rhi.min(region[c.dim].1);
                    let i0 = ((rlo - c.lo) / c.cell).min(u64::from(c.cuts) - 1);
                    let i1 = ((rhi - c.lo) / c.cell).min(u64::from(c.cuts) - 1);
                    (i0, i1)
                })
                .collect();
            // Cartesian product of index ranges.
            let mut idx: Vec<u64> = spans.iter().map(|s| s.0).collect();
            loop {
                let mut flat = 0u64;
                for (i, c) in cuts.iter().enumerate() {
                    flat = flat * u64::from(c.cuts) + idx[i];
                }
                buckets[flat as usize].push((*id, *rule));
                // Advance odometer.
                let mut d = spans.len();
                loop {
                    if d == 0 {
                        idx.clear();
                        break;
                    }
                    d -= 1;
                    if idx[d] < spans[d].1 {
                        idx[d] += 1;
                        for s in d + 1..spans.len() {
                            idx[s] = spans[s].0;
                        }
                        break;
                    }
                }
                if idx.is_empty() {
                    break;
                }
            }
        }
        // No progress (every child holds everything) -> stop.
        if buckets.iter().all(|b| b.len() == rules.len()) {
            return self.push_leaf(rules);
        }
        let node_idx = self.nodes.len() as u32;
        self.nodes.push(Node::Inner {
            cuts: cuts.clone(),
            children: Vec::new(),
        });
        let mut children = Vec::with_capacity(total_children);
        for (flat, bucket) in buckets.into_iter().enumerate() {
            // Child region.
            let mut child_region = region;
            let mut rem = flat as u64;
            for c in cuts.iter().rev() {
                let i = rem % u64::from(c.cuts);
                rem /= u64::from(c.cuts);
                let lo = c.lo + i * c.cell;
                let hi = if i == u64::from(c.cuts) - 1 {
                    region[c.dim].1
                } else {
                    lo + c.cell - 1
                };
                child_region[c.dim] = (lo, hi);
            }
            children.push(self.build_node(bucket, child_region, depth + 1, config));
        }
        match &mut self.nodes[node_idx as usize] {
            Node::Inner { children: slot, .. } => *slot = children,
            Node::Leaf { .. } => unreachable!("just pushed an inner node"),
        }
        node_idx
    }

    fn push_leaf(&mut self, mut rules: Vec<(RuleId, Rule)>) -> u32 {
        rules.sort_by_key(|(id, r)| (r.priority, id.0));
        self.replicated_rules += rules.len() as u64;
        self.nodes.push(Node::Leaf { rules });
        self.nodes.len() as u32 - 1
    }

    /// Maximum tree depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Total rule entries across leaves (replication measure).
    pub fn replicated_rules(&self) -> u64 {
        self.replicated_rules
    }
}

impl Baseline for HyperCuts {
    fn name(&self) -> &'static str {
        "HyperCuts"
    }

    fn classify(&self, h: &Header) -> BaselineResult {
        let mut accesses = 0u32;
        let mut node = self.root;
        loop {
            accesses += 1;
            match &self.nodes[node as usize] {
                Node::Inner { cuts, children } => {
                    let mut flat = 0u64;
                    for c in cuts {
                        let v = header_value(h, c.dim).max(c.lo);
                        let i = ((v - c.lo) / c.cell).min(u64::from(c.cuts) - 1);
                        flat = flat * u64::from(c.cuts) + i;
                    }
                    node = children[flat as usize];
                }
                Node::Leaf { rules } => {
                    for (id, rule) in rules {
                        accesses += crate::linear::RULE_WORDS;
                        if rule.matches(h) {
                            return BaselineResult {
                                rule: Some(*id),
                                accesses,
                            };
                        }
                    }
                    return BaselineResult {
                        rule: None,
                        accesses,
                    };
                }
            }
        }
    }

    fn memory_bits(&self) -> u64 {
        // Inner node: per-cut descriptor (dim 3 + lo 32 + cell 32 + cuts 6)
        // + child pointers (20 bits); leaf: header + 16-bit rule pointers.
        let mut bits = 0u64;
        for n in &self.nodes {
            bits += match n {
                Node::Inner { cuts, children } => {
                    32 + cuts.len() as u64 * 73 + children.len() as u64 * 20
                }
                Node::Leaf { rules } => 32 + rules.len() as u64 * 16,
            };
        }
        // Plus the backing rule table (one copy of each rule).
        bits + self.rule_count as u64 * 152
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fw_set, small_set, trace};
    use crate::LinearSearch;

    #[test]
    fn agrees_with_oracle_acl() {
        let rs = small_set();
        let hc = HyperCuts::build(&rs, HyperCutsConfig::default());
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(hc.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn agrees_with_oracle_fw() {
        let rs = fw_set();
        let hc = HyperCuts::build(&rs, HyperCutsConfig::default());
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(hc.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn tree_actually_cuts() {
        let rs = small_set();
        let hc = HyperCuts::build(&rs, HyperCutsConfig::default());
        assert!(hc.depth() >= 1);
        assert!(hc.nodes.len() > 1);
        // Far fewer accesses than linear scan on average.
        let t = trace(&rs, 100);
        let ls = LinearSearch::build(&rs);
        assert!(hc.avg_accesses(&t) < ls.avg_accesses(&t) / 2.0);
    }

    #[test]
    fn binth_one_allowed() {
        let rs = small_set();
        let hc = HyperCuts::build(
            &rs,
            HyperCutsConfig {
                binth: 1,
                ..Default::default()
            },
        );
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 100) {
            assert_eq!(hc.classify(&h).rule, ls.classify(&h).rule);
        }
    }

    #[test]
    fn replication_counted() {
        let rs = small_set();
        let hc = HyperCuts::build(&rs, HyperCutsConfig::default());
        assert!(hc.replicated_rules() >= rs.len() as u64);
        assert!(hc.memory_bits() > 0);
    }

    #[test]
    fn empty_ruleset() {
        let rs = spc_types::RuleSet::new();
        let hc = HyperCuts::build(&rs, HyperCutsConfig::default());
        let r = hc.classify(&Header::default());
        assert!(r.rule.is_none());
        assert_eq!(r.accesses, 1); // one (empty) leaf node read
    }
}
