//! The trie-combination classifiers called **Option 1** and **Option 2**
//! in the paper's Table I (from the authors' ICC'14 study \[17\]).
//!
//! * Option 1 — 5-level multi-bit trie for the 32-bit IP fields, 4-level
//!   segment trie for the port fields, register LUT for protocol.
//! * Option 2 — 4-level multi-bit trie, 5-level segment trie, LUT.
//!
//! Both use the label method and resolve the HPMR by probing the label
//! cross-product against a hashed rule memory — the approach this paper
//! then hardens into the configurable segment architecture.

use crate::{Baseline, BaselineResult};
use spc_core::RuleFilter;
use spc_lookup::{
    FieldEngine, Label, LabelEntry, LabelStore, MbtConfig, MultiBitTrie, ProtocolLut,
    SegTrieConfig, SegmentTrie,
};
use spc_types::{DimValue, Header, Priority, ProtoSpec, RuleId, RuleSet};
use std::collections::HashMap;

/// Which Table I option to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionKind {
    /// 5-level MBT + 4-level segment trie + LUT.
    One,
    /// 4-level MBT + 5-level segment trie + LUT.
    Two,
}

impl std::fmt::Display for OptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionKind::One => f.write_str("Option 1"),
            OptionKind::Two => f.write_str("Option 2"),
        }
    }
}

/// A Table I option classifier (static build).
///
/// ```
/// use spc_baselines::{OptionClassifier, OptionKind, Baseline};
/// use spc_types::{Rule, RuleSet, Priority, Header, PortRange};
/// let rs = RuleSet::from_rules(vec![
///     Rule::builder(Priority(0)).dst_port(PortRange::exact(80)).build(),
/// ]);
/// let opt = OptionClassifier::build(&rs, OptionKind::One);
/// let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 7, 80, 6);
/// assert_eq!(opt.classify(&h).rule.unwrap().0, 0);
/// ```
#[derive(Debug)]
pub struct OptionClassifier {
    kind: OptionKind,
    sip: MultiBitTrie,
    sip_store: LabelStore,
    dip: MultiBitTrie,
    dip_store: LabelStore,
    sport: SegmentTrie,
    sport_store: LabelStore,
    dport: SegmentTrie,
    dport_store: LabelStore,
    proto: ProtocolLut,
    proto_store: LabelStore,
    filter: RuleFilter,
}

/// Key layout: 13+13+13+13+4 = 56 bits.
fn make_key(sip: Label, dip: Label, sp: Label, dp: Label, pr: Label) -> u128 {
    let mut k = 0u128;
    for (l, w) in [(sip, 13u32), (dip, 13), (sp, 13), (dp, 13), (pr, 4)] {
        k = (k << w) | u128::from(l.0);
    }
    k
}

impl OptionClassifier {
    /// Builds the option classifier over a rule set.
    ///
    /// # Panics
    ///
    /// Panics if a field structure overflows its fixed provisioning
    /// (tries and Rule Filter sized at ≥2× the rule count) or the set
    /// contains duplicate 5-tuples. The Table I comparators are
    /// deliberately build-once research artifacts; capacity overflow is
    /// a misconfiguration, not a runtime condition to recover from.
    #[allow(clippy::expect_used)] // capacity invariants documented above
    pub fn build(rules: &RuleSet, kind: OptionKind) -> Self {
        let cap = (rules.len() + 64).next_power_of_two();
        let (mbt_cfg, seg_cfg) = match kind {
            OptionKind::One => (
                MbtConfig::ip32_5level(cap),
                SegTrieConfig::four_level(cap.min(4096)),
            ),
            OptionKind::Two => (
                MbtConfig::ip32_4level(cap),
                SegTrieConfig::five_level(cap.min(4096)),
            ),
        };
        let mut me = OptionClassifier {
            kind,
            sip: MultiBitTrie::new(mbt_cfg.clone()),
            sip_store: LabelStore::new("opt/sip", 1 << 20, 13),
            dip: MultiBitTrie::new(mbt_cfg),
            dip_store: LabelStore::new("opt/dip", 1 << 20, 13),
            sport: SegmentTrie::new(seg_cfg.clone()),
            sport_store: LabelStore::new("opt/sport", 1 << 18, 13),
            dport: SegmentTrie::new(seg_cfg),
            dport_store: LabelStore::new("opt/dport", 1 << 18, 13),
            proto: ProtocolLut::new(),
            proto_store: LabelStore::new("opt/proto", 16, 4),
            filter: RuleFilter::new(
                ((rules.len().max(64) * 2)
                    .next_power_of_two()
                    .trailing_zeros())
                .max(6),
                56,
            ),
        };
        let mut sip_labels: HashMap<(u32, u8), Label> = HashMap::new();
        let mut dip_labels: HashMap<(u32, u8), Label> = HashMap::new();
        let mut sport_labels: HashMap<(u16, u16), Label> = HashMap::new();
        let mut dport_labels: HashMap<(u16, u16), Label> = HashMap::new();
        let mut proto_labels: HashMap<Option<u8>, Label> = HashMap::new();
        for (id, r) in rules.iter() {
            let p = r.priority;
            let next_sip = sip_labels.len();
            let ls = *sip_labels
                .entry((r.src_ip.value(), r.src_ip.len()))
                .or_insert_with(|| {
                    let l = Label(next_sip as u16);
                    me.sip
                        .insert_prefix(
                            &mut me.sip_store,
                            r.src_ip.value(),
                            r.src_ip.len(),
                            LabelEntry::by_priority(l, p),
                        )
                        .expect("option sip trie sized for the rule set");
                    l
                });
            let next_dip = dip_labels.len();
            let ld = *dip_labels
                .entry((r.dst_ip.value(), r.dst_ip.len()))
                .or_insert_with(|| {
                    let l = Label(next_dip as u16);
                    me.dip
                        .insert_prefix(
                            &mut me.dip_store,
                            r.dst_ip.value(),
                            r.dst_ip.len(),
                            LabelEntry::by_priority(l, p),
                        )
                        .expect("option dip trie sized for the rule set");
                    l
                });
            let next_sport = sport_labels.len();
            let lsp = *sport_labels
                .entry((r.src_port.lo(), r.src_port.hi()))
                .or_insert_with(|| {
                    let l = Label(next_sport as u16);
                    me.sport
                        .insert_range(
                            &mut me.sport_store,
                            r.src_port,
                            LabelEntry::by_priority(l, p),
                        )
                        .expect("option sport trie sized for the rule set");
                    l
                });
            let next_dport = dport_labels.len();
            let ldp = *dport_labels
                .entry((r.dst_port.lo(), r.dst_port.hi()))
                .or_insert_with(|| {
                    let l = Label(next_dport as u16);
                    me.dport
                        .insert_range(
                            &mut me.dport_store,
                            r.dst_port,
                            LabelEntry::by_priority(l, p),
                        )
                        .expect("option dport trie sized for the rule set");
                    l
                });
            let next_proto = proto_labels.len();
            let lpr = *proto_labels
                .entry(match r.proto {
                    ProtoSpec::Any => None,
                    ProtoSpec::Exact(v) => Some(v),
                })
                .or_insert_with(|| {
                    let l = Label(next_proto as u16);
                    me.proto
                        .insert(
                            &mut me.proto_store,
                            DimValue::Proto(r.proto),
                            LabelEntry::by_priority(l, p),
                        )
                        .expect("protocol LUT is direct-indexed");
                    l
                });
            me.filter
                .insert(make_key(ls, ld, lsp, ldp, lpr), id, *r)
                .expect("filter sized at 2x rules; generator deduplicates 5-tuples");
        }
        me
    }

    /// Which option this is.
    pub fn kind(&self) -> OptionKind {
        self.kind
    }
}

impl Baseline for OptionClassifier {
    fn name(&self) -> &'static str {
        match self.kind {
            OptionKind::One => "Option 1",
            OptionKind::Two => "Option 2",
        }
    }

    // Field lookups are total over their domains (u32 keys, u16 ports,
    // u8 protocols), so the `Err` arms are unreachable by construction.
    #[allow(clippy::expect_used)]
    fn classify(&self, h: &Header) -> BaselineResult {
        let mut accesses = 0u32;
        let rs = self
            .sip
            .lookup_key(&self.sip_store, h.src_ip.0)
            .expect("in range");
        let rd = self
            .dip
            .lookup_key(&self.dip_store, h.dst_ip.0)
            .expect("in range");
        let rsp = self
            .sport
            .lookup(&self.sport_store, h.src_port)
            .expect("in range");
        let rdp = self
            .dport
            .lookup(&self.dport_store, h.dst_port)
            .expect("in range");
        let rpr = self
            .proto
            .lookup(&self.proto_store, u16::from(h.proto))
            .expect("in range");
        accesses += rs.mem_reads + rd.mem_reads + rsp.mem_reads + rdp.mem_reads + rpr.mem_reads;
        let mut best: Option<(Priority, RuleId)> = None;
        for a in rs.labels.iter() {
            for b in rd.labels.iter() {
                for c in rsp.labels.iter() {
                    for d in rdp.labels.iter() {
                        for e in rpr.labels.iter() {
                            let probe = self
                                .filter
                                .probe(make_key(a.label, b.label, c.label, d.label, e.label));
                            accesses += probe.reads;
                            if let Some(s) = probe.hit {
                                let cand = (s.rule.priority, s.id);
                                if best.map_or(true, |x| cand < x) {
                                    best = Some(cand);
                                }
                            }
                        }
                    }
                }
            }
        }
        BaselineResult {
            rule: best.map(|(_, id)| id),
            accesses,
        }
    }

    fn memory_bits(&self) -> u64 {
        self.sip.used_bits()
            + self.dip.used_bits()
            + self.sport.used_bits()
            + self.dport.used_bits()
            + FieldEngine::used_bits(&self.proto)
            + self.sip_store.used_bits()
            + self.dip_store.used_bits()
            + self.sport_store.used_bits()
            + self.dport_store.used_bits()
            + self.proto_store.used_bits()
            + self.filter.provisioned_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fw_set, small_set, trace};
    use crate::LinearSearch;

    #[test]
    fn option1_agrees_with_oracle() {
        let rs = small_set();
        let o = OptionClassifier::build(&rs, OptionKind::One);
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(o.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn option2_agrees_with_oracle() {
        let rs = fw_set();
        let o = OptionClassifier::build(&rs, OptionKind::Two);
        let ls = LinearSearch::build(&rs);
        for h in trace(&rs, 300) {
            assert_eq!(o.classify(&h).rule, ls.classify(&h).rule, "header {h}");
        }
    }

    #[test]
    fn option_kinds_report_names() {
        let rs = small_set();
        let o1 = OptionClassifier::build(&rs, OptionKind::One);
        let o2 = OptionClassifier::build(&rs, OptionKind::Two);
        assert_eq!(o1.name(), "Option 1");
        assert_eq!(o2.name(), "Option 2");
        assert_eq!(o1.kind(), OptionKind::One);
        assert!(o1.memory_bits() > 0 && o2.memory_bits() > 0);
    }

    #[test]
    fn option2_shallower_ip_trie() {
        // 4 levels vs 5: option 2's IP lookups read fewer trie nodes.
        let rs = small_set();
        let o1 = OptionClassifier::build(&rs, OptionKind::One);
        let o2 = OptionClassifier::build(&rs, OptionKind::Two);
        assert_eq!(o1.sip.num_levels(), 5);
        assert_eq!(o2.sip.num_levels(), 4);
    }
}
