//! Baseline packet classifiers with memory-access instrumentation.
//!
//! The paper's Table I compares the most popular multi-field and
//! decomposition algorithms by average lookup memory accesses and memory
//! footprint; Table VII adds hardware comparators. This crate implements
//! the software side of that comparison from scratch:
//!
//! * [`LinearSearch`] — the semantic oracle (priority-ordered scan);
//! * [`HyperCuts`] — multi-dimensional decision-tree cutting \[2\];
//! * [`Rfc`] — Recursive Flow Classification's equivalence-class reduction
//!   tree \[3\];
//! * [`Dcfl`] — Distributed Crossproducting of Field Labels \[5\]: parallel
//!   per-field label lookups joined through an aggregation network;
//! * [`OptionClassifier`] — the trie combinations called "Option 1" and
//!   "Option 2" in Table I (5/4-level multi-bit IP tries + 4/5-level
//!   segment tries for ports + a protocol LUT).
//!
//! All of them implement [`Baseline`], reporting per-lookup memory
//! accesses and total memory bits so the Table I harness can print the
//! same columns the paper does.

mod dcfl;
mod hypercuts;
mod linear;
mod options;
mod rfc;

use spc_types::{Header, RuleId};

pub use dcfl::Dcfl;
pub use hypercuts::{HyperCuts, HyperCutsConfig};
pub use linear::LinearSearch;
pub use options::{OptionClassifier, OptionKind};
pub use rfc::{Rfc, RfcError};

/// Result of one baseline lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineResult {
    /// The highest-priority matching rule, if any.
    pub rule: Option<RuleId>,
    /// Memory words read to produce it.
    pub accesses: u32,
}

/// A classifier with hardware-model instrumentation.
pub trait Baseline {
    /// Algorithm name as it appears in Table I.
    fn name(&self) -> &'static str;

    /// Classifies one header.
    fn classify(&self, h: &Header) -> BaselineResult;

    /// Total structure memory in bits.
    fn memory_bits(&self) -> u64;

    /// Average accesses over a trace (convenience for the harness).
    fn avg_accesses(&self, trace: &[Header]) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        let total: u64 = trace
            .iter()
            .map(|h| u64::from(self.classify(h).accesses))
            .sum();
        total as f64 / trace.len() as f64
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use spc_classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
    use spc_types::{Header, RuleSet};

    pub fn small_set() -> RuleSet {
        RuleSetGenerator::new(FilterKind::Acl, 300)
            .seed(21)
            .generate()
    }

    pub fn fw_set() -> RuleSet {
        RuleSetGenerator::new(FilterKind::Fw, 250)
            .seed(22)
            .generate()
    }

    pub fn trace(rules: &RuleSet, n: usize) -> Vec<Header> {
        TraceGenerator::new()
            .seed(5)
            .match_fraction(0.8)
            .generate(rules, n)
    }
}
