//! A software model of a priority-ordered TCAM: mask/value entries
//! scanned first-match, with a partitioned free-slot allocator whose
//! shift-on-insert cost is surfaced per update.

use crate::TupleError;
use spc_types::{Action, DimValue, Header, Priority, ProtoSpec, Rule, RuleSet};
use std::collections::HashMap;

/// Bits one provisioned TCAM slot occupies: seven 16-bit value cells
/// plus seven 16-bit mask cells.
const SLOT_BITS: u64 = 2 * 7 * 16;
/// Bits per rule in the action/priority side table.
const SIDE_BITS: u64 = 64;

/// Cost accounting for one [`SoftTcam`] update, mapped by the engine
/// layer onto a §V.A-style `UpdateReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcamUpdate {
    /// TCAM slots newly written with the rule's prefix expansion.
    pub entries_added: u32,
    /// Slots invalidated by a remove.
    pub entries_removed: u32,
    /// Pre-existing entries rewritten to open a slot at the insertion
    /// point (the shift-on-insert cost a real TCAM pays).
    pub entries_moved: u32,
}

/// One TCAM slot: a ternary match (`value`/`mask` per 16-bit dimension
/// cell) plus the identity of the rule it expands.
///
/// Slots are kept sorted by `(priority, id, seq)`, so the first matching
/// slot in a scan is the highest-priority matching rule with ties broken
/// by lowest id — the registry-wide tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcamEntry {
    /// Priority of the expanded rule.
    pub priority: Priority,
    /// Id of the expanded rule.
    pub id: u32,
    /// Index of this entry within the rule's expansion (cross product of
    /// the two port-range prefix decompositions).
    pub seq: u16,
    /// Match value per dimension cell, in canonical dimension order.
    pub value: [u16; 7],
    /// Care-bit mask per dimension cell (`query & mask == value` hits).
    pub mask: [u16; 7],
    /// Action of the expanded rule.
    pub action: Action,
}

impl TcamEntry {
    fn key(&self) -> (Priority, u32, u16) {
        (self.priority, self.id, self.seq)
    }

    fn hits(&self, q: &[u16; 7]) -> bool {
        (0..7).all(|i| q[i] & self.mask[i] == self.value[i])
    }
}

/// Decomposes the inclusive port range `[lo, hi]` into the minimal
/// greedy sequence of aligned `(value, mask)` prefix blocks — the
/// classic range-to-prefix expansion a real TCAM requires (worst case
/// `2·16 - 2` blocks per range).
///
/// ```
/// use spc_tuplespace::port_prefixes;
/// assert_eq!(port_prefixes(0, 65535), vec![(0, 0)]);
/// assert_eq!(port_prefixes(80, 80), vec![(80, 0xffff)]);
/// assert_eq!(port_prefixes(4, 7), vec![(4, 0xfffc)]);
/// ```
pub fn port_prefixes(lo: u16, hi: u16) -> Vec<(u16, u16)> {
    debug_assert!(lo <= hi);
    let mut out = Vec::new();
    let mut lo = u32::from(lo);
    let hi = u32::from(hi);
    while lo <= hi {
        // Largest block aligned at `lo` that does not overshoot `hi`.
        let align = if lo == 0 {
            1 << 16
        } else {
            lo & lo.wrapping_neg()
        };
        let mut size = align.min(1 << 16);
        while lo + size - 1 > hi {
            size >>= 1;
        }
        out.push((lo as u16, (!(size - 1) & 0xffff) as u16));
        lo += size;
    }
    out
}

/// 16-bit care mask for a segment prefix length.
fn seg_mask(len: u8) -> u16 {
    if len == 0 {
        0
    } else {
        u16::MAX << (16 - len)
    }
}

/// The seven 16-bit query cells of a header, in canonical dimension
/// order.
fn query_cells(h: &Header) -> [u16; 7] {
    [
        h.sip_hi(),
        h.sip_lo(),
        h.dip_hi(),
        h.dip_lo(),
        h.src_port,
        h.dst_port,
        u16::from(h.proto),
    ]
}

/// Expands one rule into its TCAM entries: segment prefixes verbatim,
/// port ranges through [`port_prefixes`], protocol as an 8-bit exact
/// cell or wildcard.
fn expand(id: u32, rule: &Rule) -> Vec<TcamEntry> {
    let sp = port_prefixes(rule.src_port.lo(), rule.src_port.hi());
    let dp = port_prefixes(rule.dst_port.lo(), rule.dst_port.hi());
    let (sh, sl) = rule.src_ip.segments();
    let (dh, dl) = rule.dst_ip.segments();
    let (pv, pm) = match rule.proto {
        ProtoSpec::Any => (0, 0),
        ProtoSpec::Exact(p) => (u16::from(p), 0x00ff),
    };
    let mut out = Vec::with_capacity(sp.len() * dp.len());
    let mut seq = 0u16;
    for &(sv, sm) in &sp {
        for &(dv, dm) in &dp {
            out.push(TcamEntry {
                priority: rule.priority,
                id,
                seq,
                value: [sh.value(), sl.value(), dh.value(), dl.value(), sv, dv, pv],
                mask: [
                    seg_mask(sh.len()),
                    seg_mask(sl.len()),
                    seg_mask(dh.len()),
                    seg_mask(dl.len()),
                    sm,
                    dm,
                    pm,
                ],
                action: rule.action,
            });
            seq += 1;
        }
    }
    out
}

/// A priority-ordered software TCAM with a partitioned slot allocator.
///
/// The array of `capacity` slots is split into `partitions` equal
/// chunks. Entries stay globally sorted by `(priority, id, seq)`; an
/// insert that lands in a full partition ripples entries toward the
/// nearest partition with a free slot, and the number of pre-existing
/// entries rewritten is reported in [`TcamUpdate::entries_moved`] —
/// partitioning bounds that worst case to roughly `capacity /
/// partitions` per hop instead of the whole array.
///
/// Removes invalidate slots in place (one write per expanded entry, no
/// compaction shift), modelling a TCAM's valid-bit clear.
///
/// Ids are monotonic and never reused; the `n` rules of
/// [`SoftTcam::build`] get ids `0..n` in rule-set order.
#[derive(Debug, Clone)]
pub struct SoftTcam {
    parts: Vec<Vec<TcamEntry>>,
    part_cap: usize,
    capacity: usize,
    entries: usize,
    rules: HashMap<u32, Rule>,
    dupes: HashMap<[DimValue; 7], u32>,
    next_id: u32,
}

impl SoftTcam {
    /// An empty TCAM with `capacity` slots in `partitions` chunks
    /// (minimums 1 slot, 1 partition; at most one partition per slot).
    pub fn new(capacity: usize, partitions: usize) -> Self {
        let capacity = capacity.max(1);
        let partitions = partitions.clamp(1, capacity);
        SoftTcam {
            parts: vec![Vec::new(); partitions],
            part_cap: capacity.div_ceil(partitions),
            capacity,
            entries: 0,
            rules: HashMap::new(),
            dupes: HashMap::new(),
            next_id: 0,
        }
    }

    /// Builds from a rule set (rule `i` gets id `i`), distributing the
    /// expanded entries evenly across partitions so each keeps free
    /// headroom for later inserts.
    ///
    /// # Errors
    ///
    /// [`TupleError::CapacityExhausted`] when the expansion exceeds
    /// `capacity`, [`TupleError::Duplicate`] when two rules share all
    /// seven match dimensions.
    pub fn build(rules: &RuleSet, capacity: usize, partitions: usize) -> Result<Self, TupleError> {
        let mut tcam = SoftTcam::new(capacity, partitions);
        let mut all = Vec::new();
        for (rid, r) in rules.iter() {
            let id = rid.0;
            if let Some(&existing) = tcam.dupes.get(&r.dim_values()) {
                return Err(TupleError::Duplicate { existing });
            }
            tcam.dupes.insert(r.dim_values(), id);
            tcam.rules.insert(id, *r);
            all.extend(expand(id, r));
            tcam.next_id = tcam.next_id.max(id + 1);
        }
        if all.len() > tcam.capacity {
            return Err(TupleError::CapacityExhausted {
                capacity: tcam.capacity,
                needed: all.len(),
            });
        }
        all.sort_by_key(TcamEntry::key);
        tcam.entries = all.len();
        // Even distribution: `partitions` chunks differing by at most one
        // entry, so free slots spread across the whole array.
        let k = tcam.parts.len();
        let base = all.len() / k;
        let extra = all.len() % k;
        let mut it = all.into_iter();
        for (p, part) in tcam.parts.iter_mut().enumerate() {
            let take = base + usize::from(p < extra);
            part.extend(it.by_ref().take(take));
        }
        Ok(tcam)
    }

    /// Installed rule count.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Occupied TCAM slots (expanded entries).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Provisioned slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of allocator partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Bits the TCAM occupies: the full provisioned ternary array (a
    /// hardware TCAM burns power and area on empty slots too) plus the
    /// per-rule action side table.
    pub fn memory_bits(&self) -> u64 {
        self.capacity as u64 * SLOT_BITS + self.rules.len() as u64 * SIDE_BITS
    }

    /// Iterates `(id, rule)` over every installed rule, in no particular
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Rule)> {
        self.rules.iter().map(|(&id, r)| (id, r))
    }

    /// First-match scan: the highest-priority matching rule (ties broken
    /// by lowest id) and the slots examined as the read cost.
    pub fn lookup(&self, h: &Header) -> (Option<(u32, &Rule)>, u32) {
        let q = query_cells(h);
        let mut reads = 0u32;
        for part in &self.parts {
            for e in part {
                reads = reads.saturating_add(1);
                if e.hits(&q) {
                    let Some(rule) = self.rules.get(&e.id) else {
                        unreachable!("every slot belongs to an installed rule")
                    };
                    return (Some((e.id, rule)), reads.max(1));
                }
            }
        }
        (None, reads.max(1))
    }

    /// Installs one rule; returns its id and the update cost.
    ///
    /// # Errors
    ///
    /// [`TupleError::Duplicate`] when an identical 5-tuple is installed,
    /// [`TupleError::CapacityExhausted`] when the expansion does not fit.
    pub fn insert(&mut self, rule: Rule) -> Result<(u32, TcamUpdate), TupleError> {
        if let Some(&existing) = self.dupes.get(&rule.dim_values()) {
            return Err(TupleError::Duplicate { existing });
        }
        let id = self.next_id;
        let new = expand(id, &rule);
        let needed = self.entries + new.len();
        if needed > self.capacity {
            return Err(TupleError::CapacityExhausted {
                capacity: self.capacity,
                needed,
            });
        }
        let mut up = TcamUpdate {
            entries_added: new.len() as u32,
            ..TcamUpdate::default()
        };
        for e in new {
            up.entries_moved = up.entries_moved.saturating_add(self.place(e));
        }
        self.entries = needed;
        self.dupes.insert(rule.dim_values(), id);
        self.rules.insert(id, rule);
        self.next_id += 1;
        Ok((id, up))
    }

    /// Removes one rule by id, invalidating its slots in place; returns
    /// the rule and the update cost.
    ///
    /// # Errors
    ///
    /// [`TupleError::UnknownRule`] when no rule has this id.
    pub fn remove(&mut self, id: u32) -> Result<(Rule, TcamUpdate), TupleError> {
        let rule = self
            .rules
            .remove(&id)
            .ok_or(TupleError::UnknownRule { id })?;
        self.dupes.remove(&rule.dim_values());
        let mut removed = 0u32;
        for part in &mut self.parts {
            let before = part.len();
            part.retain(|e| e.id != id);
            removed += (before - part.len()) as u32;
        }
        self.entries -= removed as usize;
        Ok((
            rule,
            TcamUpdate {
                entries_removed: removed,
                ..TcamUpdate::default()
            },
        ))
    }

    /// Owner partition and in-partition position for `e`: the first
    /// partition whose last entry sorts at or after `e` (empty
    /// partitions are holes, not owners), falling back to the end of the
    /// last occupied partition.
    fn locate(&self, e: &TcamEntry) -> (usize, usize) {
        let key = e.key();
        for (p, part) in self.parts.iter().enumerate() {
            if let Some(last) = part.last() {
                if last.key() >= key {
                    return (p, part.partition_point(|x| x.key() < key));
                }
            }
        }
        match self.parts.iter().rposition(|p| !p.is_empty()) {
            Some(p) => (p, self.parts[p].len()),
            None => (0, 0),
        }
    }

    /// Places one entry, rippling toward the nearest free slot when the
    /// owner partition is full. Returns pre-existing entries rewritten.
    fn place(&mut self, e: TcamEntry) -> u32 {
        let (p, pos) = self.locate(&e);
        if self.parts[p].len() < self.part_cap {
            let moved = (self.parts[p].len() - pos) as u32;
            self.parts[p].insert(pos, e);
            return moved;
        }
        let right = (p + 1..self.parts.len()).find(|&q| self.parts[q].len() < self.part_cap);
        let left = (0..p).rev().find(|&q| self.parts[q].len() < self.part_cap);
        match (left, right) {
            (None, None) => unreachable!("capacity pre-check guarantees a free slot"),
            (Some(l), r) if r.is_none() || p - l <= r.unwrap_or(usize::MAX) - p => {
                self.ripple_left(p, pos, e, l)
            }
            _ => self.ripple_right(p, pos, e),
        }
    }

    /// Shifts entries toward the free slot in partition `l < p`: the
    /// front entry of each full partition drops to the end of the one
    /// before it.
    fn ripple_left(&mut self, p: usize, pos: usize, e: TcamEntry, l: usize) -> u32 {
        let mut moved = 0u32;
        // When `e` precedes the whole partition it rides down itself and
        // the owner is untouched; otherwise the owner's front entry
        // drops out and everything before `pos` slides left by one.
        let mut carry = if pos == 0 {
            e
        } else {
            let front = self.parts[p].remove(0);
            self.parts[p].insert(pos - 1, e);
            moved += (pos - 1) as u32;
            front
        };
        let mut fresh = pos == 0; // `carry` is the new entry, not a move
        let mut q = p;
        loop {
            q -= 1;
            if self.parts[q].len() < self.part_cap {
                self.parts[q].push(carry);
                moved += u32::from(!fresh);
                break;
            }
            let front = self.parts[q].remove(0);
            moved += self.parts[q].len() as u32;
            self.parts[q].push(carry);
            moved += u32::from(!fresh);
            carry = front;
            fresh = false;
            debug_assert!(q > l, "a free slot exists at or before partition l");
        }
        moved
    }

    /// Shifts entries toward the first free slot right of `p`: the back
    /// entry of each full partition pops up to the front of the next.
    fn ripple_right(&mut self, p: usize, pos: usize, e: TcamEntry) -> u32 {
        let mut moved = 0u32;
        let mut carry = e;
        let mut fresh = true;
        let mut at = pos;
        let mut q = p;
        loop {
            if self.parts[q].len() < self.part_cap {
                moved += (self.parts[q].len() - at) as u32;
                self.parts[q].insert(at, carry);
                moved += u32::from(!fresh);
                break;
            }
            self.parts[q].insert(at, carry);
            moved += (self.parts[q].len() - 1 - at) as u32;
            moved += u32::from(!fresh);
            let Some(back) = self.parts[q].pop() else {
                unreachable!("partition was full before the insert")
            };
            carry = back;
            fresh = false;
            at = 0;
            q += 1;
            debug_assert!(q < self.parts.len(), "a free slot exists to the right");
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
    use spc_types::PortRange;

    fn naive<'a>(rules: impl Iterator<Item = (u32, &'a Rule)>, h: &Header) -> Option<u32> {
        rules
            .filter(|(_, r)| r.matches(h))
            .min_by_key(|&(id, r)| (r.priority, id))
            .map(|(id, _)| id)
    }

    #[test]
    fn port_prefixes_cover_their_range_exactly() {
        for (lo, hi) in [
            (0u16, 65535u16),
            (80, 80),
            (1, 10),
            (10, 1000),
            (1000, 40000),
            (1024, 65535),
            (0, 1),
            (65535, 65535),
        ] {
            let blocks = port_prefixes(lo, hi);
            assert!(
                blocks.len() <= 30,
                "[{lo},{hi}] used {} blocks",
                blocks.len()
            );
            for port in 0..=u16::MAX {
                let covered = blocks.iter().any(|&(v, m)| port & m == v);
                assert_eq!(
                    covered,
                    (lo..=hi).contains(&port),
                    "[{lo},{hi}] wrong at port {port}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_linear_scan_on_generated_sets() {
        for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
            let rules = RuleSetGenerator::new(kind, 300).seed(0xbead).generate();
            let tcam = SoftTcam::build(&rules, 1 << 20, 8).unwrap();
            assert_eq!(tcam.len(), rules.len());
            let trace = TraceGenerator::new()
                .seed(0x5eed)
                .match_fraction(0.7)
                .generate(&rules, 400);
            for h in &trace {
                let (hit, reads) = tcam.lookup(h);
                assert!(reads >= 1);
                assert_eq!(
                    hit.map(|(id, _)| id),
                    naive(tcam.iter(), h),
                    "{kind:?} disagreed at {h}"
                );
            }
        }
    }

    #[test]
    fn churn_preserves_first_match_order() {
        let rules = RuleSetGenerator::new(FilterKind::Fw, 120)
            .seed(7)
            .generate();
        let mut tcam = SoftTcam::build(&rules, 1 << 18, 4).unwrap();
        // Remove every third rule, insert replacements, re-check.
        let ids: Vec<u32> = tcam.iter().map(|(id, _)| id).collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                tcam.remove(*id).unwrap();
            }
        }
        let extra = RuleSetGenerator::new(FilterKind::Acl, 40)
            .seed(9)
            .generate();
        for (_, r) in extra.iter() {
            // Skip rules that duplicate a survivor's filter.
            let _ = tcam.insert(*r);
        }
        let trace = TraceGenerator::new().seed(11).generate(&rules, 300);
        for h in &trace {
            let (hit, _) = tcam.lookup(h);
            assert_eq!(hit.map(|(id, _)| id), naive(tcam.iter(), h), "at {h}");
        }
    }

    #[test]
    fn capacity_exhaustion_is_typed() {
        // A wide source-port range expands to many entries; 4 slots
        // cannot hold it.
        let r = Rule::builder(Priority(0))
            .src_port(PortRange::new(1000, 40000).unwrap())
            .build();
        let mut tiny = SoftTcam::new(4, 2);
        match tiny.insert(r) {
            Err(TupleError::CapacityExhausted {
                capacity: 4,
                needed,
            }) => {
                assert!(needed > 4);
            }
            other => panic!("expected CapacityExhausted, got {other:?}"),
        }
        // The failed insert must leave the TCAM unchanged.
        assert!(tiny.is_empty());
        assert_eq!(tiny.entry_count(), 0);
        let mut rules = RuleSet::new();
        rules.push(r);
        assert!(matches!(
            SoftTcam::build(&rules, 4, 2),
            Err(TupleError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn full_partition_insert_ripples_and_reports_moves() {
        // Capacity 8 in 2 partitions of 4. Fill the first partition's
        // priority region, then insert a rule that must land in front.
        let mut tcam = SoftTcam::new(8, 2);
        for p in 10..16u32 {
            let r = Rule::builder(Priority(p))
                .dst_port(PortRange::exact(p as u16))
                .build();
            tcam.insert(r).unwrap();
        }
        assert_eq!(tcam.entry_count(), 6);
        // Priority 0 sorts before everything: partition 0 is full (4
        // entries), so the insert must shift entries across partitions.
        let (_, up) = tcam
            .insert(
                Rule::builder(Priority(0))
                    .dst_port(PortRange::exact(99))
                    .build(),
            )
            .unwrap();
        assert_eq!(up.entries_added, 1);
        assert!(up.entries_moved > 0, "full owner partition must shift");
        // Order is intact: the new top-priority rule wins its header.
        let h = Header::new([0; 4].into(), [0; 4].into(), 0, 99, 0);
        let (hit, _) = tcam.lookup(&h);
        assert_eq!(hit.map(|(_, r)| r.priority), Some(Priority(0)));
    }

    #[test]
    fn remove_invalidates_in_place() {
        let mut tcam = SoftTcam::new(64, 4);
        let wide = Rule::builder(Priority(1))
            .src_port(PortRange::new(4, 11).unwrap())
            .build();
        let (id, up) = tcam.insert(wide).unwrap();
        assert!(up.entries_added >= 2, "range [4,11] needs several blocks");
        let (_, down) = tcam.remove(id).unwrap();
        assert_eq!(down.entries_removed, up.entries_added);
        assert_eq!(down.entries_moved, 0, "removes clear valid bits, no shift");
        assert!(tcam.is_empty());
        assert!(matches!(
            tcam.remove(id),
            Err(TupleError::UnknownRule { .. })
        ));
        // Ids are never reused.
        let (id2, _) = tcam.insert(Rule::any(Priority(0))).unwrap();
        assert!(id2 > id);
    }

    #[test]
    fn duplicate_filter_is_rejected() {
        let mut tcam = SoftTcam::new(64, 4);
        let r = Rule::builder(Priority(3))
            .dst_port(PortRange::exact(443))
            .build();
        let (id, _) = tcam.insert(r).unwrap();
        let mut dup = r;
        dup.priority = Priority(9);
        assert_eq!(
            tcam.insert(dup),
            Err(TupleError::Duplicate { existing: id })
        );
        assert_eq!(tcam.len(), 1);
    }

    #[test]
    fn memory_model_charges_provisioned_slots() {
        let tcam = SoftTcam::new(1024, 8);
        assert_eq!(tcam.memory_bits(), 1024 * SLOT_BITS);
        assert_eq!(tcam.capacity(), 1024);
        assert_eq!(tcam.partitions(), 8);
    }
}
