//! Tuple-space search: rules grouped by hash-mask signature, one
//! open-addressed hash table per tuple, probed in best-priority order.

use crate::TupleError;
use spc_types::{Header, MaskSummary, Priority, Rule, RuleSet};
use std::collections::HashMap;

/// Approximate storage of one installed rule (5-tuple + priority +
/// action + id), for the memory model.
const RULE_BITS: u64 = 256;
/// Slot header (occupancy + cached hash) in the memory model.
const SLOT_BITS: u64 = 64;
/// One bucket's key — seven 16-bit masked query values.
const KEY_BITS: u64 = 7 * 16;

/// Cost accounting for one [`TupleSpace`] update, mapped by the engine
/// layer onto a §V.A-style `UpdateReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TssUpdate {
    /// An insert opened a tuple this signature did not have yet.
    pub tuple_created: bool,
    /// A remove emptied and freed the rule's tuple.
    pub tuple_freed: bool,
    /// Hash-table slots written: the touched bucket plus any slots moved
    /// by a rehash (insert growth) or a backward-shift deletion.
    pub slots_written: u32,
}

/// One installed rule inside a tuple's table.
#[derive(Debug, Clone)]
struct Entry {
    id: u32,
    rule: Rule,
}

/// One hash bucket: all rules of the tuple whose masked values collide
/// exactly (they can differ only in range dimensions, which the
/// signature excludes). Entries stay sorted by `(priority, id)`, so the
/// first match in a bucket is the bucket's best match.
#[derive(Debug, Clone)]
struct Bucket {
    key: [u16; 7],
    entries: Vec<Entry>,
}

/// FNV-1a over the seven masked 16-bit query values.
fn hash_key(key: &[u16; 7]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in key {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Open-addressed (linear probing, backward-shift deletion) table of
/// buckets. Power-of-two capacity, load kept under 3/4 so every probe
/// chain ends at an empty slot.
#[derive(Debug, Clone)]
struct Table {
    slots: Vec<Option<Bucket>>,
    buckets: usize,
}

impl Table {
    fn new(slots_hint: usize) -> Self {
        let cap = slots_hint.max(4).next_power_of_two();
        Table {
            slots: vec![None; cap],
            buckets: 0,
        }
    }

    /// Walks the probe chain for `key`: the matching slot, or the empty
    /// slot that terminates the chain. Returns `(slot, probe_steps,
    /// found)`.
    fn find_slot(&self, key: &[u16; 7]) -> (usize, u32, bool) {
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        let mut steps = 1u32;
        loop {
            match &self.slots[i] {
                Some(b) if b.key == *key => return (i, steps, true),
                None => return (i, steps, false),
                Some(_) => {
                    i = (i + 1) & mask;
                    steps = steps.saturating_add(1);
                }
            }
        }
    }

    /// Doubles the capacity and reinserts every bucket; returns the
    /// number of slots written.
    fn grow(&mut self) -> u32 {
        let old = std::mem::replace(&mut self.slots, vec![None; 0]);
        self.slots = vec![None; old.len() * 2];
        let mut moved = 0u32;
        for b in old.into_iter().flatten() {
            let (i, _, _) = self.find_slot(&b.key);
            self.slots[i] = Some(b);
            moved = moved.saturating_add(1);
        }
        moved
    }

    /// Removes slot `i` and backward-shifts the tail of its probe chain
    /// so that no chain crosses an artificial hole (no tombstones).
    /// Returns slots written.
    fn erase_slot(&mut self, mut i: usize) -> u32 {
        let mask = self.slots.len() - 1;
        self.slots[i] = None;
        let mut written = 1u32;
        let mut j = (i + 1) & mask;
        while let Some(b) = self.slots[j].take() {
            let home = (hash_key(&b.key) as usize) & mask;
            // `b` may move into the hole at `i` iff `i` lies on its
            // probe path, i.e. the cyclic distance home→j covers i→j.
            if j.wrapping_sub(home) & mask >= j.wrapping_sub(i) & mask {
                self.slots[i] = Some(b);
                written = written.saturating_add(1);
                i = j;
            } else {
                self.slots[j] = Some(b);
            }
            j = (j + 1) & mask;
        }
        written
    }
}

/// One tuple: every rule whose hash-mask signature equals `sig`, indexed
/// by masked query value, plus the best (minimum) installed priority for
/// probe-order pruning.
#[derive(Debug, Clone)]
struct Tuple {
    sig: MaskSummary,
    table: Table,
    rules: usize,
    best: Priority,
}

impl Tuple {
    fn recompute_best(&mut self) {
        let mut best = Priority(u32::MAX);
        for b in self.slots() {
            for e in &b.entries {
                best = best.min(e.rule.priority);
            }
        }
        self.best = best;
    }

    fn slots(&self) -> impl Iterator<Item = &Bucket> {
        self.table.slots.iter().flatten()
    }
}

/// Tuple-space search over rule mask signatures.
///
/// Rules with the same [`MaskSummary::hash_signature`] share a *tuple*;
/// inside a tuple, masked equality of the seven query values is a
/// necessary condition for a match (exact for every non-range
/// dimension), so each tuple is one hash-table probe. Tuples are probed
/// in ascending best-priority order and the scan stops as soon as the
/// current winner strictly outranks every remaining tuple.
///
/// Ids are monotonic and never reused; the `n` rules of
/// [`TupleSpace::build`] get ids `0..n` in rule-set order.
///
/// ```
/// use spc_tuplespace::TupleSpace;
/// use spc_types::{Header, PortRange, Priority, ProtoSpec, Rule};
///
/// let mut ts = TupleSpace::new(8);
/// let (web, _) = ts
///     .insert(
///         Rule::builder(Priority(0))
///             .dst_port(PortRange::exact(80))
///             .proto(ProtoSpec::Exact(6))
///             .build(),
///     )
///     .unwrap();
/// let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 999, 80, 6);
/// let (hit, _reads) = ts.lookup(&h);
/// assert_eq!(hit.map(|(id, _)| id), Some(web));
/// ```
#[derive(Debug, Clone)]
pub struct TupleSpace {
    tuples: Vec<Option<Tuple>>,
    free: Vec<usize>,
    by_sig: HashMap<[u16; 7], usize>,
    /// Live tuple indices sorted by `(best priority, index)` — the
    /// pruning index the lookup walks.
    order: Vec<usize>,
    /// Rule id → (tuple index, bucket key).
    locs: HashMap<u32, (usize, [u16; 7])>,
    next_id: u32,
    len: usize,
    slots_hint: usize,
}

impl TupleSpace {
    /// An empty tuple space; `slots_hint` seeds each new tuple's table
    /// capacity (rounded up to a power of two, minimum 4).
    pub fn new(slots_hint: usize) -> Self {
        TupleSpace {
            tuples: Vec::new(),
            free: Vec::new(),
            by_sig: HashMap::new(),
            order: Vec::new(),
            locs: HashMap::new(),
            next_id: 0,
            len: 0,
            slots_hint,
        }
    }

    /// Builds from a rule set; rule `i` gets id `i`.
    ///
    /// # Errors
    ///
    /// [`TupleError::Duplicate`] when two rules share all seven match
    /// dimensions.
    pub fn build(rules: &RuleSet, slots_hint: usize) -> Result<Self, TupleError> {
        let mut ts = TupleSpace::new(slots_hint);
        for (_, r) in rules.iter() {
            ts.insert(*r)?;
        }
        Ok(ts)
    }

    /// Installed rule count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live tuples (distinct hash-mask signatures).
    pub fn tuple_count(&self) -> usize {
        self.by_sig.len()
    }

    /// Bits of memory the structure occupies in the hardware model:
    /// slot headers, bucket keys and stored rules.
    pub fn memory_bits(&self) -> u64 {
        let mut bits = 0u64;
        for t in self.tuples.iter().flatten() {
            bits += t.table.slots.len() as u64 * SLOT_BITS;
            for b in t.slots() {
                bits += KEY_BITS + b.entries.len() as u64 * RULE_BITS;
            }
        }
        bits
    }

    /// Iterates `(id, rule)` over every installed rule, in no particular
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Rule)> {
        self.tuples
            .iter()
            .flatten()
            .flat_map(Tuple::slots)
            .flat_map(|b| b.entries.iter().map(|e| (e.id, &e.rule)))
    }

    /// The highest-priority matching rule (ties broken by lowest id) and
    /// the memory reads the probe cost: one read per tuple descriptor,
    /// probe step and bucket entry examined.
    pub fn lookup(&self, h: &Header) -> (Option<(u32, &Rule)>, u32) {
        let mut best: Option<(Priority, u32, &Rule)> = None;
        let mut reads = 0u32;
        for &ti in &self.order {
            let Some(t) = self.tuples[ti].as_ref() else {
                continue;
            };
            if let Some((bp, _, _)) = best {
                // `order` ascends by best priority: once the winner
                // strictly outranks this tuple's best, it outranks every
                // remaining tuple. Equal priorities must still be probed
                // (a lower id could win the tie).
                if bp < t.best {
                    break;
                }
            }
            reads = reads.saturating_add(1);
            let key = t.sig.masked_query(h);
            let (slot, steps, found) = t.table.find_slot(&key);
            reads = reads.saturating_add(steps);
            if !found {
                continue;
            }
            let Some(bucket) = t.slots_at(slot) else {
                continue;
            };
            for e in &bucket.entries {
                if let Some((bp, bid, _)) = best {
                    // Entries ascend by (priority, id): stop once the
                    // current winner beats everything left in the bucket.
                    if (bp, bid) < (e.rule.priority, e.id) {
                        break;
                    }
                }
                reads = reads.saturating_add(1);
                if e.rule.matches(h) {
                    best = Some((e.rule.priority, e.id, &e.rule));
                    break;
                }
            }
        }
        (best.map(|(_, id, r)| (id, r)), reads.max(1))
    }

    /// Installs one rule; returns its id and the update cost.
    ///
    /// # Errors
    ///
    /// [`TupleError::Duplicate`] when an identical 5-tuple is installed.
    pub fn insert(&mut self, rule: Rule) -> Result<(u32, TssUpdate), TupleError> {
        let sig = MaskSummary::hash_signature(&rule);
        let key = sig.masked_rule(&rule);
        let mut up = TssUpdate::default();

        let ti = match self.by_sig.get(&sig.masks) {
            Some(&ti) => ti,
            None => {
                let t = Tuple {
                    sig,
                    table: Table::new(self.slots_hint),
                    rules: 0,
                    best: rule.priority,
                };
                let ti = match self.free.pop() {
                    Some(i) => {
                        self.tuples[i] = Some(t);
                        i
                    }
                    None => {
                        self.tuples.push(Some(t));
                        self.tuples.len() - 1
                    }
                };
                self.by_sig.insert(sig.masks, ti);
                self.order.push(ti);
                up.tuple_created = true;
                ti
            }
        };

        let id = self.next_id;
        let Some(t) = self.tuples[ti].as_mut() else {
            unreachable!("by_sig and free agree on live tuples")
        };

        // Grow before probing so the chain we write stays valid.
        if (t.table.buckets + 1) * 4 > t.table.slots.len() * 3 {
            up.slots_written = up.slots_written.saturating_add(t.table.grow());
        }
        let (slot, _, found) = t.table.find_slot(&key);
        if found {
            let Some(bucket) = t.table.slots[slot].as_mut() else {
                unreachable!("find_slot reported a live bucket")
            };
            // Identical dim_values always share signature and key, so
            // this bucket-local scan is a complete duplicate check.
            if let Some(e) = bucket
                .entries
                .iter()
                .find(|e| e.rule.dim_values() == rule.dim_values())
            {
                // Roll back a tuple opened just for this rejected rule.
                let existing = e.id;
                if up.tuple_created {
                    self.drop_tuple(ti, &sig);
                }
                return Err(TupleError::Duplicate { existing });
            }
            let pos = bucket
                .entries
                .partition_point(|e| (e.rule.priority, e.id) < (rule.priority, id));
            bucket.entries.insert(pos, Entry { id, rule });
        } else {
            t.table.slots[slot] = Some(Bucket {
                key,
                entries: vec![Entry { id, rule }],
            });
            t.table.buckets += 1;
        }
        up.slots_written = up.slots_written.saturating_add(1);

        t.rules += 1;
        t.best = t.best.min(rule.priority);
        self.next_id += 1;
        self.len += 1;
        self.locs.insert(id, (ti, key));
        self.sort_order();
        Ok((id, up))
    }

    /// Removes one rule by id; returns the rule and the update cost.
    ///
    /// # Errors
    ///
    /// [`TupleError::UnknownRule`] when no rule has this id.
    pub fn remove(&mut self, id: u32) -> Result<(Rule, TssUpdate), TupleError> {
        let (ti, key) = self
            .locs
            .remove(&id)
            .ok_or(TupleError::UnknownRule { id })?;
        let Some(t) = self.tuples[ti].as_mut() else {
            unreachable!("locs points at a live tuple")
        };
        let mut up = TssUpdate::default();
        let (slot, _, found) = t.table.find_slot(&key);
        debug_assert!(found, "locs points at a live bucket");
        let Some(bucket) = t.table.slots[slot].as_mut() else {
            unreachable!("locs points at a live bucket")
        };
        let Some(pos) = bucket.entries.iter().position(|e| e.id == id) else {
            unreachable!("locs points at a live entry")
        };
        let rule = bucket.entries.remove(pos).rule;
        if bucket.entries.is_empty() {
            up.slots_written = up.slots_written.saturating_add(t.table.erase_slot(slot));
            t.table.buckets -= 1;
        } else {
            up.slots_written = up.slots_written.saturating_add(1);
        }
        t.rules -= 1;
        self.len -= 1;
        if t.rules == 0 {
            let sig = t.sig;
            self.drop_tuple(ti, &sig);
            up.tuple_freed = true;
        } else if rule.priority == t.best {
            t.recompute_best();
        }
        self.sort_order();
        Ok((rule, up))
    }

    fn drop_tuple(&mut self, ti: usize, sig: &MaskSummary) {
        self.by_sig.remove(&sig.masks);
        self.order.retain(|&i| i != ti);
        self.tuples[ti] = None;
        self.free.push(ti);
    }

    fn sort_order(&mut self) {
        let tuples = &self.tuples;
        self.order
            .sort_by_key(|&i| (tuples[i].as_ref().map_or(u32::MAX, |t| t.best.0), i));
    }
}

impl Tuple {
    fn slots_at(&self, slot: usize) -> Option<&Bucket> {
        self.table.slots[slot].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
    use spc_types::{Action, PortRange, Prefix, ProtoSpec};

    fn naive<'a>(rules: impl Iterator<Item = (u32, &'a Rule)>, h: &Header) -> Option<u32> {
        rules
            .filter(|(_, r)| r.matches(h))
            .min_by_key(|&(id, r)| (r.priority, id))
            .map(|(id, _)| id)
    }

    #[test]
    fn agrees_with_linear_scan_on_generated_sets() {
        for kind in [FilterKind::Acl, FilterKind::Fw, FilterKind::Ipc] {
            let rules = RuleSetGenerator::new(kind, 300).seed(0xbead).generate();
            let ts = TupleSpace::build(&rules, 8).unwrap();
            assert_eq!(ts.len(), rules.len());
            let trace = TraceGenerator::new()
                .seed(0x5eed)
                .match_fraction(0.7)
                .generate(&rules, 400);
            for h in &trace {
                let (hit, reads) = ts.lookup(h);
                assert!(reads >= 1);
                assert_eq!(
                    hit.map(|(id, _)| id),
                    naive(ts.iter(), h),
                    "{kind:?} disagreed at {h}"
                );
            }
        }
    }

    #[test]
    fn duplicate_is_detected_and_leaves_no_ghost_tuple() {
        let mut ts = TupleSpace::new(4);
        let r = Rule::builder(Priority(0))
            .dst_port(PortRange::exact(80))
            .build();
        let (id, up) = ts.insert(r).unwrap();
        assert!(up.tuple_created);
        let mut dup = r;
        dup.priority = Priority(9); // priority is not part of the filter
        dup.action = Action::Forward(3);
        assert_eq!(ts.insert(dup), Err(TupleError::Duplicate { existing: id }));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.tuple_count(), 1);
        // A failed insert with a *fresh* signature must not leak a tuple.
        let mut other = Rule::builder(Priority(1))
            .proto(ProtoSpec::Exact(6))
            .build();
        let (oid, _) = ts.insert(other).unwrap();
        other.priority = Priority(2);
        assert_eq!(
            ts.insert(other),
            Err(TupleError::Duplicate { existing: oid })
        );
        assert_eq!(ts.tuple_count(), 2);
    }

    #[test]
    fn churn_keeps_probe_chains_intact() {
        // Insert many rules into one tuple (same signature: exact dst
        // port), then remove half in an order that exercises the
        // backward-shift deletion, and verify every survivor still
        // resolves.
        let mut ts = TupleSpace::new(4);
        let mut ids = Vec::new();
        for p in 0..200u16 {
            let r = Rule::builder(Priority(u32::from(p)))
                .dst_port(PortRange::exact(p))
                .build();
            ids.push(ts.insert(r).unwrap().0);
        }
        assert_eq!(ts.tuple_count(), 1, "one signature, one tuple");
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                ts.remove(id).unwrap();
            }
        }
        assert_eq!(ts.len(), 100);
        for p in 0..200u16 {
            let h = Header::new([0; 4].into(), [0; 4].into(), 1, p, 6);
            let (hit, _) = ts.lookup(&h);
            assert_eq!(hit.is_some(), p % 2 == 1, "port {p}");
        }
        assert!(matches!(
            ts.remove(ids[0]),
            Err(TupleError::UnknownRule { .. })
        ));
    }

    #[test]
    fn one_distinct_mask_per_rule_degenerates_to_tuple_per_rule() {
        // 17 distinct source prefix lengths → 17 signatures → 17 tuples.
        let mut ts = TupleSpace::new(4);
        for len in 0..=16u8 {
            let r = Rule::builder(Priority(u32::from(len)))
                .src_ip(Prefix::masked(0x0a00_0000, len))
                .build();
            ts.insert(r).unwrap();
        }
        assert_eq!(ts.tuple_count(), ts.len());
        // Pruning still terminates correctly: the /16 rule has the worst
        // priority, the /0 the best (priority 0 wins everywhere).
        let h = Header::new([10, 0, 0, 1].into(), [1, 1, 1, 1].into(), 1, 1, 6);
        let (hit, _) = ts.lookup(&h);
        assert_eq!(hit.map(|(_, r)| r.priority), Some(Priority(0)));
    }

    #[test]
    fn pruning_respects_priority_ties_across_tuples() {
        // Two tuples with equal best priority: the lower id must win,
        // whichever tuple the probe order visits first.
        let mut ts = TupleSpace::new(4);
        let (a, _) = ts.insert(Rule::any(Priority(5))).unwrap();
        let (_b, _) = ts
            .insert(
                Rule::builder(Priority(5))
                    .proto(ProtoSpec::Exact(6))
                    .build(),
            )
            .unwrap();
        let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1, 1, 6);
        let (hit, _) = ts.lookup(&h);
        assert_eq!(hit.map(|(id, _)| id), Some(a));
    }

    #[test]
    fn update_costs_are_reported() {
        let mut ts = TupleSpace::new(4);
        let (id, up) = ts.insert(Rule::any(Priority(0))).unwrap();
        assert!(up.tuple_created);
        assert!(up.slots_written >= 1);
        let (_, up) = ts.remove(id).unwrap();
        assert!(up.tuple_freed);
        assert!(up.slots_written >= 1);
        assert!(ts.is_empty());
        assert_eq!(ts.memory_bits(), 0);
        // Ids are never reused.
        let (id2, _) = ts.insert(Rule::any(Priority(0))).unwrap();
        assert!(id2 > id);
    }
}
