//! # spc-tuplespace — update-first classifier structures
//!
//! The configurable architecture's §V.A selling point is fast incremental
//! updates. This crate holds the two classic *update-first* designs the
//! paper's comparison tables omit, as pure data structures behind the
//! `spc-engine` registry adapters:
//!
//! * [`TupleSpace`] — tuple-space search (Srinivasan, Suri & Varghese,
//!   SIGCOMM '99; the software path of Open vSwitch): rules grouped by
//!   their [`spc_types::MaskSummary::hash_signature`] into *tuples*, one
//!   open-addressed hash table per tuple keyed by the masked query
//!   values. A lookup probes tuples in best-priority order and stops as
//!   soon as the current winner outranks every remaining tuple; an
//!   update touches exactly one tuple's table plus the pruning index.
//! * [`SoftTcam`] — a software model of a priority-ordered TCAM:
//!   mask/value entries (port ranges expanded to prefixes) scanned
//!   first-match, with a partitioned free-slot allocator whose
//!   shift-on-insert cost is surfaced per update ([`TcamUpdate`]).
//!
//! Both structures allocate **monotonic, never-reused** rule ids (the
//! registry-wide churn-oracle convention) and report per-update costs
//! through [`TssUpdate`] / [`TcamUpdate`], which the engine layer maps
//! onto §V.A-style `UpdateReport`s.

mod tcam;
mod tss;

pub use tcam::{port_prefixes, SoftTcam, TcamEntry, TcamUpdate};
pub use tss::{TssUpdate, TupleSpace};

use std::fmt;

/// Typed error for tuple-space / TCAM updates and builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleError {
    /// A rule identical in every match dimension is already installed.
    Duplicate {
        /// Id of the already-installed rule.
        existing: u32,
    },
    /// No installed rule has this id.
    UnknownRule {
        /// The offending id.
        id: u32,
    },
    /// The structure cannot hold the update: every slot is occupied.
    CapacityExhausted {
        /// Configured entry capacity.
        capacity: usize,
        /// Entries the rejected operation would have required.
        needed: usize,
    },
}

impl fmt::Display for TupleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleError::Duplicate { existing } => {
                write!(f, "identical rule already installed as r{existing}")
            }
            TupleError::UnknownRule { id } => write!(f, "unknown rule r{id}"),
            TupleError::CapacityExhausted { capacity, needed } => {
                write!(
                    f,
                    "capacity exhausted: {needed} entries needed, {capacity} provisioned"
                )
            }
        }
    }
}

impl std::error::Error for TupleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(TupleError::Duplicate { existing: 3 }
            .to_string()
            .contains("r3"));
        assert!(TupleError::UnknownRule { id: 9 }.to_string().contains("r9"));
        let e = TupleError::CapacityExhausted {
            capacity: 4,
            needed: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
    }
}
