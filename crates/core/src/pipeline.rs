//! Timing model of the 4-phase lookup pipeline (paper Fig 3, §V.B).
//!
//! * **Phase 1** (1 cycle): `Lookup_s` strobes; the header is split into
//!   segments and steered to the selected engines.
//! * **Phase 2** (engine-dependent): the seven single-field lookups run in
//!   parallel; the phase's latency is the slowest engine (6 cycles for the
//!   pipelined MBT, the tree depth for BST, 2 for port registers, 1 for
//!   the protocol LUT).
//! * **Phase 3** (1 cycle): the per-dimension HPMLs are combined into the
//!   merged key ("one more cycle for the entire lookup process").
//! * **Phase 4** (2 cycles + extra probes): hash and Rule Filter read.
//!
//! Throughput is governed by the **initiation interval** (II), not the
//! latency: phases 1, 3 and 4 are pipelined, so II = 1 when every engine is
//! pipelined (MBT mode ⇒ 133.51 M lookups/s) and II = the slowest
//! non-pipelined engine otherwise (BST mode ⇒ ~16 cycles/packet).

use spc_hwsim::ClockDomain;

/// Cycle cost of phase 1 (header split + engine select).
pub const PHASE1_CYCLES: u32 = 1;
/// Cycle cost of phase 3 (label combination).
pub const PHASE3_CYCLES: u32 = 1;
/// Base cycle cost of phase 4 (hash + rule read, "two more cycles").
pub const PHASE4_BASE_CYCLES: u32 = 2;

/// Timing of one lookup through the 4-phase pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupTiming {
    /// Cycles per phase: split, parallel field lookup, combination,
    /// rule-filter access (including collision probes).
    pub phase_cycles: [u32; 4],
    /// Initiation interval — cycles between back-to-back packets.
    pub initiation_interval: u32,
}

impl LookupTiming {
    /// Builds the timing from the engine phase and rule-filter probing.
    ///
    /// `engine_latency` is the slowest engine's cycle count,
    /// `engine_ii` the slowest engine's initiation interval, and
    /// `rf_probe_reads` the Rule Filter words read in phase 4 (≥1 on any
    /// completed lookup; collision probes and extra combination probes
    /// lengthen the phase).
    pub fn new(engine_latency: u32, engine_ii: u32, rf_probe_reads: u32) -> Self {
        let phase4 = PHASE4_BASE_CYCLES + rf_probe_reads.saturating_sub(1);
        LookupTiming {
            phase_cycles: [PHASE1_CYCLES, engine_latency, PHASE3_CYCLES, phase4],
            initiation_interval: engine_ii.max(rf_probe_reads.max(1)),
        }
    }

    /// End-to-end latency in cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.phase_cycles.iter().sum()
    }

    /// Sustained throughput in Gbps at the given packet size.
    pub fn throughput_gbps(&self, clock: ClockDomain, packet_bytes: u32) -> f64 {
        clock.throughput_gbps(f64::from(self.initiation_interval), packet_bytes)
    }

    /// Sustained lookups per second.
    pub fn lookups_per_sec(&self, clock: ClockDomain) -> f64 {
        clock.lookups_per_sec(f64::from(self.initiation_interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_hwsim::MIN_PACKET_BYTES;

    #[test]
    fn mbt_mode_matches_paper() {
        // MBT: 6-cycle engine latency, pipelined (II=1), single probe.
        let t = LookupTiming::new(6, 1, 1);
        assert_eq!(t.phase_cycles, [1, 6, 1, 2]);
        assert_eq!(t.latency_cycles(), 10);
        assert_eq!(t.initiation_interval, 1);
        let gbps = t.throughput_gbps(ClockDomain::stratix_v(), MIN_PACKET_BYTES);
        assert!((gbps - 42.73).abs() < 0.02, "got {gbps}");
    }

    #[test]
    fn bst_mode_matches_paper() {
        // BST: ~15-cycle engine, not pipelined -> II 16 incl. probe.
        let t = LookupTiming::new(15, 15, 16);
        assert_eq!(t.initiation_interval, 16);
        let gbps = t.throughput_gbps(ClockDomain::stratix_v(), MIN_PACKET_BYTES);
        assert!((gbps - 2.67).abs() < 0.01, "got {gbps}");
    }

    #[test]
    fn collision_probes_stretch_phase4() {
        let t = LookupTiming::new(6, 1, 3);
        assert_eq!(t.phase_cycles[3], 4);
        assert_eq!(t.initiation_interval, 3);
    }

    #[test]
    fn zero_probe_lookup_never_underflows() {
        let t = LookupTiming::new(6, 1, 0);
        assert_eq!(t.phase_cycles[3], PHASE4_BASE_CYCLES);
        assert_eq!(t.initiation_interval, 1);
    }
}
