//! Error type of the configurable classifier.

use spc_lookup::EngineError;
use std::fmt;

/// Error returned by [`crate::Classifier`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassifierError {
    /// A lookup engine or label memory ran out of provisioned capacity.
    Capacity {
        /// What overflowed.
        what: String,
    },
    /// The Rule Filter memory could not accommodate the rule (hash region
    /// full even after probing).
    RuleFilterFull,
    /// The rule id is not installed.
    UnknownRule {
        /// The offending id.
        id: u32,
    },
    /// A rule identical in all seven label dimensions is already installed
    /// at a different id (the architecture stores one rule per label key).
    DuplicateKey {
        /// The already-installed rule id.
        existing: u32,
    },
    /// Internal engine failure.
    Engine(EngineError),
}

impl fmt::Display for ClassifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifierError::Capacity { what } => write!(f, "capacity exhausted in {what}"),
            ClassifierError::RuleFilterFull => write!(f, "rule filter memory is full"),
            ClassifierError::UnknownRule { id } => write!(f, "rule r{id} is not installed"),
            ClassifierError::DuplicateKey { existing } => {
                write!(f, "identical rule already installed as r{existing}")
            }
            ClassifierError::Engine(e) => write!(f, "lookup engine error: {e}"),
        }
    }
}

impl std::error::Error for ClassifierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClassifierError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ClassifierError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Capacity { what } => ClassifierError::Capacity { what },
            other => ClassifierError::Engine(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = ClassifierError::from(EngineError::NotFound);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("engine"));
        assert!(ClassifierError::RuleFilterFull.to_string().contains("full"));
        assert!(ClassifierError::UnknownRule { id: 3 }
            .to_string()
            .contains("r3"));
        let cap = ClassifierError::from(EngineError::Capacity { what: "x".into() });
        assert!(matches!(cap, ClassifierError::Capacity { .. }));
    }
}
