//! The configurable packet classifier (paper §III, Fig 2).
//!
//! [`Classifier`] bundles the software controller (label tables with
//! reference counters, Fig 4) and the hardware data plane (seven parallel
//! field engines, per-dimension label memories, the hash unit and the Rule
//! Filter). The `IPalg_s` signal is [`Classifier::set_ip_alg`]; rule
//! install/remove follow the paper's incremental-update protocol; and
//! every classify returns full cycle/memory-access accounting so the
//! evaluation harness can regenerate Tables V–VII.

use crate::config::{ArchConfig, CombineStrategy, IpAlg};
use crate::error::ClassifierError;
use crate::labels::{InsertOutcome, LabelTable, RemoveOutcome};
use crate::memory::{BlockUsage, MemoryReport, SharingReport};
use crate::pipeline::LookupTiming;
use crate::rulefilter::{RuleFilter, StoredRule};
use spc_lookup::{
    FieldEngine, Label, LabelEntry, LabelList, LabelStore, MbtConfig, MultiBitTrie, PortRegisters,
    ProtocolLut, RangeBst,
};
use spc_types::{Dim, Header, Priority, Rule, RuleId, ALL_DIMS, IP_SEG_DIMS};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// One dimension's hardware unit: the active engine, its label memory and
/// the controller-side label table.
#[derive(Debug)]
struct DimUnit {
    dim: Dim,
    engine: Box<dyn FieldEngine>,
    store: LabelStore,
    table: LabelTable,
}

/// A classification hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Id of the highest-priority matching rule.
    pub rule_id: RuleId,
    /// The rule itself (with action).
    pub rule: Rule,
}

/// Full result of one classify, with hardware-model accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The HPMR, or `None` on a miss.
    pub hit: Option<Hit>,
    /// Pipeline timing of this lookup.
    pub timing: LookupTiming,
    /// Memory words read by the field engines + label memories (phase 2).
    pub engine_reads: u32,
    /// Memory words read in the Rule Filter (phase 4).
    pub rule_filter_reads: u32,
    /// Label combinations probed (1 = the paper's fast path sufficed).
    pub combos_probed: u32,
}

impl Classification {
    /// Total memory reads across all phases.
    pub fn total_reads(&self) -> u32 {
        self.engine_reads + self.rule_filter_reads
    }
}

/// Report of one rule install/remove (paper §V.A accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// The affected rule.
    pub rule_id: RuleId,
    /// Labels newly created (engines had to store a value).
    pub created_labels: u32,
    /// Labels freed (engines had to delete a value).
    pub freed_labels: u32,
    /// Hardware memory write cycles: 2 rule-data cycles + 1 hash cycle
    /// (§V.A) plus every structural/label-memory word written.
    pub hw_write_cycles: u64,
}

/// An installed rule (controller bookkeeping).
#[derive(Debug, Clone, Copy)]
struct Installed {
    rule: Rule,
    key: u128,
}

/// Reusable working memory for [`Classifier::classify_with`].
///
/// One lookup needs the seven phase-2 label lists plus (in
/// [`CombineStrategy::PriorityProbe`] mode) the best-first frontier. A
/// batch caller allocates this once and the per-packet cost drops to
/// buffer clears — the amortisation behind `spc-engine`'s batch path.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    /// Phase-2 output: one label list per dimension. The lists themselves
    /// are reused across lookups via `FieldEngine::lookup_into`, so after
    /// warm-up not even the per-dimension label vectors reallocate.
    lists: Vec<LabelList>,
    /// Priority-sorted copies of the lists (probe order).
    dims: [Vec<LabelEntry>; 7],
    /// Best-first frontier, keyed by priority lower bound.
    heap: BinaryHeap<std::cmp::Reverse<(u32, [u16; 7])>>,
    /// Frontier dedup.
    visited: HashSet<[u16; 7]>,
}

impl ClassifyScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        ClassifyScratch::default()
    }
}

/// The configurable label-based packet classifier.
///
/// ```
/// use spc_core::{Classifier, ArchConfig};
/// use spc_types::{Rule, Priority, PortRange, ProtoSpec, Action, Header};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cls = Classifier::new(ArchConfig::default());
/// let web = Rule::builder(Priority(0))
///     .dst_port(PortRange::exact(80))
///     .proto(ProtoSpec::Exact(6))
///     .action(Action::Forward(1))
///     .build();
/// let id = cls.insert(web)?.rule_id;
/// let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 999, 80, 6);
/// let c = cls.classify(&h);
/// assert_eq!(c.hit.unwrap().rule_id, id);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Classifier {
    config: ArchConfig,
    dims: Vec<DimUnit>,
    rule_filter: RuleFilter,
    rules: HashMap<u32, Installed>,
    next_id: u32,
}

impl Classifier {
    /// Builds an empty classifier for the given configuration.
    pub fn new(config: ArchConfig) -> Self {
        let dims = ALL_DIMS
            .iter()
            .map(|&dim| DimUnit {
                dim,
                engine: Self::make_engine(&config, dim),
                store: Self::make_store(&config, dim),
                table: LabelTable::new(Self::label_width(&config, dim)),
            })
            .collect();
        let rule_filter =
            RuleFilter::new(config.rule_filter_addr_bits, config.label_widths.key_bits());
        Classifier {
            config,
            dims,
            rule_filter,
            rules: HashMap::new(),
            next_id: 0,
        }
    }

    fn label_width(config: &ArchConfig, dim: Dim) -> u8 {
        match dim {
            d if d.is_ip_segment() => config.label_widths.ip,
            Dim::Proto => config.label_widths.proto,
            _ => config.label_widths.port,
        }
    }

    fn make_engine(config: &ArchConfig, dim: Dim) -> Box<dyn FieldEngine> {
        match dim {
            d if d.is_ip_segment() => match config.ip_alg {
                IpAlg::Mbt => Box::new(MultiBitTrie::new(MbtConfig::segment_paper(
                    config.mbt_leaf_nodes,
                ))),
                IpAlg::Bst => Box::new(RangeBst::new(config.bst_max_intervals)),
            },
            Dim::Proto => Box::new(ProtocolLut::new()),
            _ => Box::new(PortRegisters::new(config.port_registers)),
        }
    }

    fn make_store(config: &ArchConfig, dim: Dim) -> LabelStore {
        let (cap, width) = match dim {
            d if d.is_ip_segment() => (config.ip_label_entries, config.label_widths.ip),
            Dim::Proto => (
                1usize << config.label_widths.proto,
                config.label_widths.proto,
            ),
            _ => (config.port_label_entries, config.label_widths.port),
        };
        LabelStore::new(format!("{dim}/labels"), cap, width)
    }

    /// The active configuration.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Installed rule count.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Live label count per dimension, in [`ALL_DIMS`] order (Table II's
    /// unique-field counts as seen by the hardware).
    pub fn live_labels(&self) -> [usize; 7] {
        let mut out = [0; 7];
        for (i, d) in self.dims.iter().enumerate() {
            out[i] = d.table.len();
        }
        out
    }

    /// The Rule Filter hash store (read-only). Exposed so external
    /// analyses can compare predicted label-combination counts against
    /// the actual occupancy and probe-chain statistics.
    pub fn rule_filter(&self) -> &RuleFilter {
        &self.rule_filter
    }

    fn dim_order_entry(dim: Dim, label: Label, priority: Priority) -> LabelEntry {
        // Engines that define their own list order (port registers,
        // protocol LUT) recompute it internally; priority order is the
        // default for IP dimensions (§IV.C.1).
        let _ = dim;
        LabelEntry::by_priority(label, priority)
    }

    /// Packs the seven dimension labels into the merged hash key
    /// (68 bits in the paper configuration, §IV.C.1).
    fn make_key(&self, labels: &[Label; 7]) -> u128 {
        let w = self.config.label_widths;
        let widths = [w.ip, w.ip, w.ip, w.ip, w.port, w.port, w.proto];
        let mut key = 0u128;
        for (label, width) in labels.iter().zip(widths) {
            debug_assert!(u32::from(label.0) < (1u32 << width), "label exceeds width");
            key = (key << width) | u128::from(label.0);
        }
        key
    }

    /// Installs a rule (Fig 4's incremental update).
    ///
    /// # Errors
    ///
    /// * [`ClassifierError::Capacity`] — an engine block, label space or
    ///   label memory is full (the architecture's provisioning limit);
    /// * [`ClassifierError::DuplicateKey`] — an identical 5-tuple is
    ///   already installed;
    /// * [`ClassifierError::RuleFilterFull`] — no rule slot left.
    ///
    /// On error the classifier state is rolled back.
    pub fn insert(&mut self, rule: Rule) -> Result<UpdateReport, ClassifierError> {
        self.insert_inner(rule, false)
    }

    /// Bulk-loads a rule set, deferring BST rebuilds to one final flush —
    /// the software controller's batch programming path.
    ///
    /// # Errors
    ///
    /// As [`Classifier::insert`]; already-installed rules stay installed.
    pub fn load(&mut self, rules: &spc_types::RuleSet) -> Result<Vec<RuleId>, ClassifierError> {
        let mut ids = Vec::with_capacity(rules.len());
        for rule in rules.rules() {
            ids.push(self.insert_inner(*rule, true)?.rule_id);
        }
        self.flush_engines()?;
        Ok(ids)
    }

    // The lone `expect` reads back a label-table entry in the same arm
    // that proved it exists (`InsertOutcome::Referenced`), so it cannot
    // be absent.
    #[allow(clippy::expect_used)]
    fn insert_inner(&mut self, rule: Rule, defer: bool) -> Result<UpdateReport, ClassifierError> {
        let id = RuleId(self.next_id);
        let writes_before = self.write_cycles();
        let dim_values = rule.dim_values();
        let mut labels = [Label(0); 7];
        let mut created = 0u32;
        let mut completed = 0usize;
        let mut result: Result<(), ClassifierError> = Ok(());
        for (i, &dim) in ALL_DIMS.iter().enumerate() {
            let unit = &mut self.dims[i];
            let value = dim_values[i];
            match unit.table.insert(value, rule.priority) {
                Ok(InsertOutcome::Created { label }) => {
                    let entry = Self::dim_order_entry(dim, label, rule.priority);
                    if let Err(e) = unit.engine.insert(&mut unit.store, value, entry) {
                        // Undo the table entry we just created.
                        unit.table.remove(&value, rule.priority);
                        result = Err(e.into());
                        break;
                    }
                    created += 1;
                    labels[i] = label;
                }
                Ok(InsertOutcome::Referenced {
                    label,
                    priority_improved,
                }) => {
                    if priority_improved {
                        let best = unit
                            .table
                            .get(&value)
                            .expect("just inserted")
                            .best_priority();
                        let entry = Self::dim_order_entry(dim, label, best);
                        if let Err(e) = unit.engine.insert(&mut unit.store, value, entry) {
                            unit.table.remove(&value, rule.priority);
                            result = Err(e.into());
                            break;
                        }
                    }
                    labels[i] = label;
                }
                Err(e) => {
                    result = Err(spc_lookup::EngineError::from(e).into());
                    break;
                }
            }
            completed = i + 1;
        }
        if let Err(e) = result {
            self.rollback_dims(&dim_values, rule.priority, completed);
            let _ = self.flush_engines();
            return Err(e);
        }
        let key = self.make_key(&labels);
        if let Err(e) = self.rule_filter.insert(key, id, rule) {
            self.rollback_dims(&dim_values, rule.priority, 7);
            let _ = self.flush_engines();
            return Err(e);
        }
        if !defer {
            if let Err(e) = self.flush_engines() {
                let _ = self.rule_filter.remove(key, id);
                self.rollback_dims(&dim_values, rule.priority, 7);
                let _ = self.flush_engines();
                return Err(e);
            }
        }
        self.rules.insert(id.0, Installed { rule, key });
        self.next_id += 1;
        Ok(UpdateReport {
            rule_id: id,
            created_labels: created,
            freed_labels: 0,
            // 2 cycles rule data + 1 cycle hash (§V.A) + structural writes.
            hw_write_cycles: 3 + (self.write_cycles() - writes_before),
        })
    }

    fn rollback_dims(
        &mut self,
        dim_values: &[spc_types::DimValue; 7],
        priority: Priority,
        upto: usize,
    ) {
        for (unit, &value) in self.dims.iter_mut().zip(dim_values).take(upto) {
            match unit.table.remove(&value, priority) {
                Some(RemoveOutcome::Freed { label }) => {
                    let _ = unit.engine.remove(&mut unit.store, value, label);
                }
                Some(RemoveOutcome::Dereferenced {
                    label,
                    new_best: Some(best),
                }) => {
                    let entry = Self::dim_order_entry(unit.dim, label, best);
                    let _ = unit.engine.insert(&mut unit.store, value, entry);
                }
                _ => {}
            }
        }
    }

    /// Removes an installed rule (Fig 4's deletion path: counters
    /// decrement; a label leaves the hardware only at zero).
    ///
    /// # Errors
    ///
    /// [`ClassifierError::UnknownRule`] for an unknown id.
    pub fn remove(&mut self, id: RuleId) -> Result<(Rule, UpdateReport), ClassifierError> {
        let installed = *self
            .rules
            .get(&id.0)
            .ok_or(ClassifierError::UnknownRule { id: id.0 })?;
        let writes_before = self.write_cycles();
        self.rule_filter.remove(installed.key, id)?;
        let dim_values = installed.rule.dim_values();
        let mut freed = 0u32;
        for (unit, &value) in self.dims.iter_mut().zip(&dim_values) {
            match unit.table.remove(&value, installed.rule.priority) {
                Some(RemoveOutcome::Freed { label }) => {
                    let _ = unit.engine.remove(&mut unit.store, value, label);
                    freed += 1;
                }
                Some(RemoveOutcome::Dereferenced {
                    label,
                    new_best: Some(best),
                }) => {
                    let entry = Self::dim_order_entry(unit.dim, label, best);
                    let _ = unit.engine.insert(&mut unit.store, value, entry);
                }
                Some(RemoveOutcome::Dereferenced { .. }) => {}
                None => unreachable!("installed rule must be in label tables"),
            }
        }
        self.flush_engines()?;
        self.rules.remove(&id.0);
        Ok((
            installed.rule,
            UpdateReport {
                rule_id: id,
                created_labels: 0,
                freed_labels: freed,
                hw_write_cycles: 3 + (self.write_cycles() - writes_before),
            },
        ))
    }

    fn flush_engines(&mut self) -> Result<(), ClassifierError> {
        for unit in &mut self.dims {
            unit.engine.flush(&mut unit.store)?;
        }
        Ok(())
    }

    fn write_cycles(&self) -> u64 {
        self.dims
            .iter()
            .map(|u| u.engine.access_counts().writes + u.store.access_counts().writes)
            .sum::<u64>()
            + self.rule_filter.access_counts().writes
    }

    /// Classifies a header through the 4-phase pipeline, returning the
    /// HPMR (per the configured [`CombineStrategy`]) plus full accounting.
    ///
    /// Allocates fresh working buffers per call; batch consumers should
    /// hold a [`ClassifyScratch`] and use [`Classifier::classify_with`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an engine reports pending updates — the
    /// public update paths always flush, so this indicates internal misuse.
    pub fn classify(&self, header: &Header) -> Classification {
        self.classify_with(header, &mut ClassifyScratch::new())
    }

    /// Classifies a header, reusing `scratch` for every intermediate
    /// buffer (label lists, probe frontier). This is the amortised hot
    /// path behind `spc-engine`'s `classify_batch`: across a batch, the
    /// per-lookup allocations collapse to buffer clears.
    ///
    /// # Panics
    ///
    /// As [`Classifier::classify`].
    // `lookup_into` only errors on unflushed engines (the update paths
    // always flush), and `head()` runs after the `any_empty` early
    // return proved every list is non-empty.
    #[allow(clippy::expect_used)]
    pub fn classify_with(&self, header: &Header, scratch: &mut ClassifyScratch) -> Classification {
        // Phase 2: parallel single-field lookups, each writing into the
        // scratch's per-dimension list so nothing allocates after warm-up.
        scratch.lists.resize_with(ALL_DIMS.len(), LabelList::new);
        let mut engine_latency = 0u32;
        let mut engine_ii = 1u32;
        let mut engine_reads = 0u32;
        let mut any_empty = false;
        for (i, &dim) in ALL_DIMS.iter().enumerate() {
            let unit = &self.dims[i];
            let cost = unit
                .engine
                .lookup_into(&unit.store, dim.query(header), &mut scratch.lists[i])
                .expect("engines are flushed on every update path");
            engine_latency = engine_latency.max(cost.cycles);
            if !unit.engine.is_pipelined() {
                engine_ii = engine_ii.max(cost.cycles);
            }
            engine_reads += cost.mem_reads;
            any_empty |= scratch.lists[i].is_empty();
        }
        if any_empty {
            // Some dimension matched nothing: no rule can match.
            return Classification {
                hit: None,
                timing: LookupTiming::new(engine_latency, engine_ii, 0),
                engine_reads,
                rule_filter_reads: 0,
                combos_probed: 0,
            };
        }
        let (stored, rf_reads, combos) = match self.config.combine {
            CombineStrategy::FirstLabel => {
                let labels: [Label; 7] = std::array::from_fn(|i| {
                    scratch.lists[i].head().expect("checked non-empty").label
                });
                let probe = self.rule_filter.probe(self.make_key(&labels));
                (probe.hit, probe.reads, 1)
            }
            CombineStrategy::PriorityProbe => self.priority_probe(scratch),
        };
        let hit = stored.map(|s| {
            debug_assert!(
                s.rule.matches(header),
                "label-key hit must match the header"
            );
            Hit {
                rule_id: s.id,
                rule: s.rule,
            }
        });
        Classification {
            hit,
            timing: LookupTiming::new(engine_latency, engine_ii, rf_reads),
            engine_reads,
            rule_filter_reads: rf_reads,
            combos_probed: combos,
        }
    }

    /// Best-first search over label combinations (DESIGN.md §2).
    ///
    /// Each label's `priority` is the best priority among its user rules,
    /// so `max` over a combination lower-bounds the priority of any rule
    /// stored under that key — combinations are explored in bound order
    /// and the search stops once the best hit beats every remaining bound.
    ///
    /// Reads the phase-2 label lists from `scratch.lists` and reuses the
    /// frontier buffers in `scratch`.
    // The bound closure maxes over the fixed `0..7` dimension range,
    // which is never empty.
    #[allow(clippy::expect_used)]
    fn priority_probe(&self, scratch: &mut ClassifyScratch) -> (Option<StoredRule>, u32, u32) {
        // Sort each dimension by rule priority (port/protocol lists are
        // hardware-ordered differently; the bound argument needs priority
        // order).
        let ClassifyScratch {
            lists,
            dims,
            heap,
            visited,
        } = scratch;
        for (v, l) in dims.iter_mut().zip(lists.iter()) {
            v.clear();
            v.extend_from_slice(l.entries());
            v.sort_by_key(|e| (e.priority, e.label.0));
        }
        let dims = &*dims;
        let bound = |idx: &[u16; 7]| -> u32 {
            (0..7)
                .map(|d| dims[d][idx[d] as usize].priority.0)
                .max()
                .expect("seven dims")
        };
        heap.clear();
        visited.clear();
        let start = [0u16; 7];
        heap.push(std::cmp::Reverse((bound(&start), start)));
        visited.insert(start);
        let mut best: Option<StoredRule> = None;
        let mut rf_reads = 0u32;
        let mut combos = 0u32;
        while let Some(std::cmp::Reverse((b, idx))) = heap.pop() {
            if let Some(s) = best {
                if s.rule.priority.0 < b {
                    break; // every remaining combo is provably worse
                }
            }
            combos += 1;
            let labels: [Label; 7] = std::array::from_fn(|d| dims[d][idx[d] as usize].label);
            let probe = self.rule_filter.probe(self.make_key(&labels));
            rf_reads += probe.reads;
            if let Some(s) = probe.hit {
                let better = match best {
                    None => true,
                    Some(cur) => (s.rule.priority, s.id.0) < (cur.rule.priority, cur.id.0),
                };
                if better {
                    best = Some(s);
                }
            }
            for d in 0..7 {
                if usize::from(idx[d]) + 1 < dims[d].len() {
                    let mut nxt = idx;
                    nxt[d] += 1;
                    if visited.insert(nxt) {
                        heap.push(std::cmp::Reverse((bound(&nxt), nxt)));
                    }
                }
            }
        }
        (best, rf_reads, combos)
    }

    /// Switches the IP lookup algorithm at run time (the `IPalg_s`
    /// signal): fresh engines are built for the four IP dimensions and
    /// reloaded from the controller's label tables — label ids, the label
    /// method and the Rule Filter are untouched (§IV.C.2).
    ///
    /// # Errors
    ///
    /// [`ClassifierError::Capacity`] if the new structures don't fit; the
    /// previous engines are restored in that case.
    ///
    /// # Panics
    ///
    /// Panics if restoring the previous engines fails — they held this
    /// exact rule set a moment ago, so a rollback failure means the
    /// classifier state is corrupt and continuing would misclassify.
    #[allow(clippy::expect_used)] // rollback invariant documented above
    pub fn set_ip_alg(&mut self, alg: IpAlg) -> Result<(), ClassifierError> {
        if alg == self.config.ip_alg {
            return Ok(());
        }
        let old_alg = self.config.ip_alg;
        self.config.ip_alg = alg;
        match self.reload_ip_engines() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.config.ip_alg = old_alg;
                self.reload_ip_engines()
                    .expect("previous configuration fitted before");
                Err(e)
            }
        }
    }

    fn reload_ip_engines(&mut self) -> Result<(), ClassifierError> {
        for &dim in &IP_SEG_DIMS {
            let i = dim.index();
            let mut engine = Self::make_engine(&self.config, dim);
            let mut store = Self::make_store(&self.config, dim);
            let unit = &mut self.dims[i];
            for (value, state) in unit.table.iter() {
                let entry = Self::dim_order_entry(dim, state.label, state.best_priority());
                engine.insert(&mut store, *value, entry)?;
            }
            engine.flush(&mut store)?;
            unit.engine = engine;
            unit.store = store;
        }
        Ok(())
    }

    /// Memory inventory across every block of the architecture.
    pub fn memory_report(&self) -> MemoryReport {
        let mut blocks = Vec::new();
        for unit in &self.dims {
            blocks.push(BlockUsage {
                name: format!("{}/engine", unit.dim),
                provisioned_bits: unit.engine.provisioned_bits(),
                used_bits: unit.engine.used_bits(),
            });
            blocks.push(BlockUsage {
                name: unit.store.name().to_string(),
                provisioned_bits: unit.store.provisioned_bits(),
                used_bits: unit.store.used_bits(),
            });
        }
        blocks.push(BlockUsage {
            name: "rule_filter".to_string(),
            provisioned_bits: self.rule_filter.provisioned_bits(),
            used_bits: self.rule_filter.used_bits(),
        });
        MemoryReport { blocks }
    }

    /// The Fig 5 sharing report for this configuration.
    pub fn sharing_report(&self) -> SharingReport {
        let mbt: Box<dyn FieldEngine> = Box::new(MultiBitTrie::new(MbtConfig::segment_paper(
            self.config.mbt_leaf_nodes,
        )));
        let bst: Box<dyn FieldEngine> = Box::new(RangeBst::new(self.config.bst_max_intervals));
        let rule_word = u64::from(self.config.label_widths.key_bits()) + 48;
        SharingReport::new(
            4 * mbt.provisioned_bits(),
            4 * bst.provisioned_bits(),
            rule_word,
        )
    }

    /// Aggregate engine+store+filter access counters.
    pub fn access_counts(&self) -> spc_hwsim::AccessCounts {
        self.dims
            .iter()
            .map(|u| u.engine.access_counts() + u.store.access_counts())
            .sum::<spc_hwsim::AccessCounts>()
            + self.rule_filter.access_counts()
    }

    /// Resets all access counters (e.g. between benchmark phases).
    pub fn reset_access_counts(&self) {
        for u in &self.dims {
            u.engine.reset_access_counts();
            u.store.reset_access_counts();
        }
        self.rule_filter.reset_access_counts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{Action, PortRange, Prefix, ProtoSpec};

    fn cfg() -> ArchConfig {
        ArchConfig::default()
    }

    fn web_rule(p: u32) -> Rule {
        Rule::builder(Priority(p))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(1))
            .build()
    }

    fn hdr(src: [u8; 4], dport: u16, proto: u8) -> Header {
        Header::new(src.into(), [99, 99, 99, 99].into(), 5000, dport, proto)
    }

    #[test]
    fn priority_probe_survives_wide_label_lists() {
        // More than 256 labels in one dimension: the probe frontier's
        // combination indices must not be limited to u8. The only fully
        // matching rule sits at list index 299 of two dimensions, and the
        // uniform priority bound (the TCP rule is the worst-priority one)
        // forces the search to walk the whole frontier to prove it.
        let mut cls = Classifier::new(ArchConfig::large());
        let n: u16 = 300;
        for i in 0..n {
            let proto = if i == n - 1 { 6 } else { 17 };
            let r = Rule::builder(Priority(u32::from(i)))
                .src_port(PortRange::new(1000 - i, 1000 + i).unwrap())
                .dst_port(PortRange::new(2000 - i, 2000 + i).unwrap())
                .proto(ProtoSpec::Exact(proto))
                .action(Action::Forward(i))
                .build();
            cls.insert(r).unwrap();
        }
        let h = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1000, 2000, 6);
        let c = cls.classify(&h);
        assert_eq!(c.hit.unwrap().rule.priority, Priority(u32::from(n) - 1));
        assert!(
            c.combos_probed > 256,
            "search must explore past the u8 frontier, probed {}",
            c.combos_probed
        );
    }

    #[test]
    fn insert_classify_remove_roundtrip() {
        let mut cls = Classifier::new(cfg());
        let rep = cls.insert(web_rule(0)).unwrap();
        assert_eq!(rep.created_labels, 7);
        assert!(rep.hw_write_cycles >= 3);
        let c = cls.classify(&hdr([10, 1, 1, 1], 80, 6));
        assert_eq!(c.hit.unwrap().rule_id, rep.rule_id);
        assert!(cls.classify(&hdr([11, 1, 1, 1], 80, 6)).hit.is_none());
        assert!(cls.classify(&hdr([10, 1, 1, 1], 81, 6)).hit.is_none());
        let (rule, drep) = cls.remove(rep.rule_id).unwrap();
        assert_eq!(rule.action, Action::Forward(1));
        assert_eq!(drep.freed_labels, 7);
        assert!(cls.is_empty());
        assert!(cls.classify(&hdr([10, 1, 1, 1], 80, 6)).hit.is_none());
    }

    #[test]
    fn hpmr_priority_resolution() {
        let mut cls = Classifier::new(cfg());
        let broad = Rule::builder(Priority(5)).action(Action::Drop).build();
        let narrow = web_rule(1);
        let broad_id = cls.insert(broad).unwrap().rule_id;
        let narrow_id = cls.insert(narrow).unwrap().rule_id;
        // Narrow (priority 1) wins where both match.
        let c = cls.classify(&hdr([10, 1, 1, 1], 80, 6));
        assert_eq!(c.hit.unwrap().rule_id, narrow_id);
        // Broad still catches the rest.
        let c2 = cls.classify(&hdr([11, 1, 1, 1], 80, 6));
        assert_eq!(c2.hit.unwrap().rule_id, broad_id);
    }

    #[test]
    fn shared_labels_refcount() {
        let mut cls = Classifier::new(cfg());
        // Two rules differing only in dst_port share 6 of 7 labels.
        let a = cls.insert(web_rule(0)).unwrap();
        let mut r2 = web_rule(1);
        r2.dst_port = PortRange::exact(443);
        let b = cls.insert(r2).unwrap();
        assert_eq!(a.created_labels, 7);
        assert_eq!(b.created_labels, 1);
        // Removing one keeps the shared labels alive.
        let (_, rep) = cls.remove(a.rule_id).unwrap();
        assert_eq!(rep.freed_labels, 1);
        let c = cls.classify(&hdr([10, 2, 2, 2], 443, 6));
        assert_eq!(c.hit.unwrap().rule_id, b.rule_id);
    }

    #[test]
    fn duplicate_rule_rejected_and_rolled_back() {
        let mut cls = Classifier::new(cfg());
        cls.insert(web_rule(0)).unwrap();
        let labels_before = cls.live_labels();
        let e = cls.insert(web_rule(1));
        assert!(matches!(e, Err(ClassifierError::DuplicateKey { .. })));
        assert_eq!(
            cls.live_labels(),
            labels_before,
            "rollback must restore refcounts"
        );
        assert_eq!(cls.len(), 1);
    }

    #[test]
    fn unknown_rule_remove() {
        let mut cls = Classifier::new(cfg());
        assert!(matches!(
            cls.remove(RuleId(9)),
            Err(ClassifierError::UnknownRule { id: 9 })
        ));
    }

    #[test]
    fn mbt_mode_timing_matches_paper() {
        let mut cls = Classifier::new(cfg());
        cls.insert(web_rule(0)).unwrap();
        let c = cls.classify(&hdr([10, 1, 1, 1], 80, 6));
        // Engine phase = 6 cycles (MBT), II = 1 on a clean single probe.
        assert_eq!(c.timing.phase_cycles[1], 6);
        assert_eq!(c.timing.initiation_interval, 1);
        let gbps = c.timing.throughput_gbps(cls.config().clock, 40);
        assert!((gbps - 42.73).abs() < 0.02, "got {gbps}");
    }

    #[test]
    fn bst_mode_agrees_with_mbt() {
        let mut mbt = Classifier::new(cfg());
        let mut bst = Classifier::new(cfg().with_ip_alg(IpAlg::Bst));
        for p in 0..20u32 {
            let mut r = web_rule(p);
            r.src_ip = Prefix::masked(0x0a00_0000 | (p << 8), 24);
            mbt.insert(r).unwrap();
            bst.insert(r).unwrap();
        }
        for i in 0..20u8 {
            let h = hdr([10, 0, i, 1], 80, 6);
            assert_eq!(
                mbt.classify(&h).hit.map(|x| x.rule_id),
                bst.classify(&h).hit.map(|x| x.rule_id),
                "disagreement at {h}"
            );
        }
    }

    #[test]
    fn runtime_ip_alg_switch_preserves_semantics() {
        let mut cls = Classifier::new(cfg());
        for p in 0..10u32 {
            let mut r = web_rule(p);
            r.src_ip = Prefix::masked(0x0a00_0000 | (p << 16), 16);
            cls.insert(r).unwrap();
        }
        let h = hdr([10, 3, 0, 1], 80, 6);
        let before = cls.classify(&h).hit.map(|x| x.rule_id);
        cls.set_ip_alg(IpAlg::Bst).unwrap();
        assert_eq!(cls.classify(&h).hit.map(|x| x.rule_id), before);
        // BST mode is not pipelined: II grows.
        assert!(cls.classify(&h).timing.initiation_interval > 1);
        cls.set_ip_alg(IpAlg::Mbt).unwrap();
        assert_eq!(cls.classify(&h).hit.map(|x| x.rule_id), before);
        assert_eq!(cls.classify(&h).timing.initiation_interval, 1);
    }

    #[test]
    fn miss_when_dimension_list_empty() {
        let mut cls = Classifier::new(cfg());
        cls.insert(web_rule(0)).unwrap();
        let c = cls.classify(&hdr([10, 1, 1, 1], 80, 17)); // UDP: proto list empty
        assert!(c.hit.is_none());
        assert_eq!(
            c.rule_filter_reads, 0,
            "no probe needed on an empty dimension"
        );
    }

    #[test]
    fn first_label_vs_priority_probe() {
        // Construct the fast path's blind spot: per-dimension heads that
        // belong to different rules while a real match exists deeper.
        let mut fast = Classifier::new(cfg().with_combine(CombineStrategy::FirstLabel));
        let mut exact = Classifier::new(cfg().with_combine(CombineStrategy::PriorityProbe));
        // r0: sip 10/8 (priority 0), dport ANY.
        let r0 = Rule::builder(Priority(0))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .build();
        // r1: sip ANY, dport exact 80 (priority 1).
        let r1 = Rule::builder(Priority(1))
            .dst_port(PortRange::exact(80))
            .build();
        for c in [&mut fast, &mut exact] {
            c.insert(r0).unwrap();
            c.insert(r1).unwrap();
        }
        // Header in 10/8 with dport 80: sip head -> r0's label; dport head ->
        // exact-match label (r1's; Table IV ordering). Combined key names a
        // rule that doesn't exist -> fast path misses, probe finds r0.
        let h = hdr([10, 1, 1, 1], 80, 6);
        let f = fast.classify(&h);
        let e = exact.classify(&h);
        assert_eq!(e.hit.unwrap().rule_id, RuleId(0));
        assert!(e.combos_probed >= 1);
        // The fast path either misses or finds something; it must never
        // out-perform the oracle-correct strategy.
        if let Some(hit) = f.hit {
            assert!(hit.rule.matches(&h));
        }
        assert_eq!(f.combos_probed, 1);
    }

    #[test]
    fn memory_report_structure() {
        let mut cls = Classifier::new(cfg());
        cls.insert(web_rule(0)).unwrap();
        let rep = cls.memory_report();
        assert_eq!(rep.blocks.len(), 7 * 2 + 1);
        assert!(rep.total_used() > 0);
        assert!(rep.total_provisioned() > rep.total_used());
        assert!(rep.blocks.iter().any(|b| b.name == "rule_filter"));
    }

    #[test]
    fn sharing_report_sane() {
        let cls = Classifier::new(cfg());
        let s = cls.sharing_report();
        assert!(s.bst_bits <= s.physical_bits);
        assert!(s.extra_rule_capacity > 0);
    }

    #[test]
    fn load_bulk() {
        let mut cls = Classifier::new(ArchConfig::large());
        let rs: spc_types::RuleSet = (0..50u32)
            .map(|p| {
                Rule::builder(Priority(p))
                    .src_ip(Prefix::masked(p << 20, 12))
                    .dst_port(PortRange::exact(p as u16))
                    .build()
            })
            .collect();
        let ids = cls.load(&rs).unwrap();
        assert_eq!(ids.len(), 50);
        assert_eq!(cls.len(), 50);
    }
}
