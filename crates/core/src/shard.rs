//! Shard-aware rule-set splitting.
//!
//! The paper scales its hardware by replicating single-field engines in
//! parallel; the software analogue is to partition one [`RuleSet`] across
//! N independent classifiers and merge their verdicts by priority. This
//! module owns the *partitioning* half of that story: a pluggable
//! [`ShardStrategy`] and a [`plan`] function that splits a rule set into
//! per-shard [`ShardSlice`]s while remembering, for every shard-local
//! rule id, which global rule it came from.
//!
//! Correctness does not depend on the strategy: a sharded classifier
//! queries *every* shard and keeps the highest-priority hit, so any
//! assignment of rules to shards yields the same merged verdict. The
//! strategy only shapes load balance and per-shard structure size.

use spc_hwsim::HashUnit;
use spc_types::{Dim, DimValue, Priority, Rule, RuleId, RuleSet};

/// How rules are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous priority bands: rules are sorted by `(priority, id)` and
    /// cut into equal-sized runs, so shard 0 holds the highest-priority
    /// band. High-priority traffic then resolves entirely inside one
    /// small structure, and band boundaries make shard contents easy to
    /// reason about.
    PriorityBands,
    /// Deterministic hash of the rule's projection onto one 16-bit lookup
    /// dimension, folded through the same [`HashUnit`] the Rule Filter
    /// uses — the software mirror of the paper's per-field engines.
    /// Rules sharing a field value (and hence a label) land in the same
    /// shard, which keeps per-shard label tables dense.
    FieldHash(Dim),
}

impl ShardStrategy {
    /// Short display token (`prio` / `hash:<dim>`), the inverse of the
    /// engine-spec syntax.
    pub fn token(self) -> String {
        match self {
            ShardStrategy::PriorityBands => "prio".to_string(),
            ShardStrategy::FieldHash(dim) => format!("hash:{dim}"),
        }
    }
}

/// One shard's slice of the original rule set.
///
/// `rules` re-indexes the shard's rules from zero (every inner classifier
/// sees a dense, self-contained [`RuleSet`]); `global_ids[local]` recovers
/// the id the rule had in the original set. Priorities are preserved
/// verbatim, and rules are pushed in ascending global-id order, so a
/// priority tie inside a shard resolves to the lowest *global* id — the
/// same tie-break [`RuleSet::classify`] uses.
#[derive(Debug, Clone, Default)]
pub struct ShardSlice {
    /// The shard's rules, re-indexed from zero.
    pub rules: RuleSet,
    /// Maps shard-local [`RuleId`] index to the global [`RuleId`].
    pub global_ids: Vec<RuleId>,
}

impl ShardSlice {
    /// Translates a shard-local rule id back to the global id.
    pub fn global_id(&self, local: RuleId) -> RuleId {
        self.global_ids[local.0 as usize]
    }
}

/// The outcome of splitting a rule set: one [`ShardSlice`] per shard.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The strategy that produced this plan.
    pub strategy: ShardStrategy,
    /// Per-shard slices. Never empty; slices with zero rules are dropped,
    /// so `shards.len()` can be smaller than the requested count (an
    /// empty input yields one empty slice).
    pub shards: Vec<ShardSlice>,
}

impl ShardPlan {
    /// Total rules across all shards (equals the input set's length).
    pub fn total_rules(&self) -> usize {
        self.shards.iter().map(|s| s.rules.len()).sum()
    }

    /// Length of the largest shard — the load-balance worst case.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(|s| s.rules.len()).max().unwrap_or(0)
    }
}

/// Encodes a rule's field projection as a stable hash key.
///
/// The encoding is injective per [`DimValue`] variant (discriminant byte
/// plus the value's canonical fields), so equal projections — which the
/// label method would give one label — always hash to the same shard.
fn dim_key(v: DimValue) -> u128 {
    match v {
        DimValue::Seg(s) => (1u128 << 64) | (u128::from(s.value()) << 8) | u128::from(s.len()),
        DimValue::Port(r) => (2u128 << 64) | (u128::from(r.lo()) << 16) | u128::from(r.hi()),
        DimValue::Proto(p) => match p {
            spc_types::ProtoSpec::Any => 3u128 << 64,
            spc_types::ProtoSpec::Exact(x) => (4u128 << 64) | u128::from(x),
        },
    }
}

/// Splits `rules` into at most `shards` slices under `strategy`.
///
/// A requested count of 0 is treated as 1. Empty slices are dropped (a
/// hash strategy over few distinct field values may fill fewer shards
/// than requested); an empty input produces a single empty slice so
/// callers always have at least one shard to build.
pub fn plan(rules: &RuleSet, shards: usize, strategy: ShardStrategy) -> ShardPlan {
    let n = shards.max(1);
    let mut slices: Vec<ShardSlice> = (0..n).map(|_| ShardSlice::default()).collect();
    match strategy {
        ShardStrategy::PriorityBands => {
            // Sort global ids by (priority, id), then cut contiguous bands.
            let mut order: Vec<(Priority, RuleId, &Rule)> =
                rules.iter().map(|(id, r)| (r.priority, id, r)).collect();
            order.sort_unstable_by_key(|&(p, id, _)| (p, id));
            let band = order.len().div_ceil(n).max(1);
            for (pos, (_, id, rule)) in order.into_iter().enumerate() {
                let slice = &mut slices[(pos / band).min(n - 1)];
                slice.rules.push(*rule);
                slice.global_ids.push(id);
            }
            // Bands are built in sorted order, which can interleave the
            // global-id order inside a band; restore ascending global id
            // so local tie-breaks equal global tie-breaks.
            for slice in &mut slices {
                let mut pairs: Vec<(RuleId, Rule)> = slice
                    .global_ids
                    .iter()
                    .copied()
                    .zip(slice.rules.rules().iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(id, _)| id);
                slice.global_ids = pairs.iter().map(|&(id, _)| id).collect();
                slice.rules = pairs.into_iter().map(|(_, r)| r).collect();
            }
        }
        ShardStrategy::FieldHash(dim) => {
            // Fold through the hardware hash unit at the smallest width
            // that addresses every shard, then reduce modulo the count.
            let bits = (usize::BITS - (n - 1).max(1).leading_zeros()).clamp(1, 32);
            let hash = HashUnit::new(bits);
            for (id, rule) in rules.iter() {
                let shard = hash.fold(dim_key(rule.dim_value(dim))) % n;
                slices[shard].rules.push(*rule);
                slices[shard].global_ids.push(id);
            }
        }
    }
    slices.retain(|s| !s.rules.is_empty());
    if slices.is_empty() {
        slices.push(ShardSlice::default());
    }
    ShardPlan {
        strategy,
        shards: slices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{PortRange, Priority, ProtoSpec, Rule};

    fn set(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(n - 1 - i)) // descending priority values
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact((i % 2) as u8 * 11 + 6))
                    .build()
            })
            .collect()
    }

    fn assert_partition(rules: &RuleSet, p: &ShardPlan) {
        assert_eq!(p.total_rules(), rules.len());
        let mut seen: Vec<RuleId> = p
            .shards
            .iter()
            .flat_map(|s| s.global_ids.iter().copied())
            .collect();
        seen.sort_unstable();
        let want: Vec<RuleId> = rules.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, want, "every rule lands in exactly one shard");
        for s in &p.shards {
            assert_eq!(s.rules.len(), s.global_ids.len());
            for (local, rule) in s.rules.iter() {
                assert_eq!(rules.get(s.global_id(local)), Some(rule), "rules intact");
            }
            // Local order must be ascending global id so the lowest-id
            // tie-break survives re-indexing.
            assert!(s.global_ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn priority_bands_partition_and_order() {
        let rules = set(10);
        let p = plan(&rules, 3, ShardStrategy::PriorityBands);
        assert_partition(&rules, &p);
        assert!(p.shards.len() <= 3);
        // Band 0 holds the highest-priority (smallest Priority) rules.
        let band0_max = p.shards[0]
            .rules
            .rules()
            .iter()
            .map(|r| r.priority)
            .max()
            .unwrap();
        let band_last_min = p
            .shards
            .last()
            .unwrap()
            .rules
            .rules()
            .iter()
            .map(|r| r.priority)
            .min()
            .unwrap();
        assert!(
            !band_last_min.beats(band0_max),
            "bands are ordered by priority"
        );
    }

    #[test]
    fn field_hash_partitions_and_groups_equal_values() {
        let rules = set(64);
        for dim in [Dim::DstPort, Dim::Proto, Dim::SipHi] {
            let p = plan(&rules, 4, ShardStrategy::FieldHash(dim));
            assert_partition(&rules, &p);
        }
        // Only two distinct protocol values exist, so hashing on Proto
        // fills at most two shards — and both rules of a value co-locate.
        let p = plan(&rules, 8, ShardStrategy::FieldHash(Dim::Proto));
        assert!(p.shards.len() <= 2, "{} shards", p.shards.len());
    }

    #[test]
    fn degenerate_counts() {
        let rules = set(5);
        for strategy in [
            ShardStrategy::PriorityBands,
            ShardStrategy::FieldHash(Dim::DstPort),
        ] {
            let one = plan(&rules, 1, strategy);
            assert_eq!(one.shards.len(), 1);
            assert_eq!(one.shards[0].rules.len(), 5);
            let zero = plan(&rules, 0, strategy);
            assert_eq!(zero.total_rules(), 5, "0 is clamped to 1");
            let many = plan(&rules, 64, strategy);
            assert_partition(&rules, &many);
            assert!(many.shards.len() <= 5, "no empty shards survive");
        }
        let empty = plan(&RuleSet::new(), 4, ShardStrategy::PriorityBands);
        assert_eq!(empty.shards.len(), 1);
        assert!(empty.shards[0].rules.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let rules = set(40);
        for strategy in [
            ShardStrategy::PriorityBands,
            ShardStrategy::FieldHash(Dim::SipLo),
        ] {
            let a = plan(&rules, 8, strategy);
            let b = plan(&rules, 8, strategy);
            assert_eq!(a.shards.len(), b.shards.len());
            for (x, y) in a.shards.iter().zip(&b.shards) {
                assert_eq!(x.global_ids, y.global_ids);
            }
        }
    }

    #[test]
    fn strategy_tokens() {
        assert_eq!(ShardStrategy::PriorityBands.token(), "prio");
        assert_eq!(
            ShardStrategy::FieldHash(Dim::DstPort).token(),
            "hash:dst_port"
        );
    }

    #[test]
    fn max_shard_len_reports_imbalance() {
        let rules = set(9);
        let p = plan(&rules, 2, ShardStrategy::PriorityBands);
        assert_eq!(p.max_shard_len(), 5);
    }
}
