//! Shard-aware rule-set splitting.
//!
//! The paper scales its hardware by replicating single-field engines in
//! parallel; the software analogue is to partition one [`RuleSet`] across
//! N independent classifiers and merge their verdicts by priority. This
//! module owns the *partitioning* half of that story: a pluggable
//! [`ShardStrategy`] and a [`plan`] function that splits a rule set into
//! per-shard [`ShardSlice`]s while remembering, for every shard-local
//! rule id, which global rule it came from.
//!
//! Correctness does not depend on the strategy: a sharded classifier
//! queries *every* shard and keeps the highest-priority hit, so any
//! assignment of rules to shards yields the same merged verdict. The
//! strategy only shapes load balance and per-shard structure size.

use spc_hwsim::HashUnit;
use spc_types::{Dim, DimValue, Priority, Rule, RuleId, RuleSet};
use std::collections::{BTreeSet, HashMap};

/// How rules are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Contiguous priority bands: rules are sorted by `(priority, id)` and
    /// cut into equal-sized runs, so shard 0 holds the highest-priority
    /// band. High-priority traffic then resolves entirely inside one
    /// small structure, and band boundaries make shard contents easy to
    /// reason about.
    PriorityBands,
    /// Deterministic hash of the rule's projection onto one 16-bit lookup
    /// dimension, folded through the same [`HashUnit`] the Rule Filter
    /// uses — the software mirror of the paper's per-field engines.
    /// Rules sharing a field value (and hence a label) land in the same
    /// shard, which keeps per-shard label tables dense.
    FieldHash(Dim),
}

impl ShardStrategy {
    /// Short display token (`prio` / `hash:<dim>`), the inverse of the
    /// engine-spec syntax.
    pub fn token(self) -> String {
        match self {
            ShardStrategy::PriorityBands => "prio".to_string(),
            ShardStrategy::FieldHash(dim) => format!("hash:{dim}"),
        }
    }
}

/// One shard's slice of the original rule set.
///
/// `rules` re-indexes the shard's rules from zero (every inner classifier
/// sees a dense, self-contained [`RuleSet`]); `global_ids[local]` recovers
/// the id the rule had in the original set. Priorities are preserved
/// verbatim, and rules are pushed in ascending global-id order, so a
/// priority tie inside a shard resolves to the lowest *global* id — the
/// same tie-break [`RuleSet::classify`] uses.
#[derive(Debug, Clone, Default)]
pub struct ShardSlice {
    /// The shard's rules, re-indexed from zero.
    pub rules: RuleSet,
    /// Maps shard-local [`RuleId`] index to the global [`RuleId`].
    pub global_ids: Vec<RuleId>,
}

impl ShardSlice {
    /// Translates a shard-local rule id back to the global id.
    pub fn global_id(&self, local: RuleId) -> RuleId {
        self.global_ids[local.0 as usize]
    }
}

/// The outcome of splitting a rule set: one [`ShardSlice`] per shard.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The strategy that produced this plan.
    pub strategy: ShardStrategy,
    /// Per-shard slices. Never empty; slices with zero rules are dropped,
    /// so `shards.len()` can be smaller than the requested count (an
    /// empty input yields one empty slice).
    pub shards: Vec<ShardSlice>,
}

impl ShardPlan {
    /// Total rules across all shards (equals the input set's length).
    pub fn total_rules(&self) -> usize {
        self.shards.iter().map(|s| s.rules.len()).sum()
    }

    /// Length of the largest shard — the load-balance worst case.
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(|s| s.rules.len()).max().unwrap_or(0)
    }
}

/// Encodes a rule's field projection as a stable hash key.
///
/// The encoding is injective per [`DimValue`] variant (discriminant byte
/// plus the value's canonical fields), so equal projections — which the
/// label method would give one label — always hash to the same shard.
fn dim_key(v: DimValue) -> u128 {
    match v {
        DimValue::Seg(s) => (1u128 << 64) | (u128::from(s.value()) << 8) | u128::from(s.len()),
        DimValue::Port(r) => (2u128 << 64) | (u128::from(r.lo()) << 16) | u128::from(r.hi()),
        DimValue::Proto(p) => match p {
            spc_types::ProtoSpec::Any => 3u128 << 64,
            spc_types::ProtoSpec::Exact(x) => (4u128 << 64) | u128::from(x),
        },
    }
}

/// The hash slot (in `0..n`, `n` = *requested* shard count) that owns
/// `rule` under [`ShardStrategy::FieldHash`] on `dim`.
///
/// Folds through the hardware [`HashUnit`] at the smallest width that
/// addresses every shard, then reduces modulo the count. Shared by
/// [`plan`] (build-time placement) and [`ShardRouter`] (churn-time
/// routing) so the two always agree on ownership.
pub fn hash_slot(dim: Dim, n: usize, rule: &Rule) -> usize {
    let n = n.max(1);
    let bits = (usize::BITS - (n - 1).max(1).leading_zeros()).clamp(1, 32);
    HashUnit::new(bits).fold(dim_key(rule.dim_value(dim))) % n
}

/// Splits `rules` into at most `shards` slices under `strategy`.
///
/// A requested count of 0 is treated as 1. Empty slices are dropped (a
/// hash strategy over few distinct field values may fill fewer shards
/// than requested); an empty input produces a single empty slice so
/// callers always have at least one shard to build.
pub fn plan(rules: &RuleSet, shards: usize, strategy: ShardStrategy) -> ShardPlan {
    let n = shards.max(1);
    let mut slices: Vec<ShardSlice> = (0..n).map(|_| ShardSlice::default()).collect();
    match strategy {
        ShardStrategy::PriorityBands => {
            // Sort global ids by (priority, id), then cut contiguous bands.
            let mut order: Vec<(Priority, RuleId, &Rule)> =
                rules.iter().map(|(id, r)| (r.priority, id, r)).collect();
            order.sort_unstable_by_key(|&(p, id, _)| (p, id));
            let band = order.len().div_ceil(n).max(1);
            for (pos, (_, id, rule)) in order.into_iter().enumerate() {
                let slice = &mut slices[(pos / band).min(n - 1)];
                slice.rules.push(*rule);
                slice.global_ids.push(id);
            }
            // Bands are built in sorted order, which can interleave the
            // global-id order inside a band; restore ascending global id
            // so local tie-breaks equal global tie-breaks.
            for slice in &mut slices {
                let mut pairs: Vec<(RuleId, Rule)> = slice
                    .global_ids
                    .iter()
                    .copied()
                    .zip(slice.rules.rules().iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(id, _)| id);
                slice.global_ids = pairs.iter().map(|&(id, _)| id).collect();
                slice.rules = pairs.into_iter().map(|(_, r)| r).collect();
            }
        }
        ShardStrategy::FieldHash(dim) => {
            for (id, rule) in rules.iter() {
                let shard = hash_slot(dim, n, rule);
                slices[shard].rules.push(*rule);
                slices[shard].global_ids.push(id);
            }
        }
    }
    slices.retain(|s| !s.rules.is_empty());
    if slices.is_empty() {
        slices.push(ShardSlice::default());
    }
    ShardPlan {
        strategy,
        shards: slices,
    }
}

/// Where [`ShardRouter::route`] says an insert should land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTarget {
    /// An existing live shard owns the rule.
    Existing(usize),
    /// No live shard owns the rule yet: its hash slot is empty. The
    /// caller must build a fresh inner classifier, append it as the
    /// next shard, and claim the slot via [`ShardRouter::register_shard`].
    NewShard {
        /// The empty hash slot the rule folds to.
        slot: usize,
    },
}

/// A live rule's location: which shard holds it, under which
/// shard-local id, and the rule itself (needed to key the duplicate
/// index on removal and to re-install the rule during band migration).
#[derive(Debug, Clone, Copy)]
pub struct RuleLocation {
    /// Index of the owning shard.
    pub shard: usize,
    /// The rule's id inside that shard's classifier.
    pub local: RuleId,
    /// The installed rule.
    pub rule: Rule,
}

/// Live routing state for an updatable sharded classifier — the
/// build-once [`ShardPlan`] turned into a bidirectional map that
/// survives churn.
///
/// [`plan`] assigns rules to shards exactly once; incremental updates
/// need the same decisions answerable forever after: which shard owns a
/// new rule (`route`), which shard holds an installed global id
/// (`location`), and what the shard-local id maps back to (the engine
/// layer keeps the local→global direction next to each inner engine,
/// this router keeps global→local). It also owns the two pieces of
/// bookkeeping the strategies need under churn: the hash-slot→shard
/// table (slots can gain their first rule after build) and the per-band
/// ordered key sets that keep the `(priority, global id)` cascade
/// invariant checkable and band splits plannable.
///
/// The router records decisions; it never touches classifiers. The
/// engine layer performs the actual insert/remove and reports the
/// resulting shard-local ids back via [`ShardRouter::record_insert`] /
/// [`ShardRouter::record_remove`] / [`ShardRouter::apply_band_split`].
#[derive(Debug, Clone)]
pub struct ShardRouter {
    strategy: ShardStrategy,
    /// Hash strategy: requested-slot → live-shard table (`None` = the
    /// slot has never held a rule; the plan drops empty slices).
    slots: Vec<Option<usize>>,
    /// Priority-band strategy: each band's live `(priority, id)` keys,
    /// ordered — band `k`'s greatest key is below band `k+1`'s smallest.
    bands: Vec<BTreeSet<(Priority, RuleId)>>,
    /// Live rule count per shard (both strategies).
    lens: Vec<usize>,
    /// Global id → live location.
    entries: HashMap<u32, RuleLocation>,
    /// Dimension-projection → live global ids, the sharded mirror of the
    /// Rule Filter's duplicate-key check: under priority bands two rules
    /// with identical projections can land in *different* shards, where
    /// no inner classifier would spot the collision. A multi-map rather
    /// than a map because a *planned* set may legally carry projection
    /// twins split across bands (each inner built fine); removing one
    /// twin must not make the survivors invisible to the check.
    dups: HashMap<[DimValue; 7], Vec<RuleId>>,
    /// Next global id to hand out (never reused, so ids stay monotonic
    /// and the lowest-id tie-break matches insertion order).
    next_global: u32,
}

impl ShardRouter {
    /// Builds the live router describing exactly the rules of `plan`.
    ///
    /// `requested` is the shard count the plan was asked for (before
    /// empty slices were dropped); the hash strategy needs it to keep
    /// folding rules onto the same slots.
    pub fn from_plan(plan: &ShardPlan, requested: usize) -> Self {
        let n = requested.max(1);
        let mut router = ShardRouter {
            strategy: plan.strategy,
            slots: match plan.strategy {
                ShardStrategy::FieldHash(_) => vec![None; n],
                ShardStrategy::PriorityBands => Vec::new(),
            },
            bands: match plan.strategy {
                ShardStrategy::PriorityBands => vec![BTreeSet::new(); plan.shards.len()],
                ShardStrategy::FieldHash(_) => Vec::new(),
            },
            lens: vec![0; plan.shards.len()],
            entries: HashMap::new(),
            dups: HashMap::new(),
            next_global: 0,
        };
        for (shard, slice) in plan.shards.iter().enumerate() {
            if let ShardStrategy::FieldHash(dim) = plan.strategy {
                // Every rule of a slice folds to the same slot; recover
                // it from the first one.
                if let Some((_, first)) = slice.rules.iter().next() {
                    router.slots[hash_slot(dim, n, first)] = Some(shard);
                }
            }
            for (local, rule) in slice.rules.iter() {
                let global = slice.global_id(local);
                router.install(global, *rule, shard, local);
                router.next_global = router.next_global.max(global.0 + 1);
            }
        }
        router
    }

    fn install(&mut self, global: RuleId, rule: Rule, shard: usize, local: RuleId) {
        if self.strategy == ShardStrategy::PriorityBands {
            self.bands[shard].insert((rule.priority, global));
        }
        self.lens[shard] += 1;
        self.dups.entry(rule.dim_values()).or_default().push(global);
        self.entries
            .insert(global.0, RuleLocation { shard, local, rule });
    }

    /// The strategy this router routes for.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Live rule count across all shards.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no rules are live.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of live shards (grows when churn creates one).
    pub fn shard_count(&self) -> usize {
        self.lens.len()
    }

    /// Live rule count of one shard.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.lens[shard]
    }

    /// The earliest-installed live rule with a dimension projection
    /// identical to `rule`'s, if any — the same collision the Rule
    /// Filter's duplicate-key check rejects, detected across shard
    /// boundaries.
    pub fn duplicate_of(&self, rule: &Rule) -> Option<RuleId> {
        self.dups
            .get(&rule.dim_values())
            .and_then(|ids| ids.first())
            .copied()
    }

    /// Which shard an insert of `rule` must target.
    ///
    /// Hash strategy: the rule's slot, or [`RouteTarget::NewShard`] when
    /// that slot has no live shard yet. Priority bands: the first band
    /// whose greatest `(priority, id)` key exceeds the rule's prospective
    /// key — every earlier band's keys are provably smaller, so placing
    /// the rule there preserves the cascade invariant; a rule beyond
    /// every band's range joins the last band.
    pub fn route(&self, rule: &Rule) -> RouteTarget {
        match self.strategy {
            ShardStrategy::FieldHash(dim) => {
                let slot = hash_slot(dim, self.slots.len(), rule);
                match self.slots[slot] {
                    Some(shard) => RouteTarget::Existing(shard),
                    None => RouteTarget::NewShard { slot },
                }
            }
            ShardStrategy::PriorityBands => {
                let key = (rule.priority, RuleId(self.next_global));
                let band = self
                    .bands
                    .iter()
                    .position(|b| b.last().is_some_and(|&hi| hi > key))
                    .unwrap_or(self.bands.len() - 1);
                RouteTarget::Existing(band)
            }
        }
    }

    /// Claims an empty hash `slot` for a freshly created shard, which
    /// the caller must have appended after the existing ones; returns
    /// the new shard's index.
    ///
    /// # Panics
    ///
    /// Panics if the strategy is not [`ShardStrategy::FieldHash`] or the
    /// slot is already claimed.
    pub fn register_shard(&mut self, slot: usize) -> usize {
        assert!(
            matches!(self.strategy, ShardStrategy::FieldHash(_)),
            "only hash slots create shards on demand"
        );
        assert!(self.slots[slot].is_none(), "slot {slot} already claimed");
        let shard = self.lens.len();
        self.lens.push(0);
        self.slots[slot] = Some(shard);
        shard
    }

    /// Records a successful insert into `shard` under shard-local id
    /// `local`, allocating and returning the rule's global id.
    pub fn record_insert(&mut self, rule: Rule, shard: usize, local: RuleId) -> RuleId {
        let global = RuleId(self.next_global);
        self.next_global += 1;
        self.install(global, rule, shard, local);
        global
    }

    /// The live location of a global id.
    pub fn location(&self, id: RuleId) -> Option<&RuleLocation> {
        self.entries.get(&id.0)
    }

    /// Records a successful removal, returning where the rule lived
    /// (`None` if the id was never installed or already removed).
    pub fn record_remove(&mut self, id: RuleId) -> Option<RuleLocation> {
        let loc = self.entries.remove(&id.0)?;
        self.lens[loc.shard] -= 1;
        // Drop only this id from the projection's twin list; a planned
        // set can hold several live rules with one projection.
        if let Some(ids) = self.dups.get_mut(&loc.rule.dim_values()) {
            ids.retain(|&g| g != id);
            if ids.is_empty() {
                self.dups.remove(&loc.rule.dim_values());
            }
        }
        if self.strategy == ShardStrategy::PriorityBands {
            self.bands[loc.shard].remove(&(loc.rule.priority, id));
        }
        Some(loc)
    }

    /// The global ids a split of `band` would migrate: the upper half of
    /// its keys, in ascending `(priority, id)` order. Empty when the
    /// band holds fewer than two rules.
    pub fn split_moves(&self, band: usize) -> Vec<RuleId> {
        let keys = &self.bands[band];
        let keep = keys.len() - keys.len() / 2;
        keys.iter().skip(keep).map(|&(_, id)| id).collect()
    }

    /// Commits a band split: the caller migrated `moved` (global id →
    /// new shard-local id, in [`ShardRouter::split_moves`] order) into a
    /// fresh classifier spliced in at `band + 1`. Shifts every later
    /// shard index up by one and relocates the moved rules, preserving
    /// the cascade invariant (the moved keys were the band's upper half,
    /// so old band < new band < old band + 1 holds by construction).
    ///
    /// # Panics
    ///
    /// Panics if the strategy is not [`ShardStrategy::PriorityBands`] or
    /// a moved id is not installed in `band`.
    #[allow(clippy::expect_used)] // panic contract documented above
    pub fn apply_band_split(&mut self, band: usize, moved: &[(RuleId, RuleId)]) {
        assert_eq!(
            self.strategy,
            ShardStrategy::PriorityBands,
            "only priority bands split"
        );
        for loc in self.entries.values_mut() {
            if loc.shard > band {
                loc.shard += 1;
            }
        }
        self.bands.insert(band + 1, BTreeSet::new());
        self.lens.insert(band + 1, 0);
        for &(global, local) in moved {
            let loc = self
                .entries
                .get_mut(&global.0)
                .expect("moved rule is installed");
            assert_eq!(loc.shard, band, "moved rule must come from the split band");
            let key = (loc.rule.priority, global);
            self.bands[band].remove(&key);
            self.bands[band + 1].insert(key);
            self.lens[band] -= 1;
            self.lens[band + 1] += 1;
            loc.shard = band + 1;
            loc.local = local;
        }
    }

    /// Checks the cascade invariant: every band's keys lie strictly
    /// below the next non-empty band's. Test/debug aid.
    pub fn bands_ordered(&self) -> bool {
        let mut prev: Option<(Priority, RuleId)> = None;
        for band in &self.bands {
            if let (Some(p), Some(&lo)) = (prev, band.first()) {
                if lo <= p {
                    return false;
                }
            }
            prev = band.last().copied().or(prev);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{PortRange, Priority, ProtoSpec, Rule};

    fn set(n: u32) -> RuleSet {
        (0..n)
            .map(|i| {
                Rule::builder(Priority(n - 1 - i)) // descending priority values
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact((i % 2) as u8 * 11 + 6))
                    .build()
            })
            .collect()
    }

    fn assert_partition(rules: &RuleSet, p: &ShardPlan) {
        assert_eq!(p.total_rules(), rules.len());
        let mut seen: Vec<RuleId> = p
            .shards
            .iter()
            .flat_map(|s| s.global_ids.iter().copied())
            .collect();
        seen.sort_unstable();
        let want: Vec<RuleId> = rules.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, want, "every rule lands in exactly one shard");
        for s in &p.shards {
            assert_eq!(s.rules.len(), s.global_ids.len());
            for (local, rule) in s.rules.iter() {
                assert_eq!(rules.get(s.global_id(local)), Some(rule), "rules intact");
            }
            // Local order must be ascending global id so the lowest-id
            // tie-break survives re-indexing.
            assert!(s.global_ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn priority_bands_partition_and_order() {
        let rules = set(10);
        let p = plan(&rules, 3, ShardStrategy::PriorityBands);
        assert_partition(&rules, &p);
        assert!(p.shards.len() <= 3);
        // Band 0 holds the highest-priority (smallest Priority) rules.
        let band0_max = p.shards[0]
            .rules
            .rules()
            .iter()
            .map(|r| r.priority)
            .max()
            .unwrap();
        let band_last_min = p
            .shards
            .last()
            .unwrap()
            .rules
            .rules()
            .iter()
            .map(|r| r.priority)
            .min()
            .unwrap();
        assert!(
            !band_last_min.beats(band0_max),
            "bands are ordered by priority"
        );
    }

    #[test]
    fn field_hash_partitions_and_groups_equal_values() {
        let rules = set(64);
        for dim in [Dim::DstPort, Dim::Proto, Dim::SipHi] {
            let p = plan(&rules, 4, ShardStrategy::FieldHash(dim));
            assert_partition(&rules, &p);
        }
        // Only two distinct protocol values exist, so hashing on Proto
        // fills at most two shards — and both rules of a value co-locate.
        let p = plan(&rules, 8, ShardStrategy::FieldHash(Dim::Proto));
        assert!(p.shards.len() <= 2, "{} shards", p.shards.len());
    }

    #[test]
    fn degenerate_counts() {
        let rules = set(5);
        for strategy in [
            ShardStrategy::PriorityBands,
            ShardStrategy::FieldHash(Dim::DstPort),
        ] {
            let one = plan(&rules, 1, strategy);
            assert_eq!(one.shards.len(), 1);
            assert_eq!(one.shards[0].rules.len(), 5);
            let zero = plan(&rules, 0, strategy);
            assert_eq!(zero.total_rules(), 5, "0 is clamped to 1");
            let many = plan(&rules, 64, strategy);
            assert_partition(&rules, &many);
            assert!(many.shards.len() <= 5, "no empty shards survive");
        }
        let empty = plan(&RuleSet::new(), 4, ShardStrategy::PriorityBands);
        assert_eq!(empty.shards.len(), 1);
        assert!(empty.shards[0].rules.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let rules = set(40);
        for strategy in [
            ShardStrategy::PriorityBands,
            ShardStrategy::FieldHash(Dim::SipLo),
        ] {
            let a = plan(&rules, 8, strategy);
            let b = plan(&rules, 8, strategy);
            assert_eq!(a.shards.len(), b.shards.len());
            for (x, y) in a.shards.iter().zip(&b.shards) {
                assert_eq!(x.global_ids, y.global_ids);
            }
        }
    }

    #[test]
    fn strategy_tokens() {
        assert_eq!(ShardStrategy::PriorityBands.token(), "prio");
        assert_eq!(
            ShardStrategy::FieldHash(Dim::DstPort).token(),
            "hash:dst_port"
        );
    }

    #[test]
    fn max_shard_len_reports_imbalance() {
        let rules = set(9);
        let p = plan(&rules, 2, ShardStrategy::PriorityBands);
        assert_eq!(p.max_shard_len(), 5);
    }

    fn rule(prio: u32, port: u16) -> Rule {
        Rule::builder(Priority(prio))
            .dst_port(PortRange::exact(port))
            .build()
    }

    #[test]
    fn router_mirrors_the_plan() {
        let rules = set(20);
        for strategy in [
            ShardStrategy::PriorityBands,
            ShardStrategy::FieldHash(Dim::DstPort),
        ] {
            let p = plan(&rules, 4, strategy);
            let router = ShardRouter::from_plan(&p, 4);
            assert_eq!(router.len(), 20);
            assert_eq!(router.shard_count(), p.shards.len());
            for (shard, slice) in p.shards.iter().enumerate() {
                assert_eq!(router.shard_len(shard), slice.rules.len());
                for (local, r) in slice.rules.iter() {
                    let loc = router.location(slice.global_id(local)).unwrap();
                    assert_eq!((loc.shard, loc.local), (shard, local));
                    assert_eq!(loc.rule, *r);
                    assert_eq!(router.duplicate_of(r), Some(slice.global_id(local)));
                }
            }
            assert!(router.bands_ordered());
        }
    }

    #[test]
    fn router_hash_routing_matches_plan_placement() {
        let rules = set(32);
        let p = plan(&rules, 4, ShardStrategy::FieldHash(Dim::DstPort));
        let router = ShardRouter::from_plan(&p, 4);
        // A rule that was planned into shard s must route back to s.
        for (shard, slice) in p.shards.iter().enumerate() {
            for (_, r) in slice.rules.iter() {
                let mut probe = *r;
                probe.priority = Priority(9999); // priority is irrelevant to hashing
                assert_eq!(router.route(&probe), RouteTarget::Existing(shard));
            }
        }
    }

    #[test]
    fn router_hash_empty_slot_demands_new_shard() {
        // Hashing on Proto with only one distinct value leaves slots
        // empty; a rule with a fresh value may route to one of them.
        let rules: RuleSet = (0..8)
            .map(|i| {
                Rule::builder(Priority(i))
                    .dst_port(PortRange::exact(i as u16))
                    .proto(ProtoSpec::Exact(6))
                    .build()
            })
            .collect();
        let p = plan(&rules, 8, ShardStrategy::FieldHash(Dim::Proto));
        assert_eq!(p.shards.len(), 1);
        let mut router = ShardRouter::from_plan(&p, 8);
        let newcomers = (0u8..40).map(|x| {
            Rule::builder(Priority(100 + u32::from(x)))
                .proto(ProtoSpec::Exact(x))
                .build()
        });
        let mut created = 0;
        for (i, r) in newcomers.enumerate() {
            match router.route(&r) {
                RouteTarget::Existing(shard) => {
                    let local = RuleId(router.shard_len(shard) as u32);
                    router.record_insert(r, shard, local);
                }
                RouteTarget::NewShard { slot } => {
                    let shard = router.register_shard(slot);
                    assert_eq!(shard, router.shard_count() - 1);
                    router.record_insert(r, shard, RuleId(0));
                    created += 1;
                }
            }
            assert_eq!(router.len(), 8 + i + 1);
        }
        assert!(created > 0, "some protocol value must hit an empty slot");
        // Once claimed, the slot routes Existing.
        let again = Rule::builder(Priority(999))
            .src_port(PortRange::exact(7))
            .proto(ProtoSpec::Exact(0))
            .build();
        assert!(matches!(router.route(&again), RouteTarget::Existing(_)));
    }

    #[test]
    fn router_band_insert_preserves_cascade_order() {
        let rules = set(12);
        let p = plan(&rules, 3, ShardStrategy::PriorityBands);
        let mut router = ShardRouter::from_plan(&p, 3);
        let mut local_next = vec![0u32; router.shard_count()];
        for (i, s) in p.shards.iter().enumerate() {
            local_next[i] = s.rules.len() as u32;
        }
        // Priorities across the whole spectrum, including ties with
        // existing rules: every insert must keep bands ordered.
        for prio in [0u32, 5, 11, 3, 3, 20, 0] {
            let r = rule(prio, 40_000 + prio as u16);
            let RouteTarget::Existing(band) = router.route(&r) else {
                panic!("priority bands never demand new shards on insert");
            };
            let local = RuleId(local_next[band]);
            local_next[band] += 1;
            router.record_insert(r, band, local);
            assert!(
                router.bands_ordered(),
                "insert of p{prio} broke the cascade"
            );
        }
    }

    #[test]
    fn router_duplicate_and_remove_roundtrip() {
        let rules = set(6);
        let p = plan(&rules, 2, ShardStrategy::PriorityBands);
        let mut router = ShardRouter::from_plan(&p, 2);
        let existing = rules.rules()[2];
        // Identical dims with a different priority is still a duplicate
        // (the Rule Filter keys on labels, not priority).
        let mut dup = existing;
        dup.priority = Priority(999);
        assert!(router.duplicate_of(&dup).is_some());
        let id = router.duplicate_of(&existing).unwrap();
        let loc = router.record_remove(id).unwrap();
        assert_eq!(loc.rule, existing);
        assert!(router.duplicate_of(&existing).is_none());
        assert!(
            router.record_remove(id).is_none(),
            "second remove is a no-op"
        );
        assert_eq!(router.len(), 5);
        // Re-inserting hands out a fresh id.
        let RouteTarget::Existing(band) = router.route(&existing) else {
            unreachable!()
        };
        let fresh = router.record_insert(existing, band, RuleId(77));
        assert!(fresh > id, "global ids are never reused");
        assert_eq!(router.location(fresh).unwrap().local, RuleId(77));
    }

    #[test]
    fn router_duplicate_index_survives_twin_removal() {
        // A planned set may legally carry projection twins split across
        // bands (priorities at the extremes); removing one twin must not
        // blind the duplicate check to the survivor.
        let twin = |p: u32| {
            Rule::builder(Priority(p))
                .dst_port(PortRange::exact(7))
                .build()
        };
        let mut rules = RuleSet::new();
        let first = rules.push(twin(0));
        for i in 0..8u16 {
            rules.push(rule(10 + u32::from(i), 100 + i));
        }
        let second = rules.push(twin(1000));
        let p = plan(&rules, 2, ShardStrategy::PriorityBands);
        let mut router = ShardRouter::from_plan(&p, 2);
        assert_ne!(
            router.location(first).unwrap().shard,
            router.location(second).unwrap().shard,
            "twins must land in different bands for this test to bite"
        );
        router.record_remove(second).unwrap();
        assert_eq!(
            router.duplicate_of(&twin(5)),
            Some(first),
            "the surviving twin stays visible to the duplicate check"
        );
        router.record_remove(first).unwrap();
        assert!(router.duplicate_of(&twin(5)).is_none());
    }

    #[test]
    fn router_band_split_moves_upper_half() {
        let rules = set(16);
        let p = plan(&rules, 2, ShardStrategy::PriorityBands);
        let mut router = ShardRouter::from_plan(&p, 2);
        let band0_before = router.shard_len(0);
        let moves = router.split_moves(0);
        assert_eq!(moves.len(), band0_before / 2);
        // The moved ids are the band's worst-priority suffix.
        let moved: Vec<(RuleId, RuleId)> = moves
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, RuleId(i as u32)))
            .collect();
        let displaced: Vec<usize> = (0..router.shard_count())
            .map(|s| router.shard_len(s))
            .collect();
        router.apply_band_split(0, &moved);
        assert_eq!(router.shard_count(), 3);
        assert_eq!(router.shard_len(0), band0_before - moves.len());
        assert_eq!(router.shard_len(1), moves.len());
        assert_eq!(router.shard_len(2), displaced[1], "old band 1 shifted");
        assert!(router.bands_ordered(), "split must preserve the cascade");
        for (i, &(g, _)) in moved.iter().enumerate() {
            let loc = router.location(g).unwrap();
            assert_eq!(loc.shard, 1);
            assert_eq!(loc.local, RuleId(i as u32));
        }
        assert_eq!(router.len(), 16, "split moves rules, it doesn't drop them");
    }
}
