//! Architecture-wide memory inventory (Tables V/VI) and the Fig 5
//! memory-sharing report.

use spc_hwsim::ResourceReport;
use std::fmt;

/// Usage of one named memory block or block group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockUsage {
    /// Block name (e.g. `sip_hi/engine`, `rule_filter`).
    pub name: String,
    /// Provisioned bits (words × width).
    pub provisioned_bits: u64,
    /// Occupied bits.
    pub used_bits: u64,
}

/// Memory inventory of the whole architecture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Per-block usage, in architecture order.
    pub blocks: Vec<BlockUsage>,
}

impl MemoryReport {
    /// Total provisioned bits.
    pub fn total_provisioned(&self) -> u64 {
        self.blocks.iter().map(|b| b.provisioned_bits).sum()
    }

    /// Total occupied bits.
    pub fn total_used(&self) -> u64 {
        self.blocks.iter().map(|b| b.used_bits).sum()
    }

    /// Provisioned bits of blocks whose name matches a predicate.
    pub fn provisioned_where(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.blocks
            .iter()
            .filter(|b| pred(&b.name))
            .map(|b| b.provisioned_bits)
            .sum()
    }

    /// Table V-style resource report (measured memory + quoted synthesis
    /// constants).
    pub fn resource_report(&self) -> ResourceReport {
        ResourceReport::stratix_v_prototype(self.total_provisioned())
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>14} {:>14}",
            "block", "provisioned(b)", "used(b)"
        )?;
        for b in &self.blocks {
            writeln!(
                f,
                "{:<24} {:>14} {:>14}",
                b.name, b.provisioned_bits, b.used_bits
            )?;
        }
        write!(
            f,
            "{:<24} {:>14} {:>14}",
            "TOTAL",
            self.total_provisioned(),
            self.total_used()
        )
    }
}

/// The Fig 5 sharing report for the four IP-segment dimensions.
///
/// In MBT mode the trie blocks hold trie nodes; in BST mode the same
/// physical blocks hold the (much smaller) BST plus additional rule
/// storage — which is how the BST configuration reaches a higher rule
/// count in Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingReport {
    /// Physical bits of the shared region (all four IP dims).
    pub physical_bits: u64,
    /// Bits the MBT structures occupy in MBT mode.
    pub mbt_bits: u64,
    /// Bits the BST structures occupy in BST mode.
    pub bst_bits: u64,
    /// Bits freed for extra rule storage in BST mode.
    pub freed_bits_bst_mode: u64,
    /// Extra rules the freed bits can store (at the Rule Filter word size).
    pub extra_rule_capacity: usize,
    /// Bits a non-shared design would need (separate MBT + BST memories).
    pub unshared_bits: u64,
}

impl SharingReport {
    /// Builds the report from per-mode structural bits and the rule word
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if the BST does not fit the shared region (`bst_bits >
    /// physical_bits`), which would violate the Fig 5 geometry condition.
    pub fn new(mbt_bits: u64, bst_bits: u64, rule_word_bits: u64) -> Self {
        let physical_bits = mbt_bits;
        assert!(
            bst_bits <= physical_bits,
            "BST ({bst_bits} bits) must fit the shared MBT region ({physical_bits} bits)"
        );
        let freed = physical_bits - bst_bits;
        SharingReport {
            physical_bits,
            mbt_bits,
            bst_bits,
            freed_bits_bst_mode: freed,
            extra_rule_capacity: (freed / rule_word_bits.max(1)) as usize,
            unshared_bits: mbt_bits + bst_bits,
        }
    }

    /// Bits saved by sharing versus provisioning both structures.
    pub fn saved_bits(&self) -> u64 {
        self.unshared_bits - self.physical_bits
    }
}

impl fmt::Display for SharingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shared region (4 IP dims):  {} bits", self.physical_bits)?;
        writeln!(f, "  MBT mode occupies:        {} bits", self.mbt_bits)?;
        writeln!(f, "  BST mode occupies:        {} bits", self.bst_bits)?;
        writeln!(
            f,
            "  BST mode frees:           {} bits -> +{} rules",
            self.freed_bits_bst_mode, self.extra_rule_capacity
        )?;
        write!(
            f,
            "  sharing saves:            {} bits vs unshared",
            self.saved_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals() {
        let r = MemoryReport {
            blocks: vec![
                BlockUsage {
                    name: "a".into(),
                    provisioned_bits: 100,
                    used_bits: 40,
                },
                BlockUsage {
                    name: "b".into(),
                    provisioned_bits: 200,
                    used_bits: 60,
                },
            ],
        };
        assert_eq!(r.total_provisioned(), 300);
        assert_eq!(r.total_used(), 100);
        assert_eq!(r.provisioned_where(|n| n == "a"), 100);
        let s = r.to_string();
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn sharing_arithmetic() {
        let s = SharingReport::new(1000, 100, 200);
        assert_eq!(s.freed_bits_bst_mode, 900);
        assert_eq!(s.extra_rule_capacity, 4);
        assert_eq!(s.saved_bits(), 100);
        assert!(s.to_string().contains("+4 rules"));
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_bst_rejected() {
        let _ = SharingReport::new(100, 200, 64);
    }

    #[test]
    fn resource_report_uses_total() {
        let r = MemoryReport {
            blocks: vec![BlockUsage {
                name: "x".into(),
                provisioned_bits: 2_097_184,
                used_bits: 0,
            }],
        };
        let rr = r.resource_report();
        assert_eq!(rr.mem_bits_used, 2_097_184);
    }
}
