//! The controller-side label tables (paper §IV.A, Fig 4).
//!
//! For each dimension the software controller keeps a table mapping unique
//! field values to labels, each with a **reference counter** for fast
//! incremental update: inserting a rule whose field value already has a
//! label only bumps the counter; a label leaves the hardware only when its
//! counter returns to zero. The table also tracks the best (lowest) rule
//! priority per label so the hardware lists can be kept HPML-first.

use spc_lookup::{Label, LabelAllocator, LabelError};
use spc_types::{DimValue, Priority};
use std::collections::{BTreeMap, HashMap};

/// Controller state for one label.
#[derive(Debug, Clone)]
pub struct LabelState {
    /// The hardware label.
    pub label: Label,
    /// How many installed rules use this field value.
    pub refcount: usize,
    /// Multiset of user priorities (key = priority value, value = count);
    /// the best priority is the first key.
    priorities: BTreeMap<u32, usize>,
}

impl LabelState {
    /// Best (numerically smallest) priority among users.
    ///
    /// # Panics
    ///
    /// Panics if called on a state with no users — the label table
    /// removes a state the moment its refcount reaches zero, so a live
    /// state always holds at least one priority.
    #[allow(clippy::expect_used)] // liveness invariant documented above
    pub fn best_priority(&self) -> Priority {
        Priority(
            *self
                .priorities
                .keys()
                .next()
                .expect("non-empty while referenced"),
        )
    }
}

/// Outcome of a label-table insert (drives what the hardware must do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New label created; the engine must store the value.
    Created {
        /// The fresh label.
        label: Label,
    },
    /// Existing label; only the counter changed.
    Referenced {
        /// The existing label.
        label: Label,
        /// Whether the best priority improved (lists must be reordered).
        priority_improved: bool,
    },
}

impl InsertOutcome {
    /// The label regardless of outcome.
    pub fn label(self) -> Label {
        match self {
            InsertOutcome::Created { label } => label,
            InsertOutcome::Referenced { label, .. } => label,
        }
    }
}

/// Outcome of a label-table remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// Counter hit zero: the engine must delete the value and the label is
    /// freed.
    Freed {
        /// The freed label.
        label: Label,
    },
    /// Still referenced.
    Dereferenced {
        /// The label.
        label: Label,
        /// New best priority if it regressed (lists must be reordered).
        new_best: Option<Priority>,
    },
}

/// One dimension's label table.
#[derive(Debug)]
pub struct LabelTable {
    map: HashMap<DimValue, LabelState>,
    alloc: LabelAllocator,
}

impl LabelTable {
    /// Creates a table allocating `width`-bit labels.
    pub fn new(width: u8) -> Self {
        LabelTable {
            map: HashMap::new(),
            alloc: LabelAllocator::new(width),
        }
    }

    /// Number of live labels (unique field values).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no labels are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the state for a value.
    pub fn get(&self, value: &DimValue) -> Option<&LabelState> {
        self.map.get(value)
    }

    /// Iterates `(value, state)` pairs (for engine reloads).
    pub fn iter(&self) -> impl Iterator<Item = (&DimValue, &LabelState)> {
        self.map.iter()
    }

    /// Registers a rule's use of `value` at `priority` (Fig 4).
    ///
    /// # Errors
    ///
    /// Returns [`LabelError::Exhausted`] when the dimension's label space
    /// is full.
    pub fn insert(
        &mut self,
        value: DimValue,
        priority: Priority,
    ) -> Result<InsertOutcome, LabelError> {
        if let Some(state) = self.map.get_mut(&value) {
            let old_best = state.best_priority();
            state.refcount += 1;
            *state.priorities.entry(priority.0).or_insert(0) += 1;
            let improved = priority.beats(old_best);
            return Ok(InsertOutcome::Referenced {
                label: state.label,
                priority_improved: improved,
            });
        }
        let label = self.alloc.alloc()?;
        let mut priorities = BTreeMap::new();
        priorities.insert(priority.0, 1);
        self.map.insert(
            value,
            LabelState {
                label,
                refcount: 1,
                priorities,
            },
        );
        Ok(InsertOutcome::Created { label })
    }

    /// Releases one use of `value` at `priority`. Returns `None` when the
    /// value was not registered (controller bug or double delete).
    pub fn remove(&mut self, value: &DimValue, priority: Priority) -> Option<RemoveOutcome> {
        let state = self.map.get_mut(value)?;
        let old_best = state.best_priority();
        match state.priorities.get_mut(&priority.0) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    state.priorities.remove(&priority.0);
                }
            }
            _ => return None,
        }
        state.refcount -= 1;
        if state.refcount == 0 {
            let label = state.label;
            self.map.remove(value);
            self.alloc.free(label);
            return Some(RemoveOutcome::Freed { label });
        }
        let new_best = state.best_priority();
        Some(RemoveOutcome::Dereferenced {
            label: state.label,
            new_best: (new_best != old_best).then_some(new_best),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::{PortRange, SegPrefix};

    fn seg(v: u16, l: u8) -> DimValue {
        DimValue::Seg(SegPrefix::masked(v, l))
    }

    #[test]
    fn create_then_reference() {
        let mut t = LabelTable::new(7);
        let o1 = t.insert(seg(0x0a00, 8), Priority(5)).unwrap();
        assert!(matches!(o1, InsertOutcome::Created { .. }));
        let o2 = t.insert(seg(0x0a00, 8), Priority(9)).unwrap();
        match o2 {
            InsertOutcome::Referenced {
                label,
                priority_improved,
            } => {
                assert_eq!(label, o1.label());
                assert!(!priority_improved);
            }
            _ => panic!("expected referenced"),
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&seg(0x0a00, 8)).unwrap().refcount, 2);
    }

    #[test]
    fn priority_improvement_detected() {
        let mut t = LabelTable::new(7);
        t.insert(seg(1, 16), Priority(10)).unwrap();
        let o = t.insert(seg(1, 16), Priority(2)).unwrap();
        assert!(matches!(
            o,
            InsertOutcome::Referenced {
                priority_improved: true,
                ..
            }
        ));
        assert_eq!(t.get(&seg(1, 16)).unwrap().best_priority(), Priority(2));
    }

    #[test]
    fn remove_frees_only_at_zero() {
        let mut t = LabelTable::new(7);
        let label = t.insert(seg(1, 16), Priority(1)).unwrap().label();
        t.insert(seg(1, 16), Priority(2)).unwrap();
        let r1 = t.remove(&seg(1, 16), Priority(1)).unwrap();
        match r1 {
            RemoveOutcome::Dereferenced { new_best, .. } => {
                assert_eq!(new_best, Some(Priority(2)));
            }
            _ => panic!("expected dereferenced"),
        }
        let r2 = t.remove(&seg(1, 16), Priority(2)).unwrap();
        assert!(matches!(r2, RemoveOutcome::Freed { label: l } if l == label));
        assert!(t.is_empty());
        // Freed label is recycled.
        assert_eq!(t.insert(seg(2, 16), Priority(0)).unwrap().label(), label);
    }

    #[test]
    fn remove_unknown_returns_none() {
        let mut t = LabelTable::new(7);
        assert!(t.remove(&seg(1, 16), Priority(0)).is_none());
        t.insert(seg(1, 16), Priority(5)).unwrap();
        // Wrong priority multiset entry.
        assert!(t.remove(&seg(1, 16), Priority(6)).is_none());
    }

    #[test]
    fn equal_priorities_dont_report_regression() {
        let mut t = LabelTable::new(7);
        t.insert(seg(1, 16), Priority(3)).unwrap();
        t.insert(seg(1, 16), Priority(3)).unwrap();
        let r = t.remove(&seg(1, 16), Priority(3)).unwrap();
        assert!(matches!(
            r,
            RemoveOutcome::Dereferenced { new_best: None, .. }
        ));
    }

    #[test]
    fn exhaustion_surfaces() {
        let mut t = LabelTable::new(1);
        t.insert(seg(0, 16), Priority(0)).unwrap();
        t.insert(seg(1, 16), Priority(0)).unwrap();
        assert!(t.insert(seg(2, 16), Priority(0)).is_err());
        // But referencing an existing value is fine.
        assert!(t.insert(seg(0, 16), Priority(1)).is_ok());
    }

    #[test]
    fn distinct_value_kinds_coexist() {
        let mut t = LabelTable::new(7);
        t.insert(DimValue::Port(PortRange::exact(80)), Priority(0))
            .unwrap();
        t.insert(DimValue::Port(PortRange::ANY), Priority(1))
            .unwrap();
        assert_eq!(t.len(), 2);
    }
}
