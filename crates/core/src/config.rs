//! Architecture configuration (what the SDN controller programs).

use spc_hwsim::{ClockDomain, ShareSelect};
use spc_lookup::LabelWidths;

/// Which IP lookup algorithm the `IPalg_s` signal selects (§III.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IpAlg {
    /// Multi-bit trie: pipelined, 1 packet/cycle, larger memory.
    #[default]
    Mbt,
    /// Binary search tree: ~16 cycles/packet, small memory, more rules.
    Bst,
}

impl IpAlg {
    /// The corresponding memory-sharing select signal.
    pub fn share_select(self) -> ShareSelect {
        match self {
            IpAlg::Mbt => ShareSelect::Mbt,
            IpAlg::Bst => ShareSelect::Bst,
        }
    }
}

impl std::fmt::Display for IpAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpAlg::Mbt => f.write_str("MBT"),
            IpAlg::Bst => f.write_str("BST"),
        }
    }
}

/// How phase 3 combines per-dimension label lists into a Rule Filter probe
/// (see DESIGN.md §2 "Correctness note").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CombineStrategy {
    /// The paper's fast path: hash only the head (HPML) of each list.
    /// Two final cycles, but may miss the true HPMR when the per-dimension
    /// heads belong to different rules.
    FirstLabel,
    /// Best-first search over label combinations ordered by a priority
    /// lower bound; guaranteed to return the true HPMR. Extra probes are
    /// charged to the cycle model.
    #[default]
    PriorityProbe,
}

/// Full architecture configuration.
///
/// Defaults are calibrated to the paper's prototype: 13/7/2-bit labels,
/// 5/5/6 MBT strides, 133.51 MHz clock, an 8K-rule Rule Filter.
///
/// ```
/// use spc_core::{ArchConfig, IpAlg};
/// let cfg = ArchConfig::default().with_ip_alg(IpAlg::Bst);
/// assert_eq!(cfg.ip_alg, IpAlg::Bst);
/// assert_eq!(cfg.label_widths.key_bits(), 68);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchConfig {
    /// Active IP algorithm (the `IPalg_s` signal).
    pub ip_alg: IpAlg,
    /// Label bit widths per dimension class.
    pub label_widths: LabelWidths,
    /// Combination strategy for phase 3.
    pub combine: CombineStrategy,
    /// Level-2 (leaf) node capacity of each 16-bit segment MBT.
    pub mbt_leaf_nodes: usize,
    /// Elementary-interval capacity of each segment BST.
    pub bst_max_intervals: usize,
    /// Port match registers per port dimension.
    pub port_registers: usize,
    /// Rule Filter address bits (capacity `2^bits` rules before probing).
    pub rule_filter_addr_bits: u32,
    /// Label store entry capacity per IP segment dimension.
    pub ip_label_entries: usize,
    /// Label store entry capacity per port dimension.
    pub port_label_entries: usize,
    /// The clock domain for throughput conversion.
    pub clock: ClockDomain,
}

impl ArchConfig {
    /// The paper's prototype configuration (Table V/VI calibration):
    /// MBT mode, 8K-rule filter, 13/7/2-bit labels.
    pub fn paper_prototype() -> Self {
        ArchConfig {
            ip_alg: IpAlg::Mbt,
            label_widths: LabelWidths::PAPER,
            combine: CombineStrategy::PriorityProbe,
            // Leaf provisioning sized for ~1K-rule filters (the dst-IP
            // dimension of acl1-1K needs ~300 level-2 nodes).
            mbt_leaf_nodes: 384,
            // Must fit the shared MBT region (Fig 5): 4096 intervals of
            // 29-bit words per dimension stay under the trie's footprint.
            bst_max_intervals: 4096,
            port_registers: 128,
            rule_filter_addr_bits: 13, // 8192 slots ≈ 8K rules
            ip_label_entries: 1 << 13,
            port_label_entries: 1 << 7,
            clock: ClockDomain::stratix_v(),
        }
    }

    /// A generously-provisioned configuration for large synthetic rule
    /// sets (10K+ rules, wide label spaces). Used by tests and baselines
    /// where the paper's exact provisioning is not the point.
    pub fn large() -> Self {
        ArchConfig {
            ip_alg: IpAlg::Mbt,
            label_widths: LabelWidths {
                ip: 14,
                port: 9,
                proto: 4,
            },
            combine: CombineStrategy::PriorityProbe,
            mbt_leaf_nodes: 1024,
            bst_max_intervals: 1 << 15,
            port_registers: 512,
            rule_filter_addr_bits: 15,
            ip_label_entries: 1 << 16,
            port_label_entries: 1 << 12,
            clock: ClockDomain::stratix_v(),
        }
    }

    /// Sets the IP algorithm.
    pub fn with_ip_alg(mut self, alg: IpAlg) -> Self {
        self.ip_alg = alg;
        self
    }

    /// Sets the combination strategy.
    pub fn with_combine(mut self, c: CombineStrategy) -> Self {
        self.combine = c;
        self
    }

    /// Sets the Rule Filter address width.
    pub fn with_rule_filter_bits(mut self, bits: u32) -> Self {
        self.rule_filter_addr_bits = bits;
        self
    }

    /// Rule Filter slot count.
    pub fn rule_slots(&self) -> usize {
        1usize << self.rule_filter_addr_bits
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::paper_prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_prototype() {
        let c = ArchConfig::default();
        assert_eq!(c.ip_alg, IpAlg::Mbt);
        assert_eq!(c.label_widths, LabelWidths::PAPER);
        assert_eq!(c.rule_slots(), 8192);
        assert!((c.clock.freq_mhz() - 133.51).abs() < 1e-9);
    }

    #[test]
    fn share_select_mapping() {
        assert_eq!(IpAlg::Mbt.share_select(), ShareSelect::Mbt);
        assert_eq!(IpAlg::Bst.share_select(), ShareSelect::Bst);
    }

    #[test]
    fn builder_methods() {
        let c = ArchConfig::default()
            .with_ip_alg(IpAlg::Bst)
            .with_combine(CombineStrategy::FirstLabel)
            .with_rule_filter_bits(14);
        assert_eq!(c.ip_alg, IpAlg::Bst);
        assert_eq!(c.combine, CombineStrategy::FirstLabel);
        assert_eq!(c.rule_slots(), 16384);
    }

    #[test]
    fn display_ip_alg() {
        assert_eq!(IpAlg::Mbt.to_string(), "MBT");
        assert_eq!(IpAlg::Bst.to_string(), "BST");
    }
}
