//! The Rule Filter memory block (paper §III.D, §IV.C.1).
//!
//! Rules live in a hash-addressed memory: the seven dimension labels are
//! merged into a 68-bit key, folded by the hardware [`spc_hwsim::HashUnit`]
//! into an address, and collisions are resolved by linear probing with the
//! full key stored alongside the rule for rejection. The same unit serves
//! update (rule insert = 2 data cycles + 1 hash cycle, §V.A) and lookup
//! (phase 4).

use crate::ClassifierError;
use spc_hwsim::{HashUnit, MemoryBlock};
use spc_types::{Rule, RuleId};

/// One Rule Filter slot.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Empty,
    /// Deleted marker so probe chains stay intact.
    Tombstone,
    Occupied(StoredRule),
}

/// A stored rule with its label key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredRule {
    /// Merged label key (up to 128 bits; 68 in the paper configuration).
    pub key: u128,
    /// The installed rule id.
    pub id: RuleId,
    /// The rule (including priority and action).
    pub rule: Rule,
}

/// Result of a Rule Filter probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeResult {
    /// The matching stored rule, if the key was present.
    pub hit: Option<StoredRule>,
    /// Memory words read while probing.
    pub reads: u32,
}

/// The hash-addressed rule memory.
///
/// Word width model: key bits + rule body. The hardware word stores only
/// what phase 4 needs — the full key for collision rejection, the rule's
/// priority and its action/id (16+16+16 bits) — the 5-tuple itself stays
/// in the software controller (a label-key hit already proves the match).
#[derive(Debug)]
pub struct RuleFilter {
    slots: MemoryBlock<Slot>,
    hash: HashUnit,
    live: usize,
    /// Longest probe sequence seen on insert (worst-case lookup cost).
    max_probe: u32,
}

const RULE_BODY_BITS: u32 = 48;

// Every slot access goes through `HashUnit::probe`, which masks the hash
// down to the block's address width, so `read`/`write` cannot see an
// out-of-range address; `new` pre-allocates exactly `words` slots, so
// `alloc` cannot overflow the provisioned block.
#[allow(clippy::expect_used)]
impl RuleFilter {
    /// Creates a filter with `2^addr_bits` slots and a `key_bits`-wide key
    /// field per word.
    pub fn new(addr_bits: u32, key_bits: u32) -> Self {
        let words = 1usize << addr_bits;
        let mut slots = MemoryBlock::new("rule_filter", words, key_bits + RULE_BODY_BITS);
        for _ in 0..words {
            slots.alloc(Slot::Empty).expect("provisioned");
        }
        slots.reset_accesses();
        RuleFilter {
            slots,
            hash: HashUnit::new(addr_bits),
            live: 0,
            max_probe: 0,
        }
    }

    /// Installed rule count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.words()
    }

    /// Longest insert-time probe chain observed.
    pub fn max_probe(&self) -> u32 {
        self.max_probe
    }

    /// Iterates over the installed rules, in slot order.
    ///
    /// This is a *software-controller* view (untracked reads — no
    /// hardware access accounting): it exists so wrappers can derive
    /// per-rule metadata such as [`spc_types::MaskSummary`] from the
    /// stored rules without re-reading the original rule set.
    pub fn iter(&self) -> impl Iterator<Item = &StoredRule> {
        (0..self.capacity()).filter_map(move |addr| match self.slots.get_untracked(addr) {
            Some(Slot::Occupied(stored)) => Some(stored),
            _ => None,
        })
    }

    /// Inserts a rule under its label key.
    ///
    /// # Errors
    ///
    /// [`ClassifierError::DuplicateKey`] if the key is already installed;
    /// [`ClassifierError::RuleFilterFull`] if no slot is free.
    pub fn insert(&mut self, key: u128, id: RuleId, rule: Rule) -> Result<(), ClassifierError> {
        let mut first_free: Option<usize> = None;
        for i in 0..self.capacity() {
            let addr = self.hash.probe(key, i);
            match *self.slots.read(addr).expect("address in range") {
                Slot::Empty => {
                    let target = first_free.unwrap_or(addr);
                    self.slots
                        .write(target, Slot::Occupied(StoredRule { key, id, rule }))
                        .expect("address in range");
                    self.live += 1;
                    self.max_probe = self.max_probe.max(i as u32 + 1);
                    return Ok(());
                }
                Slot::Tombstone => {
                    if first_free.is_none() {
                        first_free = Some(addr);
                    }
                }
                Slot::Occupied(s) if s.key == key => {
                    return Err(ClassifierError::DuplicateKey { existing: s.id.0 });
                }
                Slot::Occupied(_) => {}
            }
        }
        if let Some(addr) = first_free {
            self.slots
                .write(addr, Slot::Occupied(StoredRule { key, id, rule }))
                .expect("address in range");
            self.live += 1;
            self.max_probe = self.max_probe.max(self.capacity() as u32);
            return Ok(());
        }
        Err(ClassifierError::RuleFilterFull)
    }

    /// Removes the rule stored under `key`.
    ///
    /// # Errors
    ///
    /// [`ClassifierError::UnknownRule`] when the key is absent.
    pub fn remove(&mut self, key: u128, id: RuleId) -> Result<Rule, ClassifierError> {
        for i in 0..self.capacity() {
            let addr = self.hash.probe(key, i);
            match *self.slots.read(addr).expect("address in range") {
                Slot::Empty => break,
                Slot::Tombstone => continue,
                Slot::Occupied(s) if s.key == key => {
                    self.slots
                        .write(addr, Slot::Tombstone)
                        .expect("address in range");
                    self.live -= 1;
                    return Ok(s.rule);
                }
                Slot::Occupied(_) => {}
            }
        }
        Err(ClassifierError::UnknownRule { id: id.0 })
    }

    /// Probes for a key (phase 4 of the lookup pipeline).
    pub fn probe(&self, key: u128) -> ProbeResult {
        let mut reads = 0;
        for i in 0..self.capacity() {
            let addr = self.hash.probe(key, i);
            reads += 1;
            match *self.slots.read(addr).expect("address in range") {
                Slot::Empty => break,
                Slot::Tombstone => continue,
                Slot::Occupied(s) if s.key == key => {
                    return ProbeResult {
                        hit: Some(s),
                        reads,
                    };
                }
                Slot::Occupied(_) => {}
            }
        }
        ProbeResult { hit: None, reads }
    }

    /// Provisioned bits of the rule memory.
    pub fn provisioned_bits(&self) -> u64 {
        self.slots.capacity_bits()
    }

    /// Bits occupied by live rules.
    pub fn used_bits(&self) -> u64 {
        self.live as u64 * u64::from(self.slots.width_bits())
    }

    /// Access counters.
    pub fn access_counts(&self) -> spc_hwsim::AccessCounts {
        self.slots.accesses()
    }

    /// Resets access counters.
    pub fn reset_access_counts(&self) {
        self.slots.reset_accesses();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc_types::Priority;

    fn rule(p: u32) -> Rule {
        Rule::any(Priority(p))
    }

    #[test]
    fn insert_probe_remove() {
        let mut f = RuleFilter::new(6, 68);
        f.insert(42, RuleId(0), rule(0)).unwrap();
        let p = f.probe(42);
        assert_eq!(p.hit.unwrap().id, RuleId(0));
        assert!(p.reads >= 1);
        assert!(f.probe(43).hit.is_none());
        let r = f.remove(42, RuleId(0)).unwrap();
        assert_eq!(r.priority, Priority(0));
        assert!(f.is_empty());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut f = RuleFilter::new(6, 68);
        f.insert(7, RuleId(0), rule(0)).unwrap();
        assert!(matches!(
            f.insert(7, RuleId(1), rule(1)),
            Err(ClassifierError::DuplicateKey { existing: 0 })
        ));
    }

    #[test]
    fn collisions_probe_through() {
        let mut f = RuleFilter::new(3, 68); // 8 slots force collisions
        for k in 0..6u128 {
            f.insert(k, RuleId(k as u32), rule(k as u32)).unwrap();
        }
        for k in 0..6u128 {
            assert_eq!(f.probe(k).hit.unwrap().id, RuleId(k as u32), "key {k}");
        }
        assert!(f.max_probe() >= 1);
    }

    #[test]
    fn full_filter_errors() {
        let mut f = RuleFilter::new(2, 68);
        for k in 0..4u128 {
            f.insert(k, RuleId(k as u32), rule(0)).unwrap();
        }
        assert!(matches!(
            f.insert(99, RuleId(9), rule(0)),
            Err(ClassifierError::RuleFilterFull)
        ));
    }

    #[test]
    fn tombstones_keep_chains_intact() {
        let mut f = RuleFilter::new(2, 68); // 4 slots: heavy collisions
        for k in 0..4u128 {
            f.insert(k, RuleId(k as u32), rule(0)).unwrap();
        }
        f.remove(0, RuleId(0)).unwrap();
        // Keys displaced past key 0's slot must still be reachable.
        for k in 1..4u128 {
            assert!(f.probe(k).hit.is_some(), "key {k} lost after tombstoning");
        }
        // Tombstone is reused on insert.
        f.insert(9, RuleId(9), rule(0)).unwrap();
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn remove_unknown() {
        let mut f = RuleFilter::new(4, 68);
        assert!(matches!(
            f.remove(5, RuleId(1)),
            Err(ClassifierError::UnknownRule { id: 1 })
        ));
    }

    #[test]
    fn bits_accounting() {
        let f = RuleFilter::new(13, 68);
        assert_eq!(f.capacity(), 8192);
        assert_eq!(f.provisioned_bits(), 8192 * (68 + 48));
        assert_eq!(f.used_bits(), 0);
    }

    #[test]
    fn iter_yields_live_rules_without_charging_accesses() {
        let mut f = RuleFilter::new(4, 68);
        for k in 0..5u128 {
            f.insert(k, RuleId(k as u32), rule(0)).unwrap();
        }
        f.remove(2, RuleId(2)).unwrap();
        f.reset_access_counts();
        let mut ids: Vec<u32> = f.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3, 4]);
        assert_eq!(
            f.access_counts(),
            spc_hwsim::AccessCounts::default(),
            "controller-side iteration is untracked"
        );
    }
}
