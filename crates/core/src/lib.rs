//! # spc-core — the configurable SDN packet classification architecture
//!
//! A faithful software model of *"A Configurable Packet Classification
//! Architecture for Software-Defined Networking"* (Guerra Pérez, Yang,
//! Scott-Hayward, Sezer — IEEE SOCC 2014):
//!
//! * seven parallel single-field lookups over 16-bit header segments, with
//!   the DCFL **label method** deduplicating rule fields (§III.C);
//! * a run-time-**configurable IP algorithm** — multi-bit trie for speed or
//!   binary search tree for density — selected by the `IPalg_s` signal and
//!   sharing memory blocks (§IV.C.2, Fig 5);
//! * a 4-phase lookup pipeline ending in a hashed **Rule Filter** access
//!   that returns the Highest Priority Matching Rule (Fig 3);
//! * controller-driven **fast incremental update** with per-label
//!   reference counters (Fig 4, §V.A);
//! * cycle- and bit-accurate accounting against the paper's Stratix V
//!   prototype numbers (Tables V–VII).
//!
//! See the crate-level example on [`Classifier`].

mod classifier;
mod config;
mod error;
mod labels;
mod memory;
mod pipeline;
mod rulefilter;
pub mod shard;

pub use classifier::{Classification, Classifier, ClassifyScratch, Hit, UpdateReport};
pub use config::{ArchConfig, CombineStrategy, IpAlg};
pub use error::ClassifierError;
pub use labels::{InsertOutcome, LabelState, LabelTable, RemoveOutcome};
pub use memory::{BlockUsage, MemoryReport, SharingReport};
pub use pipeline::{LookupTiming, PHASE1_CYCLES, PHASE3_CYCLES, PHASE4_BASE_CYCLES};
pub use rulefilter::{ProbeResult, RuleFilter, StoredRule};
pub use shard::{RouteTarget, RuleLocation, ShardPlan, ShardRouter, ShardSlice, ShardStrategy};
