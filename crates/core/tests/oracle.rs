//! Early smoke test: classifier vs linear-search oracle on generated sets.

// Integration-test support code (helpers outside #[test] fns are not
// covered by clippy.toml's allow-unwrap-in-tests): a failed unwrap here
// IS the test failure, so panicking with the site's message is exactly
// the behaviour we want.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use spc_classbench::{FilterKind, RuleSetGenerator, TraceGenerator};
use spc_core::{ArchConfig, Classifier, IpAlg};

fn agree(kind: FilterKind, n: usize, alg: IpAlg) {
    let rules = RuleSetGenerator::new(kind, n).seed(7).generate();
    let mut cls = Classifier::new(ArchConfig::large().with_ip_alg(alg));
    cls.load(&rules).expect("load should fit the large config");
    let trace = TraceGenerator::new()
        .seed(3)
        .match_fraction(0.8)
        .generate(&rules, 400);
    for h in &trace {
        let oracle = rules.classify(h).map(|(id, _)| id);
        let got = cls.classify(h).hit.map(|x| x.rule_id);
        assert_eq!(got, oracle, "kind={kind:?} alg={alg:?} header={h}");
    }
}

#[test]
fn acl_mbt_matches_oracle() {
    agree(FilterKind::Acl, 500, IpAlg::Mbt);
}

#[test]
fn acl_bst_matches_oracle() {
    agree(FilterKind::Acl, 500, IpAlg::Bst);
}

#[test]
fn fw_mbt_matches_oracle() {
    agree(FilterKind::Fw, 400, IpAlg::Mbt);
}

#[test]
fn ipc_bst_matches_oracle() {
    agree(FilterKind::Ipc, 400, IpAlg::Bst);
}
