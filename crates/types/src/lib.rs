//! Core network types for SDN packet classification.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: IPv4 [`Prefix`]es, [`PortRange`]s, [`ProtoSpec`]s, 5-tuple
//! [`Rule`]s with priorities and OpenFlow-style [`Action`]s, [`RuleSet`]s,
//! packet [`Header`]s, and the *dimension* decomposition used by the
//! label-based architecture of Guerra Pérez et al. (SOCC 2014): each 32-bit
//! IP field is split into two 16-bit segments, giving seven lookup
//! dimensions ([`Dim`]) per rule.
//!
//! # Example
//!
//! ```
//! use spc_types::{Rule, RuleSet, Header, Action, Prefix, PortRange, ProtoSpec, Priority};
//!
//! # fn main() -> Result<(), spc_types::TypeError> {
//! let rule = Rule::builder(Priority(0))
//!     .src_ip(Prefix::parse("192.168.0.0/16")?)
//!     .dst_port(PortRange::exact(443))
//!     .proto(ProtoSpec::Exact(6))
//!     .action(Action::Forward(1))
//!     .build();
//!
//! let hdr = Header::new([192, 168, 3, 4].into(), [10, 0, 0, 1].into(), 5555, 443, 6);
//! assert!(rule.matches(&hdr));
//! # Ok(())
//! # }
//! ```

mod action;
mod dim;
mod error;
mod fmt_classbench;
mod header;
mod mask;
mod prefix;
mod proto;
mod provenance;
mod range;
mod rule;
mod ruleset;

pub use action::Action;
pub use dim::{Dim, DimValue, ALL_DIMS, IP_SEG_DIMS};
pub use error::TypeError;
pub use fmt_classbench::{parse_ruleset, write_ruleset};
pub use header::Header;
pub use mask::MaskSummary;
pub use prefix::{Ipv4, Prefix, SegPrefix};
pub use proto::ProtoSpec;
pub use provenance::ProvenanceMap;
pub use range::PortRange;
pub use rule::{Priority, Rule, RuleBuilder, RuleId};
pub use ruleset::{FieldUniques, RuleSet};
