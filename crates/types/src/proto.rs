//! Protocol field specification (exact value or wildcard).

use std::fmt;

/// A rule's protocol field: either any protocol or one exact 8-bit value.
///
/// ClassBench expresses this as `value/mask` where the mask is `0x00`
/// (wildcard) or `0xFF` (exact); real filter sets use no other masks, and
/// the paper's protocol dimension is a 256-entry exact-match LUT, so the
/// two-variant enum captures the full domain.
///
/// ```
/// use spc_types::ProtoSpec;
/// assert!(ProtoSpec::Any.matches(17));
/// assert!(ProtoSpec::Exact(6).matches(6));
/// assert!(!ProtoSpec::Exact(6).matches(17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ProtoSpec {
    /// Matches every protocol value.
    #[default]
    Any,
    /// Matches exactly this protocol number (e.g. 6 = TCP, 17 = UDP).
    Exact(u8),
}

impl ProtoSpec {
    /// Whether the header protocol value matches.
    pub fn matches(self, proto: u8) -> bool {
        match self {
            ProtoSpec::Any => true,
            ProtoSpec::Exact(v) => v == proto,
        }
    }

    /// Whether `self` covers `other` (matches a superset of values).
    pub fn covers(self, other: ProtoSpec) -> bool {
        match (self, other) {
            (ProtoSpec::Any, _) => true,
            (ProtoSpec::Exact(a), ProtoSpec::Exact(b)) => a == b,
            (ProtoSpec::Exact(_), ProtoSpec::Any) => false,
        }
    }

    /// Whether this is the wildcard.
    pub fn is_any(self) -> bool {
        self == ProtoSpec::Any
    }
}

impl fmt::Display for ProtoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoSpec::Any => write!(f, "0x00/0x00"),
            ProtoSpec::Exact(v) => write!(f, "{v:#04x}/0xFF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_semantics() {
        assert!(ProtoSpec::Any.matches(0));
        assert!(ProtoSpec::Any.matches(255));
        assert!(ProtoSpec::Exact(6).matches(6));
        assert!(!ProtoSpec::Exact(6).matches(7));
    }

    #[test]
    fn covers_lattice() {
        assert!(ProtoSpec::Any.covers(ProtoSpec::Exact(6)));
        assert!(ProtoSpec::Any.covers(ProtoSpec::Any));
        assert!(!ProtoSpec::Exact(6).covers(ProtoSpec::Any));
        assert!(ProtoSpec::Exact(6).covers(ProtoSpec::Exact(6)));
        assert!(!ProtoSpec::Exact(6).covers(ProtoSpec::Exact(17)));
    }

    #[test]
    fn display_classbench_style() {
        assert_eq!(ProtoSpec::Any.to_string(), "0x00/0x00");
        assert_eq!(ProtoSpec::Exact(6).to_string(), "0x06/0xFF");
        assert_eq!(ProtoSpec::Exact(17).to_string(), "0x11/0xFF");
    }

    #[test]
    fn default_is_any() {
        assert_eq!(ProtoSpec::default(), ProtoSpec::Any);
    }
}
