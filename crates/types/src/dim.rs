//! The seven lookup *dimensions* of the segmented label architecture.
//!
//! The paper partitions each 32-bit IP field into two 16-bit segments
//! (§IV.C), so a 5-tuple rule decomposes into seven single-field values that
//! are labelled and searched independently:
//! `SipHi, SipLo, DipHi, DipLo, SrcPort, DstPort, Proto`.

use crate::{Header, PortRange, ProtoSpec, SegPrefix};
use std::fmt;

/// One of the seven lookup dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// High 16 bits of the source IP.
    SipHi,
    /// Low 16 bits of the source IP.
    SipLo,
    /// High 16 bits of the destination IP.
    DipHi,
    /// Low 16 bits of the destination IP.
    DipLo,
    /// Source transport port.
    SrcPort,
    /// Destination transport port.
    DstPort,
    /// IP protocol.
    Proto,
}

/// All seven dimensions in canonical (key-concatenation) order.
pub const ALL_DIMS: [Dim; 7] = [
    Dim::SipHi,
    Dim::SipLo,
    Dim::DipHi,
    Dim::DipLo,
    Dim::SrcPort,
    Dim::DstPort,
    Dim::Proto,
];

/// The four IP-segment dimensions (the ones whose algorithm `IPalg_s`
/// reconfigures between MBT and BST).
pub const IP_SEG_DIMS: [Dim; 4] = [Dim::SipHi, Dim::SipLo, Dim::DipHi, Dim::DipLo];

impl Dim {
    /// Canonical index in `0..7`, matching [`ALL_DIMS`] order.
    pub fn index(self) -> usize {
        match self {
            Dim::SipHi => 0,
            Dim::SipLo => 1,
            Dim::DipHi => 2,
            Dim::DipLo => 3,
            Dim::SrcPort => 4,
            Dim::DstPort => 5,
            Dim::Proto => 6,
        }
    }

    /// Whether this is one of the four IP-segment dimensions.
    pub fn is_ip_segment(self) -> bool {
        matches!(self, Dim::SipHi | Dim::SipLo | Dim::DipHi | Dim::DipLo)
    }

    /// Extracts this dimension's 16-bit query value from a packet header.
    ///
    /// The protocol byte is zero-extended so that every dimension presents
    /// the same query width to the engines, mirroring the equal-size segment
    /// condition of §III.D.
    pub fn query(self, h: &Header) -> u16 {
        match self {
            Dim::SipHi => h.sip_hi(),
            Dim::SipLo => h.sip_lo(),
            Dim::DipHi => h.dip_hi(),
            Dim::DipLo => h.dip_lo(),
            Dim::SrcPort => h.src_port,
            Dim::DstPort => h.dst_port,
            Dim::Proto => u16::from(h.proto),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::SipHi => "sip_hi",
            Dim::SipLo => "sip_lo",
            Dim::DipHi => "dip_hi",
            Dim::DipLo => "dip_lo",
            Dim::SrcPort => "src_port",
            Dim::DstPort => "dst_port",
            Dim::Proto => "proto",
        };
        f.write_str(s)
    }
}

/// A rule's field value projected onto one dimension.
///
/// This is the unit the label method tags: two rules whose projections onto
/// a dimension are equal share that dimension's label (paper §III.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DimValue {
    /// A 16-bit segment prefix (IP dimensions).
    Seg(SegPrefix),
    /// A port range (port dimensions).
    Port(PortRange),
    /// A protocol spec (protocol dimension).
    Proto(ProtoSpec),
}

impl DimValue {
    /// Whether the 16-bit query value matches this field value.
    pub fn matches(self, q: u16) -> bool {
        match self {
            DimValue::Seg(s) => s.matches(q),
            DimValue::Port(r) => r.contains(q),
            DimValue::Proto(p) => q <= 0xff && p.matches(q as u8),
        }
    }

    /// Whether this value is the dimension-wide wildcard.
    pub fn is_any(self) -> bool {
        match self {
            DimValue::Seg(s) => s.is_any(),
            DimValue::Port(r) => r.is_any(),
            DimValue::Proto(p) => p.is_any(),
        }
    }

    /// Whether `self` matches a superset of the values `other` matches.
    pub fn covers(self, other: DimValue) -> bool {
        match (self, other) {
            (DimValue::Seg(a), DimValue::Seg(b)) => a.covers(b),
            (DimValue::Port(a), DimValue::Port(b)) => a.covers(b),
            (DimValue::Proto(a), DimValue::Proto(b)) => a.covers(b),
            _ => false,
        }
    }
}

impl fmt::Display for DimValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimValue::Seg(s) => write!(f, "{s}"),
            DimValue::Port(r) => write!(f, "{r}"),
            DimValue::Proto(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Header;

    #[test]
    fn indices_match_all_dims_order() {
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn ip_segment_classification() {
        for d in IP_SEG_DIMS {
            assert!(d.is_ip_segment());
        }
        assert!(!Dim::SrcPort.is_ip_segment());
        assert!(!Dim::Proto.is_ip_segment());
    }

    #[test]
    fn query_extraction() {
        let h = Header::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into(), 100, 200, 6);
        assert_eq!(Dim::SipHi.query(&h), 0x0102);
        assert_eq!(Dim::SipLo.query(&h), 0x0304);
        assert_eq!(Dim::DipHi.query(&h), 0x0506);
        assert_eq!(Dim::DipLo.query(&h), 0x0708);
        assert_eq!(Dim::SrcPort.query(&h), 100);
        assert_eq!(Dim::DstPort.query(&h), 200);
        assert_eq!(Dim::Proto.query(&h), 6);
    }

    #[test]
    fn dim_value_matches() {
        assert!(DimValue::Seg(SegPrefix::masked(0x0100, 8)).matches(0x01ff));
        assert!(!DimValue::Seg(SegPrefix::masked(0x0100, 8)).matches(0x02ff));
        assert!(DimValue::Port(PortRange::new(10, 20).unwrap()).matches(15));
        assert!(DimValue::Proto(ProtoSpec::Exact(6)).matches(6));
        assert!(!DimValue::Proto(ProtoSpec::Exact(6)).matches(0x0106));
    }

    #[test]
    fn dim_value_covers_cross_kind_is_false() {
        let seg = DimValue::Seg(SegPrefix::ANY);
        let port = DimValue::Port(PortRange::ANY);
        assert!(!seg.covers(port));
        assert!(!port.covers(seg));
    }

    #[test]
    fn wildcards() {
        assert!(DimValue::Seg(SegPrefix::ANY).is_any());
        assert!(DimValue::Port(PortRange::ANY).is_any());
        assert!(DimValue::Proto(ProtoSpec::Any).is_any());
        assert!(!DimValue::Proto(ProtoSpec::Exact(0)).is_any());
    }

    #[test]
    fn display_unique_names() {
        let names: Vec<String> = ALL_DIMS
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
