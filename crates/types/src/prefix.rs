//! IPv4 addresses and prefixes, including the 16-bit *segment* prefixes used
//! by the segmented label architecture.

use crate::TypeError;
use std::fmt;

/// An IPv4 address stored as a host-order `u32`.
///
/// A thin newtype so that addresses, prefix values and plain integers cannot
/// be confused (C-NEWTYPE).
///
/// ```
/// use spc_types::Ipv4;
/// let a: Ipv4 = [10, 0, 0, 1].into();
/// assert_eq!(a.octets(), [10, 0, 0, 1]);
/// assert_eq!(a.to_string(), "10.0.0.1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Returns the four octets, most significant first.
    pub fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The high 16 bits of the address.
    pub fn hi16(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits of the address.
    pub fn lo16(self) -> u16 {
        (self.0 & 0xffff) as u16
    }
}

impl From<[u8; 4]> for Ipv4 {
    fn from(o: [u8; 4]) -> Self {
        Ipv4(u32::from_be_bytes(o))
    }
}

impl From<u32> for Ipv4 {
    fn from(v: u32) -> Self {
        Ipv4(v)
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// An IPv4 prefix: a value and a prefix length in `0..=32`.
///
/// Invariant: all bits of `value` below the mask are zero. Constructors
/// enforce this ([`Prefix::new`] returns an error, [`Prefix::masked`]
/// truncates).
///
/// ```
/// use spc_types::Prefix;
/// # fn main() -> Result<(), spc_types::TypeError> {
/// let p = Prefix::parse("192.168.0.0/16")?;
/// assert!(p.contains([192, 168, 55, 1].into()));
/// assert!(!p.contains([192, 169, 0, 0].into()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    value: u32,
    len: u8,
}

impl Prefix {
    /// The full wildcard prefix `0.0.0.0/0`.
    pub const ANY: Prefix = Prefix { value: 0, len: 0 };

    /// Creates a prefix, validating length and mask.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidPrefixLen`] if `len > 32` and
    /// [`TypeError::UnmaskedBits`] if `value` has bits set below the mask.
    pub fn new(value: u32, len: u8) -> Result<Self, TypeError> {
        if len > 32 {
            return Err(TypeError::InvalidPrefixLen { len, max: 32 });
        }
        let masked = mask32(value, len);
        if masked != value {
            return Err(TypeError::UnmaskedBits { value, len });
        }
        Ok(Prefix { value, len })
    }

    /// Creates a prefix, silently masking away bits below the prefix length.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn masked(value: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} exceeds 32");
        Prefix {
            value: mask32(value, len),
            len,
        }
    }

    /// A host prefix (`/32`) for a single address.
    pub fn host(addr: Ipv4) -> Self {
        Prefix {
            value: addr.0,
            len: 32,
        }
    }

    /// Parses dotted-quad `a.b.c.d/len` syntax.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Parse`] on malformed input, or the validation
    /// errors of [`Prefix::new`].
    pub fn parse(s: &str) -> Result<Self, TypeError> {
        let bad = |msg: &str| TypeError::Parse {
            line: 0,
            msg: msg.to_string(),
        };
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| bad("missing '/' in prefix"))?;
        let len: u8 = len
            .trim()
            .parse()
            .map_err(|_| bad("invalid prefix length"))?;
        let mut octets = [0u8; 4];
        let mut it = addr.trim().split('.');
        for o in &mut octets {
            *o = it
                .next()
                .ok_or_else(|| bad("too few octets"))?
                .parse()
                .map_err(|_| bad("invalid octet"))?;
        }
        if it.next().is_some() {
            return Err(bad("too many octets"));
        }
        Prefix::new(u32::from_be_bytes(octets), len)
    }

    /// The (masked) prefix value.
    pub fn value(self) -> u32 {
        self.value
    }

    /// The prefix length.
    // A prefix length is a mask width, not a container size.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length wildcard.
    pub fn is_any(self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(self, addr: Ipv4) -> bool {
        mask32(addr.0, self.len) == self.value
    }

    /// Whether `self` covers `other` (every address of `other` is in `self`).
    pub fn covers(self, other: Prefix) -> bool {
        self.len <= other.len && mask32(other.value, self.len) == self.value
    }

    /// First address of the prefix.
    pub fn first(self) -> Ipv4 {
        Ipv4(self.value)
    }

    /// Last address of the prefix.
    pub fn last(self) -> Ipv4 {
        Ipv4(self.value | !mask_bits32(self.len))
    }

    /// Splits into the two 16-bit segment prefixes used by the architecture.
    ///
    /// A `/len` prefix with `len <= 16` constrains only the high segment; the
    /// low segment becomes the segment wildcard. With `len > 16` the high
    /// segment is exact (`/16`) and the residue constrains the low segment.
    ///
    /// ```
    /// use spc_types::Prefix;
    /// # fn main() -> Result<(), spc_types::TypeError> {
    /// let p = Prefix::parse("10.1.128.0/20")?;
    /// let (hi, lo) = p.segments();
    /// assert_eq!((hi.value(), hi.len()), (0x0a01, 16));
    /// assert_eq!((lo.value(), lo.len()), (0x8000, 4));
    /// # Ok(())
    /// # }
    /// ```
    pub fn segments(self) -> (SegPrefix, SegPrefix) {
        if self.len <= 16 {
            (
                SegPrefix::masked((self.value >> 16) as u16, self.len),
                SegPrefix::ANY,
            )
        } else {
            (
                SegPrefix::masked((self.value >> 16) as u16, 16),
                SegPrefix::masked((self.value & 0xffff) as u16, self.len - 16),
            )
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4(self.value), self.len)
    }
}

impl Default for Prefix {
    fn default() -> Self {
        Prefix::ANY
    }
}

/// A prefix over a 16-bit header *segment*: value plus length in `0..=16`.
///
/// Segments are the unit the label method operates on — the packet header is
/// split into equal 16-bit pieces so any single-field algorithm can be
/// plugged into a dimension (paper §III.D condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegPrefix {
    value: u16,
    len: u8,
}

impl SegPrefix {
    /// The segment-wide wildcard `*/0`.
    pub const ANY: SegPrefix = SegPrefix { value: 0, len: 0 };

    /// Creates a segment prefix, validating length and mask.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidPrefixLen`] if `len > 16` and
    /// [`TypeError::UnmaskedBits`] if `value` has bits set below the mask.
    pub fn new(value: u16, len: u8) -> Result<Self, TypeError> {
        if len > 16 {
            return Err(TypeError::InvalidPrefixLen { len, max: 16 });
        }
        let masked = mask16(value, len);
        if masked != value {
            return Err(TypeError::UnmaskedBits {
                value: value as u32,
                len,
            });
        }
        Ok(SegPrefix { value, len })
    }

    /// Creates a segment prefix, masking away low bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 16`.
    pub fn masked(value: u16, len: u8) -> Self {
        assert!(len <= 16, "segment prefix length {len} exceeds 16");
        SegPrefix {
            value: mask16(value, len),
            len,
        }
    }

    /// An exact (`/16`) segment value.
    pub fn exact(value: u16) -> Self {
        SegPrefix { value, len: 16 }
    }

    /// The (masked) segment value.
    pub fn value(self) -> u16 {
        self.value
    }

    /// The prefix length.
    // A prefix length is a mask width, not a container size.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the segment wildcard.
    pub fn is_any(self) -> bool {
        self.len == 0
    }

    /// Whether the 16-bit query value matches this prefix.
    pub fn matches(self, v: u16) -> bool {
        mask16(v, self.len) == self.value
    }

    /// Whether `self` covers `other`.
    pub fn covers(self, other: SegPrefix) -> bool {
        self.len <= other.len && mask16(other.value, self.len) == self.value
    }

    /// First 16-bit value of the covered range.
    pub fn first(self) -> u16 {
        self.value
    }

    /// Last 16-bit value of the covered range.
    pub fn last(self) -> u16 {
        self.value | !mask_bits16(self.len)
    }
}

impl fmt::Display for SegPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}/{}", self.value, self.len)
    }
}

impl Default for SegPrefix {
    fn default() -> Self {
        SegPrefix::ANY
    }
}

fn mask_bits32(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

fn mask32(v: u32, len: u8) -> u32 {
    v & mask_bits32(len)
}

fn mask_bits16(len: u8) -> u16 {
    if len == 0 {
        0
    } else {
        u16::MAX << (16 - len)
    }
}

fn mask16(v: u16, len: u8) -> u16 {
    v & mask_bits16(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_roundtrip() {
        let a: Ipv4 = [1, 2, 3, 4].into();
        assert_eq!(a.0, 0x0102_0304);
        assert_eq!(a.hi16(), 0x0102);
        assert_eq!(a.lo16(), 0x0304);
        assert_eq!(a.to_string(), "1.2.3.4");
    }

    #[test]
    fn prefix_new_validates() {
        assert!(Prefix::new(0, 33).is_err());
        assert!(Prefix::new(0x0000_0001, 16).is_err());
        assert!(Prefix::new(0x0a00_0000, 8).is_ok());
    }

    #[test]
    fn prefix_masked_truncates() {
        let p = Prefix::masked(0x0a01_ffff, 16);
        assert_eq!(p.value(), 0x0a01_0000);
        assert_eq!(p.len(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds 32")]
    fn prefix_masked_panics_on_bad_len() {
        let _ = Prefix::masked(0, 40);
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::parse("192.168.0.0/16").unwrap();
        assert!(p.contains([192, 168, 0, 0].into()));
        assert!(p.contains([192, 168, 255, 255].into()));
        assert!(!p.contains([192, 167, 255, 255].into()));
        assert!(Prefix::ANY.contains([255, 255, 255, 255].into()));
    }

    #[test]
    fn prefix_covers_is_reflexive_and_nesting() {
        let a = Prefix::parse("10.0.0.0/8").unwrap();
        let b = Prefix::parse("10.1.0.0/16").unwrap();
        assert!(a.covers(a));
        assert!(a.covers(b));
        assert!(!b.covers(a));
    }

    #[test]
    fn prefix_first_last() {
        let p = Prefix::parse("10.1.0.0/16").unwrap();
        assert_eq!(p.first().to_string(), "10.1.0.0");
        assert_eq!(p.last().to_string(), "10.1.255.255");
        assert_eq!(Prefix::ANY.last().to_string(), "255.255.255.255");
        let host = Prefix::host([1, 2, 3, 4].into());
        assert_eq!(host.first(), host.last());
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        for s in [
            "10.0.0.0",
            "10.0.0/8",
            "10.0.0.0.0/8",
            "a.b.c.d/8",
            "10.0.0.0/x",
            "10.0.0.0/40",
        ] {
            assert!(Prefix::parse(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn prefix_display_roundtrips_via_parse() {
        let p = Prefix::parse("172.16.32.0/19").unwrap();
        assert_eq!(Prefix::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn segments_short_prefix() {
        let p = Prefix::parse("10.0.0.0/8").unwrap();
        let (hi, lo) = p.segments();
        assert_eq!((hi.value(), hi.len()), (0x0a00, 8));
        assert!(lo.is_any());
    }

    #[test]
    fn segments_exact_16() {
        let p = Prefix::parse("10.1.0.0/16").unwrap();
        let (hi, lo) = p.segments();
        assert_eq!((hi.value(), hi.len()), (0x0a01, 16));
        assert!(lo.is_any());
    }

    #[test]
    fn segments_long_prefix() {
        let p = Prefix::parse("10.1.2.3/32").unwrap();
        let (hi, lo) = p.segments();
        assert_eq!((hi.value(), hi.len()), (0x0a01, 16));
        assert_eq!((lo.value(), lo.len()), (0x0203, 16));
    }

    #[test]
    fn segments_wildcard() {
        let (hi, lo) = Prefix::ANY.segments();
        assert!(hi.is_any());
        assert!(lo.is_any());
    }

    #[test]
    fn seg_prefix_matches() {
        let s = SegPrefix::masked(0x8000, 4);
        assert!(s.matches(0x8abc));
        assert!(!s.matches(0x7abc));
        assert!(SegPrefix::ANY.matches(0xffff));
        assert!(SegPrefix::exact(42).matches(42));
        assert!(!SegPrefix::exact(42).matches(43));
    }

    #[test]
    fn seg_prefix_bounds() {
        let s = SegPrefix::masked(0x8000, 4);
        assert_eq!(s.first(), 0x8000);
        assert_eq!(s.last(), 0x8fff);
        assert_eq!(SegPrefix::ANY.last(), 0xffff);
    }

    #[test]
    fn seg_prefix_new_validates() {
        assert!(SegPrefix::new(0, 17).is_err());
        assert!(SegPrefix::new(1, 8).is_err());
        assert!(SegPrefix::new(0x0100, 8).is_ok());
    }

    #[test]
    fn seg_prefix_covers() {
        let a = SegPrefix::masked(0x8000, 1);
        let b = SegPrefix::masked(0xc000, 2);
        assert!(a.covers(b));
        assert!(!b.covers(a));
        assert!(SegPrefix::ANY.covers(a));
    }
}
