//! Ordered rule sets (filters).

use crate::{Dim, DimValue, Header, Priority, Rule, RuleId, ALL_DIMS};
use std::collections::HashSet;

/// An ordered collection of rules — a *filter* in ClassBench terminology.
///
/// Rules are stored in priority order is **not** required; the HPMR is always
/// resolved through [`Priority`] values. [`RuleSet::from_rules_reprioritized`]
/// assigns priorities by position for ACL-style inputs.
///
/// ```
/// use spc_types::{Rule, RuleSet, Priority, Header};
/// let rs: RuleSet = vec![Rule::any(Priority(0))].into_iter().collect();
/// assert_eq!(rs.len(), 1);
/// assert!(rs.classify(&Header::default()).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        RuleSet { rules: Vec::new() }
    }

    /// Wraps existing rules, keeping their priorities.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Wraps rules, overwriting priorities with list position (first rule =
    /// highest priority), the ACL convention.
    pub fn from_rules_reprioritized(mut rules: Vec<Rule>) -> Self {
        for (i, r) in rules.iter_mut().enumerate() {
            r.priority = Priority(i as u32);
        }
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules as a slice.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Returns the rule with the given id, if present.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.0 as usize)
    }

    /// Appends a rule, returning its id.
    pub fn push(&mut self, rule: Rule) -> RuleId {
        self.rules.push(rule);
        RuleId(self.rules.len() as u32 - 1)
    }

    /// Iterates `(RuleId, &Rule)`.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// Reference linear-search classification: the Highest Priority Matching
    /// Rule for `h`, or `None` when nothing matches.
    ///
    /// This is the semantic oracle every classifier in the workspace is
    /// tested against.
    pub fn classify(&self, h: &Header) -> Option<(RuleId, &Rule)> {
        self.iter()
            .filter(|(_, r)| r.matches(h))
            .min_by_key(|(id, r)| (r.priority, id.0))
    }

    /// Number of unique field values per dimension (paper Table II).
    pub fn unique_dim_values(&self, dim: Dim) -> usize {
        let set: HashSet<DimValue> = self.rules.iter().map(|r| r.dim_value(dim)).collect();
        set.len()
    }

    /// Unique field counts for all seven dimensions, in [`ALL_DIMS`] order.
    pub fn unique_counts(&self) -> [usize; 7] {
        ALL_DIMS.map(|d| self.unique_dim_values(d))
    }

    /// Number of unique *full 32-bit* source-IP prefixes (Table II reports
    /// unique counts per 5-tuple field, before segmentation).
    pub fn unique_field_counts(&self) -> FieldUniques {
        FieldUniques {
            src_ip: self
                .rules
                .iter()
                .map(|r| r.src_ip)
                .collect::<HashSet<_>>()
                .len(),
            dst_ip: self
                .rules
                .iter()
                .map(|r| r.dst_ip)
                .collect::<HashSet<_>>()
                .len(),
            src_port: self
                .rules
                .iter()
                .map(|r| r.src_port)
                .collect::<HashSet<_>>()
                .len(),
            dst_port: self
                .rules
                .iter()
                .map(|r| r.dst_port)
                .collect::<HashSet<_>>()
                .len(),
            proto: self
                .rules
                .iter()
                .map(|r| r.proto)
                .collect::<HashSet<_>>()
                .len(),
        }
    }
}

/// Unique value counts per 5-tuple field (paper Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldUniques {
    /// Unique source IP prefixes.
    pub src_ip: usize,
    /// Unique destination IP prefixes.
    pub dst_ip: usize,
    /// Unique source port ranges.
    pub src_port: usize,
    /// Unique destination port ranges.
    pub dst_port: usize,
    /// Unique protocol specs.
    pub proto: usize,
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        RuleSet {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for RuleSet {
    fn extend<T: IntoIterator<Item = Rule>>(&mut self, iter: T) {
        self.rules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RuleSet {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

impl IntoIterator for RuleSet {
    type Item = Rule;
    type IntoIter = std::vec::IntoIter<Rule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, PortRange, Prefix, ProtoSpec};

    fn two_rule_set() -> RuleSet {
        let hi = Rule::builder(Priority(0))
            .dst_port(PortRange::exact(80))
            .action(Action::Forward(1))
            .build();
        let lo = Rule::builder(Priority(1)).action(Action::Drop).build();
        RuleSet::from_rules(vec![hi, lo])
    }

    #[test]
    fn classify_prefers_higher_priority() {
        let rs = two_rule_set();
        let h80 = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 80, 6);
        let h81 = Header::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 5, 81, 6);
        assert_eq!(rs.classify(&h80).unwrap().0, RuleId(0));
        assert_eq!(rs.classify(&h81).unwrap().0, RuleId(1));
    }

    #[test]
    fn classify_ties_break_by_id() {
        let a = Rule::any(Priority(7));
        let b = Rule::any(Priority(7));
        let rs = RuleSet::from_rules(vec![a, b]);
        assert_eq!(rs.classify(&Header::default()).unwrap().0, RuleId(0));
    }

    #[test]
    fn classify_none_when_empty_or_miss() {
        assert!(RuleSet::new().classify(&Header::default()).is_none());
        let only80 = RuleSet::from_rules(vec![Rule::builder(Priority(0))
            .dst_port(PortRange::exact(80))
            .build()]);
        let h = Header::new([0; 4].into(), [0; 4].into(), 0, 81, 6);
        assert!(only80.classify(&h).is_none());
    }

    #[test]
    fn reprioritize_by_position() {
        let rs = RuleSet::from_rules_reprioritized(vec![
            Rule::any(Priority(99)),
            Rule::any(Priority(3)),
        ]);
        assert_eq!(rs.rules()[0].priority, Priority(0));
        assert_eq!(rs.rules()[1].priority, Priority(1));
    }

    #[test]
    fn unique_counts_dedup_shared_fields() {
        let mk = |dst: u16| {
            Rule::builder(Priority(0))
                .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
                .dst_port(PortRange::exact(dst))
                .proto(ProtoSpec::Exact(6))
                .build()
        };
        let rs = RuleSet::from_rules(vec![mk(80), mk(443), mk(80)]);
        let u = rs.unique_field_counts();
        assert_eq!(u.src_ip, 1);
        assert_eq!(u.dst_port, 2);
        assert_eq!(u.proto, 1);
        assert_eq!(u.src_port, 1);
        // Segment dims: /8 prefix -> hi seg unique 1, lo seg wildcard unique 1.
        assert_eq!(rs.unique_dim_values(Dim::SipHi), 1);
        assert_eq!(rs.unique_dim_values(Dim::SipLo), 1);
    }

    #[test]
    fn push_get_iter() {
        let mut rs = RuleSet::new();
        let id = rs.push(Rule::any(Priority(0)));
        assert_eq!(id, RuleId(0));
        assert!(rs.get(id).is_some());
        assert!(rs.get(RuleId(5)).is_none());
        assert_eq!(rs.iter().count(), 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut rs: RuleSet = std::iter::once(Rule::any(Priority(0))).collect();
        rs.extend(std::iter::once(Rule::any(Priority(1))));
        assert_eq!(rs.len(), 2);
        let back: Vec<Rule> = rs.clone().into_iter().collect();
        assert_eq!(back.len(), 2);
        assert_eq!((&rs).into_iter().count(), 2);
    }
}
