//! Classification rules: 5-tuple filters with priority and action.

use crate::{Action, Dim, DimValue, Header, PortRange, Prefix, ProtoSpec};
use std::fmt;

/// Rule priority. **Smaller numeric value = higher priority**, matching the
/// ACL convention where the first listed rule wins; the Highest Priority
/// Matching Rule (HPMR) is the matching rule with the minimum `Priority`.
///
/// ```
/// use spc_types::Priority;
/// assert!(Priority(0).beats(Priority(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u32);

impl Priority {
    /// Whether `self` outranks `other` (strictly higher priority).
    pub fn beats(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a rule inside a [`crate::RuleSet`] (its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A 5-tuple classification rule.
///
/// ```
/// use spc_types::{Rule, Priority, Prefix, PortRange, ProtoSpec, Action, Header};
/// # fn main() -> Result<(), spc_types::TypeError> {
/// let r = Rule::builder(Priority(3))
///     .src_ip(Prefix::parse("10.0.0.0/8")?)
///     .dst_ip(Prefix::parse("192.168.1.0/24")?)
///     .dst_port(PortRange::exact(22))
///     .proto(ProtoSpec::Exact(6))
///     .action(Action::Drop)
///     .build();
/// let h = Header::new([10, 9, 9, 9].into(), [192, 168, 1, 77].into(), 50000, 22, 6);
/// assert!(r.matches(&h));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rule {
    /// Rule priority (smaller = higher).
    pub priority: Priority,
    /// Source IP prefix.
    pub src_ip: Prefix,
    /// Destination IP prefix.
    pub dst_ip: Prefix,
    /// Source port range.
    pub src_port: PortRange,
    /// Destination port range.
    pub dst_port: PortRange,
    /// Protocol spec.
    pub proto: ProtoSpec,
    /// Action applied on match.
    pub action: Action,
}

impl Rule {
    /// Starts building a rule with the given priority; all fields default to
    /// wildcards and the action to [`Action::Drop`].
    pub fn builder(priority: Priority) -> RuleBuilder {
        RuleBuilder {
            rule: Rule::any(priority),
        }
    }

    /// The match-everything rule at the given priority.
    pub fn any(priority: Priority) -> Self {
        Rule {
            priority,
            src_ip: Prefix::ANY,
            dst_ip: Prefix::ANY,
            src_port: PortRange::ANY,
            dst_port: PortRange::ANY,
            proto: ProtoSpec::Any,
            action: Action::Drop,
        }
    }

    /// Whether the header matches all five fields.
    pub fn matches(&self, h: &Header) -> bool {
        self.src_ip.contains(h.src_ip)
            && self.dst_ip.contains(h.dst_ip)
            && self.src_port.contains(h.src_port)
            && self.dst_port.contains(h.dst_port)
            && self.proto.matches(h.proto)
    }

    /// Projects the rule onto one of the seven lookup dimensions.
    pub fn dim_value(&self, dim: Dim) -> DimValue {
        match dim {
            Dim::SipHi => DimValue::Seg(self.src_ip.segments().0),
            Dim::SipLo => DimValue::Seg(self.src_ip.segments().1),
            Dim::DipHi => DimValue::Seg(self.dst_ip.segments().0),
            Dim::DipLo => DimValue::Seg(self.dst_ip.segments().1),
            Dim::SrcPort => DimValue::Port(self.src_port),
            Dim::DstPort => DimValue::Port(self.dst_port),
            Dim::Proto => DimValue::Proto(self.proto),
        }
    }

    /// All seven dimension projections in canonical order.
    pub fn dim_values(&self) -> [DimValue; 7] {
        crate::ALL_DIMS.map(|d| self.dim_value(d))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} sport {} dport {} proto {} => {}",
            self.priority,
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            self.proto,
            self.action
        )
    }
}

/// Builder for [`Rule`] (C-BUILDER, non-consuming terminal).
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    rule: Rule,
}

impl RuleBuilder {
    /// Sets the source IP prefix.
    pub fn src_ip(mut self, p: Prefix) -> Self {
        self.rule.src_ip = p;
        self
    }

    /// Sets the destination IP prefix.
    pub fn dst_ip(mut self, p: Prefix) -> Self {
        self.rule.dst_ip = p;
        self
    }

    /// Sets the source port range.
    pub fn src_port(mut self, r: PortRange) -> Self {
        self.rule.src_port = r;
        self
    }

    /// Sets the destination port range.
    pub fn dst_port(mut self, r: PortRange) -> Self {
        self.rule.dst_port = r;
        self
    }

    /// Sets the protocol spec.
    pub fn proto(mut self, p: ProtoSpec) -> Self {
        self.rule.proto = p;
        self
    }

    /// Sets the action.
    pub fn action(mut self, a: Action) -> Self {
        self.rule.action = a;
        self
    }

    /// Finishes the rule.
    pub fn build(self) -> Rule {
        self.rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_DIMS;

    fn sample_rule() -> Rule {
        Rule::builder(Priority(1))
            .src_ip(Prefix::parse("10.0.0.0/8").unwrap())
            .dst_ip(Prefix::parse("192.168.1.0/24").unwrap())
            .src_port(PortRange::new(1024, 65535).unwrap())
            .dst_port(PortRange::exact(80))
            .proto(ProtoSpec::Exact(6))
            .action(Action::Forward(7))
            .build()
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority(0).beats(Priority(10)));
        assert!(!Priority(10).beats(Priority(0)));
        assert!(!Priority(5).beats(Priority(5)));
    }

    #[test]
    fn any_rule_matches_everything() {
        let r = Rule::any(Priority(0));
        for h in [
            Header::default(),
            Header::new([255; 4].into(), [0; 4].into(), 0, 65535, 255),
        ] {
            assert!(r.matches(&h));
        }
    }

    #[test]
    fn matches_requires_all_fields() {
        let r = sample_rule();
        let ok = Header::new([10, 1, 1, 1].into(), [192, 168, 1, 9].into(), 2000, 80, 6);
        assert!(r.matches(&ok));
        let mut h = ok;
        h.src_ip = [11, 1, 1, 1].into();
        assert!(!r.matches(&h));
        let mut h = ok;
        h.dst_ip = [192, 168, 2, 9].into();
        assert!(!r.matches(&h));
        let mut h = ok;
        h.src_port = 80;
        assert!(!r.matches(&h));
        let mut h = ok;
        h.dst_port = 81;
        assert!(!r.matches(&h));
        let mut h = ok;
        h.proto = 17;
        assert!(!r.matches(&h));
    }

    #[test]
    fn dim_projection_consistency() {
        // A header matches the rule iff it matches every dimension projection.
        let r = sample_rule();
        let h = Header::new([10, 1, 1, 1].into(), [192, 168, 1, 9].into(), 2000, 80, 6);
        assert!(r.matches(&h));
        for d in ALL_DIMS {
            assert!(r.dim_value(d).matches(d.query(&h)), "dim {d} should match");
        }
        let miss = Header::new([10, 1, 1, 1].into(), [192, 168, 1, 9].into(), 2000, 81, 6);
        assert!(!r.matches(&miss));
        assert!(ALL_DIMS
            .iter()
            .any(|d| !r.dim_value(*d).matches(d.query(&miss))));
    }

    #[test]
    fn dim_values_order_matches_all_dims() {
        let r = sample_rule();
        let vs = r.dim_values();
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(vs[i], r.dim_value(*d));
        }
    }

    #[test]
    fn display_contains_fields() {
        let s = sample_rule().to_string();
        assert!(s.contains("10.0.0.0/8"));
        assert!(s.contains("80 : 80"));
        assert!(s.contains("fwd:7"));
    }
}
