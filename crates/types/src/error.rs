//! Error type for parsing and validation.

use std::fmt;

/// Error returned by constructors and parsers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// A prefix length was outside the valid range for its width.
    InvalidPrefixLen {
        /// The offending length.
        len: u8,
        /// The maximum allowed length (32 for IPv4, 16 for segments).
        max: u8,
    },
    /// A prefix had non-zero bits below its mask.
    UnmaskedBits {
        /// The offending value.
        value: u32,
        /// The prefix length.
        len: u8,
    },
    /// A port range had `lo > hi`.
    EmptyRange {
        /// Lower bound.
        lo: u16,
        /// Upper bound.
        hi: u16,
    },
    /// A textual rule line could not be parsed.
    Parse {
        /// 1-based line number, 0 when unknown.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::InvalidPrefixLen { len, max } => {
                write!(f, "prefix length {len} exceeds maximum {max}")
            }
            TypeError::UnmaskedBits { value, len } => {
                write!(f, "prefix value {value:#x} has bits set below /{len} mask")
            }
            TypeError::EmptyRange { lo, hi } => {
                write!(f, "port range [{lo}, {hi}] is empty (lo > hi)")
            }
            TypeError::Parse { line, msg } => {
                if *line == 0 {
                    write!(f, "parse error: {msg}")
                } else {
                    write!(f, "parse error at line {line}: {msg}")
                }
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TypeError::InvalidPrefixLen { len: 40, max: 32 },
            TypeError::UnmaskedBits { value: 1, len: 0 },
            TypeError::EmptyRange { lo: 5, hi: 1 },
            TypeError::Parse {
                line: 3,
                msg: "bad token".into(),
            },
            TypeError::Parse {
                line: 0,
                msg: "bad token".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TypeError>();
    }
}
